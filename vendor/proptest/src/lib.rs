//! Offline vendored stand-in for the [`proptest`] crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! deterministic mini property-testing framework exposing the subset of the
//! proptest API its tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], [`prop_assume!`]
//! - [`Strategy`] with `prop_map`, [`Just`], [`any`] for integers/bool
//! - integer and float range strategies (`0u32..500`, `1u8..=12`, `1u16..`)
//! - [`collection::vec`], [`collection::hash_set`], [`collection::btree_set`]
//! - [`option::of`]
//! - [`string::string_regex`] and `&str`-literal regex strategies
//!
//! Differences from real proptest: no shrinking (failing inputs are reported
//! verbatim), and case generation is seeded from the test name, so every run
//! explores the same deterministic sequence — which is exactly what this
//! repository's determinism guarantees want. The default case count is 256;
//! override per-block with `ProptestConfig::with_cases` or globally with the
//! `PROPTEST_CASES` environment variable.

use std::marker::PhantomData;

pub mod collection;
pub mod option;
pub mod string;

/// Everything a test file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test's name, so each test explores a fixed,
    /// reproducible input sequence.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection sampling keeps the draw unbiased.
        let zone = u64::MAX - u64::MAX.wrapping_rem(n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform draw in `[lo, hi]` (inclusive, as unsigned words).
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }
}

/// Why a generated test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it is regenerated.
    Reject(String),
    /// An assertion failed; the harness panics with this message.
    Fail(String),
}

/// Per-block runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let hi = self.end as i128 - 1;
                (lo + rng.between(0, (hi - lo) as u64) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.between(0, (hi - lo) as u64) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, <$t>::MAX as i128);
                (lo + rng.between(0, (hi - lo) as u64) as i128) as $t
            }
        }
    )+};
}

impl_int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategies {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )+};
}

impl_float_range_strategies!(f32, f64);

/// A regex string literal is itself a strategy, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

/// Runs a block of property tests.
///
/// Accepts an optional leading `#![proptest_config(expr)]` followed by
/// `fn name(arg in strategy, ...) { body }` items (each usually carrying its
/// own `#[test]` attribute, which is passed through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted = 0u32;
                let mut attempts = 0u64;
                let max_attempts = u64::from(cfg.cases).saturating_mul(20).max(100);
                while accepted < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many rejected cases in {} ({} accepted of {} wanted)",
                        stringify!($name), accepted, cfg.cases,
                    );
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    // Rendered up front: the body may move the inputs.
                    let inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}"),+),
                        $(&$arg),+
                    );
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match result {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject(_)) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {msg}\ninputs:{inputs}");
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("{} at {}:{}", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} at {}:{}",
                        stringify!($left), stringify!($right), l, r, file!(), line!(),
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "{}: `{} == {}`\n  left: {:?}\n right: {:?} at {}:{}",
                        format!($($fmt)+), stringify!($left), stringify!($right),
                        l, r, file!(), line!(),
                    )));
                }
            }
        }
    };
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?} at {}:{}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        file!(),
                        line!(),
                    )));
                }
            }
        }
    };
}

/// Rejects the current case unless `cond` holds; a fresh input is drawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}
