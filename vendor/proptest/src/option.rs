//! The `Option` strategy combinator.

use crate::{Strategy, TestRng};

/// Strategy yielding `None` one time in four and `Some(element)` otherwise.
pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
    OptionStrategy { element }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    element: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.element.generate(rng))
        }
    }
}
