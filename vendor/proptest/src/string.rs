//! Regex-shaped string strategies.
//!
//! Supports the pattern subset the workspace tests use: literals, `(..)`
//! groups, `[a-z0-9-]` character classes (ranges and literals, no negation),
//! alternation `a|b`, the repetitions `? * + {m} {m,n}`, the escapes
//! `\. \\ \- \d`, and the class escape `\PC` ("any non-control character"),
//! which draws from printable ASCII plus a few multi-byte code points to
//! exercise non-ASCII handling.

use std::fmt;

use crate::{Strategy, TestRng};

/// Unbounded repetitions (`*`, `+`) cap at this many copies.
const UNBOUNDED_REPEAT_MAX: u32 = 8;

/// Sample pool for `\PC` (printable, non-control).
const PRINTABLE_EXTRAS: [char; 6] = ['é', 'ß', '中', '界', 'Ω', '🌐'];

/// A malformed or unsupported pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

fn err<T>(message: impl Into<String>) -> Result<T, Error> {
    Err(Error {
        message: message.into(),
    })
}

#[derive(Debug, Clone)]
enum Node {
    /// One of the branches, uniformly.
    Alt(Vec<Node>),
    /// Branches in sequence.
    Concat(Vec<Node>),
    /// A fixed character.
    Literal(char),
    /// One char from the listed inclusive ranges.
    Class(Vec<(char, char)>),
    /// Any printable, non-control character.
    AnyPrintable,
    /// `node` repeated between `min` and `max` times.
    Repeat { node: Box<Node>, min: u32, max: u32 },
}

impl Node {
    fn generate(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            Node::Alt(branches) => {
                let pick = rng.below(branches.len() as u64) as usize;
                branches[pick].generate(rng, out);
            }
            Node::Concat(parts) => {
                for p in parts {
                    p.generate(rng, out);
                }
            }
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                    .sum();
                let mut pick = rng.below(total);
                for &(lo, hi) in ranges {
                    let span = hi as u64 - lo as u64 + 1;
                    if pick < span {
                        // In-range by construction: pick < span keeps the
                        // scalar within [lo, hi], which came from chars.
                        if let Some(c) = char::from_u32(lo as u32 + pick as u32) {
                            out.push(c);
                        }
                        return;
                    }
                    pick -= span;
                }
            }
            Node::AnyPrintable => {
                let pick = rng.below(95 + PRINTABLE_EXTRAS.len() as u64);
                if pick < 95 {
                    // Printable ASCII 0x20..=0x7E.
                    if let Some(c) = char::from_u32(0x20 + pick as u32) {
                        out.push(c);
                    }
                } else {
                    out.push(PRINTABLE_EXTRAS[(pick - 95) as usize]);
                }
            }
            Node::Repeat { node, min, max } => {
                let n = rng.between(u64::from(*min), u64::from(*max));
                for _ in 0..n {
                    node.generate(rng, out);
                }
            }
        }
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl Parser<'_> {
    fn parse_alt(&mut self) -> Result<Node, Error> {
        let mut branches = vec![self.parse_concat()?];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            branches.push(self.parse_concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap_or(Node::Concat(Vec::new())))
        } else {
            Ok(Node::Alt(branches))
        }
    }

    fn parse_concat(&mut self) -> Result<Node, Error> {
        let mut parts = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            parts.push(self.parse_repeat(atom)?);
        }
        Ok(Node::Concat(parts))
    }

    fn parse_atom(&mut self) -> Result<Node, Error> {
        match self.chars.next() {
            Some('(') => {
                let inner = self.parse_alt()?;
                match self.chars.next() {
                    Some(')') => Ok(inner),
                    _ => err("unclosed group"),
                }
            }
            Some('[') => self.parse_class(),
            Some('\\') => self.parse_escape(),
            Some('.') => Ok(Node::AnyPrintable),
            Some(c @ ('?' | '*' | '+' | '{')) => err(format!("dangling repetition `{c}`")),
            Some(c) => Ok(Node::Literal(c)),
            None => err("unexpected end of pattern"),
        }
    }

    fn parse_escape(&mut self) -> Result<Node, Error> {
        match self.chars.next() {
            Some('d') => Ok(Node::Class(vec![('0', '9')])),
            Some('w') => Ok(Node::Class(vec![
                ('a', 'z'),
                ('A', 'Z'),
                ('0', '9'),
                ('_', '_'),
            ])),
            Some('P') | Some('p') => {
                // Unicode class escape; consume a one-letter name or `{Name}`.
                match self.chars.next() {
                    Some('{') => {
                        for c in self.chars.by_ref() {
                            if c == '}' {
                                break;
                            }
                        }
                        Ok(Node::AnyPrintable)
                    }
                    Some(_) => Ok(Node::AnyPrintable),
                    None => err("truncated \\P escape"),
                }
            }
            Some(c) => Ok(Node::Literal(c)),
            None => err("trailing backslash"),
        }
    }

    fn parse_class(&mut self) -> Result<Node, Error> {
        let mut ranges = Vec::new();
        if self.chars.peek() == Some(&'^') {
            return err("negated classes are not supported");
        }
        loop {
            let lo = match self.chars.next() {
                Some(']') => {
                    if ranges.is_empty() {
                        return err("empty character class");
                    }
                    return Ok(Node::Class(ranges));
                }
                Some('\\') => match self.chars.next() {
                    Some(c) => c,
                    None => return err("trailing backslash in class"),
                },
                Some(c) => c,
                None => return err("unclosed character class"),
            };
            if self.chars.peek() == Some(&'-') {
                self.chars.next();
                match self.chars.peek() {
                    Some(&']') | None => {
                        // Trailing `-` is a literal.
                        ranges.push((lo, lo));
                        ranges.push(('-', '-'));
                    }
                    Some(&hi) => {
                        self.chars.next();
                        if hi < lo {
                            return err(format!("inverted class range {lo}-{hi}"));
                        }
                        ranges.push((lo, hi));
                    }
                }
            } else {
                ranges.push((lo, lo));
            }
        }
    }

    fn parse_repeat(&mut self, atom: Node) -> Result<Node, Error> {
        let (min, max) = match self.chars.peek() {
            Some('?') => (0, 1),
            Some('*') => (0, UNBOUNDED_REPEAT_MAX),
            Some('+') => (1, UNBOUNDED_REPEAT_MAX),
            Some('{') => {
                self.chars.next();
                let mut spec = String::new();
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => return err("unclosed repetition"),
                    }
                }
                let parse_n = |s: &str| -> Result<u32, Error> {
                    s.trim().parse().map_err(|_| Error {
                        message: format!("bad repetition count `{s}`"),
                    })
                };
                let (min, max) = match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = parse_n(lo)?;
                        let hi = if hi.trim().is_empty() {
                            lo + UNBOUNDED_REPEAT_MAX
                        } else {
                            parse_n(hi)?
                        };
                        (lo, hi)
                    }
                    None => {
                        let n = parse_n(&spec)?;
                        (n, n)
                    }
                };
                if max < min {
                    return err(format!("inverted repetition {{{min},{max}}}"));
                }
                return Ok(Node::Repeat {
                    node: Box::new(atom),
                    min,
                    max,
                });
            }
            _ => return Ok(atom),
        };
        self.chars.next();
        Ok(Node::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }
}

/// Strategy yielding strings matching a regex pattern.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    root: Node,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        self.root.generate(rng, &mut out);
        out
    }
}

/// Compiles `pattern` into a string strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut p = Parser {
        chars: pattern.chars().peekable(),
    };
    let root = p.parse_alt()?;
    if p.chars.next().is_some() {
        return err("unbalanced `)` in pattern");
    }
    Ok(RegexGeneratorStrategy { root })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestRng;

    fn gen_n(pattern: &str, n: usize) -> Vec<String> {
        let s = string_regex(pattern).expect("pattern compiles");
        let mut rng = TestRng::for_test(pattern);
        (0..n).map(|_| s.generate(&mut rng)).collect()
    }

    #[test]
    fn label_pattern_shapes() {
        for s in gen_n("[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?", 200) {
            assert!(!s.is_empty() && s.len() <= 12, "bad label {s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            assert!(!s.starts_with('-') && !s.ends_with('-'));
        }
    }

    #[test]
    fn alternation_and_escaped_dots() {
        for s in gen_n(
            "[a-z]{1,6}(\\.[a-z]{1,6}){0,2}\\.(com|net|org|co\\.uk)",
            200,
        ) {
            let ok = [".com", ".net", ".org", ".co.uk"]
                .iter()
                .any(|t| s.ends_with(t));
            assert!(ok, "bad tld in {s:?}");
        }
    }

    #[test]
    fn printable_class_never_emits_controls() {
        for s in gen_n("\\PC{0,40}", 200) {
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
            assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn malformed_patterns_error() {
        assert!(string_regex("[").is_err());
        assert!(string_regex("(a").is_err());
        assert!(string_regex("a)").is_err());
        assert!(string_regex("a{2,1}").is_err());
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("*").is_err());
    }
}
