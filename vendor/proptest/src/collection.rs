//! Collection strategies: `vec`, `hash_set`, `btree_set`.

use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;

use crate::{Strategy, TestRng};

/// Inclusive element-count bounds for a collection strategy.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        rng.between(self.lo as u64, self.hi as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy yielding `Vec`s of `element` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy yielding `HashSet`s of `element` with a size drawn from `size`.
///
/// Sizes are best-effort: when the element domain is too small to reach the
/// drawn size, the set is returned as large as repeated draws could make it.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = HashSet::with_capacity(n);
        let mut budget = n * 20 + 50;
        while out.len() < n && budget > 0 {
            budget -= 1;
            out.insert(self.element.generate(rng));
        }
        out
    }
}

/// Strategy yielding `BTreeSet`s of `element` with a size drawn from `size`.
///
/// Same best-effort size semantics as [`hash_set`].
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut budget = n * 20 + 50;
        while out.len() < n && budget > 0 {
            budget -= 1;
            out.insert(self.element.generate(rng));
        }
        out
    }
}
