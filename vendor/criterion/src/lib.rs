//! Offline vendored stand-in for the [`criterion`] benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors the
//! API subset its benches use: `Criterion`, `BenchmarkGroup`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a simple best-of-N wall-clock loop — good enough to
//! compare orders of magnitude and to keep `cargo bench` compiling; it does
//! not do criterion's statistical analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timer handle passed to the measured closure.
pub struct Bencher {
    samples: u64,
    best: Duration,
    total: Duration,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            best: Duration::MAX,
            total: Duration::ZERO,
        }
    }

    /// Runs `f` repeatedly, recording the best per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            self.total += dt;
            if dt < self.best {
                self.best = dt;
            }
        }
    }
}

fn report(label: &str, b: &Bencher) {
    if b.best == Duration::MAX {
        println!("bench {label:<40} (no samples)");
    } else {
        println!(
            "bench {label:<40} best {:>12.3?}  mean {:>12.3?}  ({} samples)",
            b.best,
            b.total / u32::try_from(b.samples).unwrap_or(1).max(1),
            b.samples,
        );
    }
}

/// Top-level harness object.
pub struct Criterion {
    sample_size: u64,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            smoke: false,
        }
    }
}

impl Criterion {
    /// Reads CLI arguments. Like the real harness, `--test` switches to smoke
    /// mode: every benchmark runs exactly once so CI can verify the bench
    /// targets execute without paying for measurement. Other arguments are
    /// accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.sample_size = 1;
            self.smoke = true;
        }
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            smoke: self.smoke,
            _parent: self,
        }
    }

    /// Final-summary hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    smoke: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (ignored in `--test` smoke mode,
    /// which pins every benchmark to a single sample).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.smoke {
            self.sample_size = n.max(1) as u64;
        }
        self
    }

    /// Accepted for API compatibility; the stub ignores time budgets.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("param", 5), &5, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn smoke_mode_pins_sample_size_to_one() {
        let mut c = Criterion {
            sample_size: 1,
            smoke: true,
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(50);
        assert_eq!(g.sample_size, 1, "smoke mode must ignore sample_size()");
        g.finish();
    }
}
