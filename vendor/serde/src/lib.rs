//! Offline vendored placeholder for `serde`.
//!
//! No workspace crate enables its `serde` feature by default, so nothing here
//! is ever compiled into a real code path. The crate exists only so that
//! offline dependency resolution succeeds. If a `serde` feature is turned on,
//! the `cfg`-gated derives in the workspace will fail to compile against this
//! stub — that is intentional: swap this path dependency for the real
//! crates.io `serde` first.
