//! Offline vendored stand-in for the [`bytes`] crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! exact subset of the `bytes` API that the sim's wire format uses: immutable
//! [`Bytes`], growable [`BytesMut`], the little-endian [`Buf`] reader trait
//! implemented for `&[u8]`, and the [`BufMut`] writer trait. Backed by plain
//! `Vec<u8>` — no refcounting tricks, which the wire codec never needed.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Owned `Vec<u8>` copy of the contents.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential little-endian writer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Sequential little-endian reader.
///
/// Methods panic when the buffer is exhausted, like the real crate; callers
/// bounds-check with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads `N` bytes into an array.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.len(), "read past end of buffer");
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        *self = &self[N..];
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_i32_le(-5);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.remaining(), 3);
        r.advance(1);
        assert_eq!(r, b"yz");
        r.advance(2);
        assert!(!r.has_remaining());
    }
}
