//! Offline vendored stand-in for the [`rand`] crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the *exact API subset it uses* instead of depending on
//! crates.io. `SmallRng` is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm the real `rand` crate uses for `SmallRng` on 64-bit targets — so
//! all streams are high-quality and fully deterministic for a given seed.
//!
//! Supported surface:
//! - [`rngs::SmallRng`] via [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`]
//! - [`Rng::random`] for `f64`, `f32`, the unsigned/signed integers, and `bool`
//! - [`Rng::random_range`] over half-open and inclusive integer ranges
//! - [`RngCore::next_u32`] / [`RngCore::next_u64`]

/// Low-level generator interface: raw 32/64-bit output words.
pub trait RngCore {
    /// Next raw 32-bit output.
    fn next_u32(&mut self) -> u32;
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a `u64` through SplitMix64
    /// (identical to real `rand`'s `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw output
/// (the `StandardUniform` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, u128 => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Types samplable uniformly from a range (`random_range`).
pub trait SampleUniform: Sized {
    /// Draws a value in `[lo, hi)`. `hi > lo` is the caller's contract;
    /// an empty range aborts with a descriptive panic, as real `rand` does.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range {lo}..{hi}");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Unbiased rejection sampling (Lemire-style threshold).
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let v = rng.next_u64();
                    if v < zone || zone == 0 {
                        return lo.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )+};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range {lo}..={hi}");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return Standard::sample(rng);
                }
                <$t>::sample_half_open(rng, lo, hi.wrapping_add(1))
            }
        }
    )+};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard-uniform distribution of `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// SplitMix64 step, used for seed expansion.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small, fast, deterministic generator: xoshiro256++.
    ///
    /// Matches the algorithm behind real `rand`'s 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro forbids the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [0xDEAD_BEEF_CAFE_F00D, 1, 2, 3];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.random_range(0usize..10);
            seen[v] = true;
            let w = r.random_range(5u32..=6);
            assert!((5..=6).contains(&w));
            let z = r.random_range(-3i32..3);
            assert!((-3..3).contains(&z));
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit");
    }
}
