//! # Toppling Top Lists — reproduction workspace facade
//!
//! This crate re-exports the whole workspace behind one dependency, mirroring
//! the structure of the paper it reproduces:
//!
//! *Kimberly Ruth, Deepak Kumar, Brandon Wang, Luke Valenta, Zakir Durumeric.
//! “Toppling Top Lists: Evaluating the Accuracy of Popular Website Lists.”
//! ACM IMC 2022.*
//!
//! | Module | Source crate | Contents |
//! |---|---|---|
//! | [`psl`] | `topple-psl` | Domain names, origins, Public Suffix List engine |
//! | [`stats`] | `topple-stats` | Correlation, set similarity, logistic regression |
//! | [`sim`] | `topple-sim` | Synthetic web ecosystem and traffic generator |
//! | [`vantage`] | `topple-vantage` | CDN / DNS / crawler / panel / telemetry observers |
//! | [`lists`] | `topple-lists` | The seven top-list construction methodologies |
//! | [`core`] | `topple-core` | The paper's evaluation framework and experiments |
//! | [`serve`] | `topple-serve` | Study snapshot store and HTTP query daemon |
//!
//! See `examples/quickstart.rs` for an end-to-end tour, and the
//! `topple-experiments` binary for regenerating every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use topple_core as core;
pub use topple_lists as lists;
pub use topple_psl as psl;
pub use topple_serve as serve;
pub use topple_sim as sim;
pub use topple_stats as stats;
pub use topple_vantage as vantage;
