//! Audit an external top list: read a `rank,name` CSV, normalize it with the
//! PSL, and score it against the simulated CDN's popularity metrics.
//!
//! With no argument the example writes a demo CSV (the simulated Alexa list
//! with some deliberate tampering) and audits that — so it runs standalone:
//!
//! ```sh
//! cargo run --release --example audit_list [path/to/list.csv]
//! ```

use std::fs;

use toppling::core::methodology::against_cloudflare;
use toppling::core::Study;
use toppling::lists::{normalize_ranked, ListSource, RankedList};
use toppling::sim::WorldConfig;
use toppling::vantage::CfMetric;

fn main() {
    let study = Study::run(WorldConfig::small(7)).expect("valid config");

    let path = std::env::args().nth(1).unwrap_or_else(|| {
        // Build a demo list: the study's Alexa list with its head tampered —
        // an attacker inserted three domains nobody visits (the classic
        // list-manipulation threat Tranco was designed against).
        let mut tampered = study.alexa_daily.last().unwrap().clone();
        let bogus = ["attacker-one.com", "attacker-two.net", "attacker-three.org"];
        for (i, name) in bogus.iter().enumerate() {
            tampered.entries.insert(
                i,
                toppling::lists::RankedEntry {
                    rank: 0,
                    name: (*name).to_owned(),
                },
            );
        }
        for (i, e) in tampered.entries.iter_mut().enumerate() {
            e.rank = i as u32 + 1;
        }
        let p = std::env::temp_dir().join("toppling-demo-list.csv");
        fs::write(&p, tampered.to_csv()).expect("write demo CSV");
        println!(
            "(no path given — wrote tampered demo list to {})\n",
            p.display()
        );
        p.to_string_lossy().into_owned()
    });

    let text = fs::read_to_string(&path).expect("read list CSV");
    let list = RankedList::from_csv(ListSource::Alexa, &text).expect("parse CSV");
    println!("loaded {} entries from {path}", list.len());

    let norm = normalize_ranked(&study.world.psl, &list);
    println!(
        "normalized: {} registrable domains, {:.1}% of raw entries deviated from the PSL",
        norm.len(),
        norm.deviation_percent()
    );

    let mags = study.magnitudes();
    println!("\nscore vs the CDN's seven popularity metrics:");
    for metric in CfMetric::final_seven() {
        let cf = study.cf_monthly_domains(metric);
        let (label, k) = mags[mags.len() - 2];
        let ev = against_cloudflare(&study, &norm, &cf, k);
        let rho = ev
            .similarity
            .spearman
            .map(|s| format!("{:+.2}", s.rho))
            .unwrap_or_else(|| "   –".into());
        println!(
            "  {:<22} top {label}: JI {:.3}  rho {rho}  ({} CF-served of top {k})",
            metric.label(),
            ev.similarity.jaccard,
            ev.cf_subset_size,
        );
    }

    // Flag head entries the CDN has never seen traffic for — likely junk or
    // manipulation (exactly how the demo list was tampered).
    let cf_all = study.cf_monthly_domains(CfMetric::final_seven()[0]);
    let cf_set: std::collections::HashSet<&str> = cf_all.iter().map(|d| d.as_str()).collect();
    println!("\nhead entries invisible to the CDN (candidate junk):");
    let mut shown = 0;
    for (d, rank) in norm.entries.iter().take(50) {
        if study.world.is_cloudflare(d) && !cf_set.contains(d.as_str()) {
            println!("  rank {rank:>4}: {d}");
            shown += 1;
        } else if study.world.site_by_domain(d).is_none() {
            println!("  rank {rank:>4}: {d}  (unknown domain)");
            shown += 1;
        }
    }
    if shown == 0 {
        println!("  none — the head looks clean");
    }
}
