//! Build a Tranco-style list from scratch and demonstrate why aggregation
//! helps: daily lists churn, the Dowdall aggregate doesn't — but the aggregate
//! inherits its inputs' biases (the paper's Section 6.4 caveat).
//!
//! ```sh
//! cargo run --release --example build_tranco
//! ```

use std::collections::HashSet;

use toppling::core::Study;
use toppling::lists::{tranco, ListSource, RankedList};
use toppling::sim::{Category, WorldConfig};

fn head_set(list: &RankedList, k: usize) -> HashSet<String> {
    list.top_names(k).map(str::to_owned).collect()
}

fn churn(a: &HashSet<String>, b: &HashSet<String>) -> usize {
    a.symmetric_difference(b).count()
}

fn main() {
    let study = Study::run(WorldConfig::small(23)).expect("valid config");
    let k = 100;

    // Day-over-day churn of the daily Alexa snapshots…
    let mut daily_churn = Vec::new();
    for w in study.alexa_daily.windows(2) {
        daily_churn.push(churn(&head_set(&w[0], k), &head_set(&w[1], k)));
    }
    let avg_daily: f64 = daily_churn.iter().sum::<usize>() as f64 / daily_churn.len() as f64;
    println!("avg day-over-day churn of the Alexa top {k}: {avg_daily:.1} domains");

    // …versus two Tranco aggregates built over adjacent windows.
    let days = study.alexa_daily.len();
    let window_a: Vec<&RankedList> = study.alexa_daily[..days - 1].iter().collect();
    let window_b: Vec<&RankedList> = study.alexa_daily[1..].iter().collect();
    let tranco_a = tranco::build(&window_a, 10_000);
    let tranco_b = tranco::build(&window_b, 10_000);
    let agg_churn = churn(&head_set(&tranco_a, k), &head_set(&tranco_b, k));
    println!("churn of the Dowdall aggregate when the window slides one day: {agg_churn} domains");
    assert!(
        (agg_churn as f64) <= avg_daily.max(1.0) * 1.5,
        "aggregation should not amplify churn"
    );

    // But aggregation does not fix bias: count adult sites in each head.
    let adult_share = |list: &RankedList| {
        let hits = list
            .top_names(500)
            .filter(|n| {
                n.parse::<toppling::psl::DomainName>()
                    .ok()
                    .and_then(|d| study.world.site_by_domain(&d))
                    .map(|s| s.category == Category::Adult)
                    .unwrap_or(false)
            })
            .count();
        100.0 * hits as f64 / 500.0
    };
    println!(
        "\nadult-site share of the top 500 (universe share: {:.1}%):",
        Category::Adult.universe_share() * 100.0
    );
    println!(
        "  Alexa (panel, no private windows): {:.1}%",
        adult_share(study.alexa_daily.last().unwrap())
    );
    println!(
        "  Tranco (aggregate of biased inputs): {:.1}%",
        adult_share(&study.tranco)
    );
    let crux_hits = study
        .crux
        .entries
        .iter()
        .take(500)
        .filter(|e| {
            e.name
                .split_once("://")
                .and_then(|(_, host)| host.parse::<toppling::psl::DomainName>().ok())
                .and_then(|d| study.world.psl.registrable_domain(&d))
                .and_then(|d| {
                    study
                        .world
                        .site_by_domain(&d)
                        .map(|s| s.category == Category::Adult)
                })
                .unwrap_or(false)
        })
        .count();
    println!(
        "  CrUX (telemetry): {:.1}%",
        100.0 * crux_hits as f64 / 500.0
    );
    println!("\n(Tranco smooths churn but inherits its inputs' category bias — Section 6.4.)");
    let _ = ListSource::Tranco;
}
