//! Archive a day of traffic to disk in the TPL1 wire format and replay it
//! into a fresh vantage, verifying byte-exact observational equivalence.
//!
//! This is the workflow a real deployment would use: the traffic source
//! writes day archives; analysis vantages consume them later, possibly on
//! another machine.
//!
//! ```sh
//! cargo run --release --example wire_replay
//! ```

use std::fs;

use toppling::sim::{wire, World, WorldConfig};
use toppling::vantage::{CdnVantage, CfMetric};

fn main() {
    let world = World::generate(WorldConfig::tiny(77)).expect("valid config");
    let day = world.simulate_day(0);

    // Archive.
    let encoded = wire::encode_day(&day);
    let path = std::env::temp_dir().join("toppling-day0.tpl1");
    fs::write(&path, &encoded).expect("write archive");
    println!(
        "archived day {} ({} page loads, {} third-party batches, {} background queries) \
         -> {} ({} bytes)",
        day.day,
        day.page_loads.len(),
        day.third_party.len(),
        day.background.len(),
        path.display(),
        encoded.len()
    );

    // Replay.
    let raw = fs::read(&path).expect("read archive");
    let replayed = wire::decode_day(&raw).expect("valid archive");

    // Observational equivalence: a vantage fed the replay produces identical
    // metrics to one fed the live stream.
    let live = CdnVantage::observe_day(&world, &day);
    let offline = CdnVantage::observe_day(&world, &replayed);
    let mut checked = 0;
    for m in CfMetric::full_suite() {
        assert_eq!(live.metric(m), offline.metric(m), "metric {m:?} diverged");
        checked += 1;
    }
    println!("replayed archive matches the live stream on all {checked} metrics");

    // Corruption is detected, not silently mis-parsed.
    let mut corrupted = raw.clone();
    let last = corrupted.len() - 1;
    corrupted.truncate(last - 2);
    match wire::decode_day(&corrupted) {
        Err(e) => println!("corrupted archive correctly rejected: {e}"),
        Ok(_) => unreachable!("truncation must be detected"),
    }
}
