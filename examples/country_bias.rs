//! Country bias deep-dive: which list should you use to study websites
//! popular in a *specific* country?
//!
//! Reproduces the Section 6.3 analysis interactively: compares every ranked
//! list against per-country Chrome telemetry and prints a recommendation per
//! country — making the paper's "Secrank only fits China, Umbrella skews US,
//! everyone misses Japan" finding tangible.
//!
//! ```sh
//! cargo run --release --example country_bias
//! ```

use toppling::core::bias;
use toppling::core::Study;
use toppling::sim::{Country, WorldConfig};

fn main() {
    let study = Study::run(WorldConfig::small(11)).expect("valid config");
    let mags = study.magnitudes();
    let (label, k) = mags[mags.len() - 2];

    let f7 = bias::figure7(&study, k);
    println!("Jaccard vs per-country Chrome telemetry at top {label} ({k}):\n");
    print!("{:<10}", "");
    for c in &f7.countries {
        print!(" {:>6}", c.code());
    }
    println!();
    for (li, list) in f7.lists.iter().enumerate() {
        print!("{:<10}", list.name());
        for ci in 0..f7.countries.len() {
            let v = f7.cells[li][ci].jaccard;
            if v.is_nan() {
                print!(" {:>6}", "–");
            } else {
                print!(" {v:>6.3}");
            }
        }
        println!();
    }

    println!("\nbest list per country:");
    for (ci, country) in f7.countries.iter().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        for li in 0..f7.lists.len() {
            let v = f7.cells[li][ci].jaccard;
            if v.is_finite() && best.map(|(_, b)| v > b).unwrap_or(true) {
                best = Some((li, v));
            }
        }
        match best {
            Some((li, v)) => println!(
                "  {:<3} {:<10} (JI {v:.3}){}",
                country.code(),
                f7.lists[li].name(),
                if *country == Country::Japan {
                    "  <- note how low Japan scores overall"
                } else {
                    ""
                }
            ),
            None => println!("  {:<3} (no usable telemetry cell)", country.code()),
        }
    }

    // The headline geographic skews, quantified.
    let ji = |list: toppling::lists::ListSource, country: Country| -> f64 {
        let li = f7.lists.iter().position(|&l| l == list).unwrap();
        let ci = f7.countries.iter().position(|&c| c == country).unwrap();
        f7.cells[li][ci].jaccard
    };
    println!("\npaper-shape checks:");
    println!(
        "  Secrank: CN {:.3} vs US {:.3} (should favour CN)",
        ji(toppling::lists::ListSource::Secrank, Country::China),
        ji(toppling::lists::ListSource::Secrank, Country::UnitedStates),
    );
    println!(
        "  Umbrella: US {:.3} vs JP {:.3} (should favour US)",
        ji(toppling::lists::ListSource::Umbrella, Country::UnitedStates),
        ji(toppling::lists::ListSource::Umbrella, Country::Japan),
    );
}
