//! Quickstart: generate a small synthetic web, build two top lists, and
//! evaluate them against the CDN's authoritative view.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use toppling::core::methodology::against_cloudflare;
use toppling::core::Study;
use toppling::lists::ListSource;
use toppling::sim::WorldConfig;
use toppling::vantage::CfMetric;

fn main() {
    // 1. One call runs the whole pipeline: world generation, a month of
    //    traffic, every vantage point, and every list construction.
    let study = Study::run(WorldConfig::small(42)).expect("valid config");
    println!(
        "world: {} sites, {} clients, {} days",
        study.world.sites.len(),
        study.world.clients.len(),
        study.world.config.days.len()
    );

    // 2. Peek at the lists that came out.
    println!("\nTranco head:");
    for e in study.tranco.entries.iter().take(5) {
        println!("  #{:<3} {}", e.rank, e.name);
    }
    println!("\nCrUX head (origin, bucket):");
    for e in study.crux.entries.iter().take(5) {
        println!("  {:<40} top-{}", e.name, e.bucket);
    }

    // 3. Evaluate each list against the CDN's all-HTTP-requests metric at the
    //    scaled top-"100K" magnitude, using the paper's subset methodology.
    let mags = study.magnitudes();
    let (label, k) = mags[mags.len() - 2];
    let cf = study.cf_monthly_domains(CfMetric::final_seven()[0]);
    println!("\nJaccard vs Cloudflare all-requests at top {label} ({k}):");
    let mut results: Vec<(ListSource, f64)> = ListSource::ALL
        .iter()
        .map(|&src| {
            let ev = against_cloudflare(&study, study.normalized(src), &cf, k);
            (src, ev.similarity.jaccard)
        })
        .collect();
    results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (src, ji) in results {
        println!("  {:<9} {ji:.3}", src.name());
    }
    println!("\n(The paper's finding: CrUX leads, Umbrella second, Secrank last.)");
}
