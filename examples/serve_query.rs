//! Serving a study: snapshot a run, boot the query daemon in-process, and
//! hit every endpoint over loopback.
//!
//! ```sh
//! cargo run --release --example serve_query
//! ```
//!
//! With `--probe HOST:PORT` the example instead acts as a minimal HTTP
//! client against an already-running daemon (`topple-experiments serve`),
//! printing `/health` and one compare cell and exiting non-zero if either
//! probe fails — this is the check CI's boot-smoke job runs.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use toppling::core::Study;
use toppling::serve::{encode_study, QuerySnapshot, Server, Snapshot};
use toppling::sim::WorldConfig;

/// One `Connection: close` GET against a live daemon; returns (status, body).
fn get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("malformed status line: {raw:?}"))?;
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
    Ok((status, body))
}

/// CI probe: /health must say ok, and a compare cell must come back 200.
fn probe(addr: &str) -> Result<(), String> {
    let (status, body) = get(addr, "/health")?;
    if status != 200 || !body.contains("\"status\":\"ok\"") {
        return Err(format!("/health -> {status}: {body}"));
    }
    println!("probe /health -> {body}");
    let (status, body) = get(addr, "/v1/compare?a=tranco&b=alexa&k=1000")?;
    if status != 200 || !body.contains("\"jaccard\":") {
        return Err(format!("/v1/compare -> {status}: {body}"));
    }
    println!("probe /v1/compare -> {body}");
    Ok(())
}

fn quickstart() -> Result<(), String> {
    // 1. Run a study and freeze it into the versioned snapshot format.
    //    (`topple-experiments snapshot write` does the same to a file.)
    let study = Study::run(WorldConfig::tiny(42)).map_err(|e| e.to_string())?;
    let artifacts = vec![("note".to_owned(), "built by serve_query".to_owned())];
    let bytes = encode_study(&study, "tiny", &artifacts);
    let snapshot = Snapshot::from_bytes(&bytes).map_err(|e| e.to_string())?;
    println!(
        "snapshot {} ({} bytes, {} domains)",
        snapshot.id(),
        bytes.len(),
        snapshot.index.table().len()
    );

    // 2. Boot the daemon on an ephemeral loopback port.
    let server = Arc::new(
        Server::bind("127.0.0.1:0", QuerySnapshot::new(snapshot), 2).map_err(|e| e.to_string())?,
    );
    let addr = server.local_addr().map_err(|e| e.to_string())?.to_string();
    let handle = server.handle();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    println!("serving on {addr}\n");

    // 3. Hit every endpoint. Pick a domain guaranteed to be ranked: the
    //    head of Tranco.
    let head = study.tranco.entries[0].name.clone();
    for path in [
        "/health".to_owned(),
        format!("/v1/rank/tranco/{head}"),
        format!("/v1/rank/crux/{head}"),
        "/v1/compare?a=tranco&b=umbrella&k=1000".to_owned(),
        format!("/v1/movement/{head}"),
        "/v1/artifact/note".to_owned(),
        "/v1/metrics".to_owned(),
    ] {
        let (status, body) = get(&addr, &path)?;
        let shown = if body.len() > 160 {
            format!("{}...", &body[..160])
        } else {
            body
        };
        println!("GET {path}\n  {status} {shown}\n");
    }

    // 4. Graceful drain: flip the shutdown flag and collect the stats.
    handle.store(true, Ordering::SeqCst);
    let stats = runner
        .join()
        .map_err(|_| "server thread panicked".to_owned())?
        .map_err(|e| e.to_string())?;
    println!(
        "drained: {} connections, {} requests",
        stats.connections, stats.requests
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("--probe") => match args.get(1) {
            Some(addr) => probe(addr),
            None => Err("usage: serve_query [--probe HOST:PORT]".to_owned()),
        },
        Some(other) => Err(format!(
            "unknown argument `{other}`; usage: serve_query [--probe HOST:PORT]"
        )),
        None => quickstart(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("serve_query: {message}");
            ExitCode::FAILURE
        }
    }
}
