//! Cross-crate integration: list formats, normalization, and the Table 1/2
//! pipeline on a shared study.

use std::sync::OnceLock;

use toppling::core::{coverage, psl_dev, Study};
use toppling::lists::{normalize_ranked, ListSource, RankedList};
use toppling::sim::WorldConfig;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(WorldConfig::small(808)).expect("study runs"))
}

#[test]
fn every_list_serializes_and_reparses() {
    let s = study();
    for list in [&s.tranco, &s.trexa, &s.majestic, &s.secrank] {
        let csv = list.to_csv();
        let back = RankedList::from_csv(list.source, &csv).unwrap();
        assert_eq!(&back, list);
    }
    for daily in [&s.alexa_daily, &s.umbrella_daily] {
        let last = daily.last().unwrap();
        let back = RankedList::from_csv(last.source, &last.to_csv()).unwrap();
        assert_eq!(&back, last);
    }
    // CrUX serializes as origin,bucket lines.
    let crux_csv = s.crux.to_csv();
    assert!(crux_csv.lines().count() == s.crux.len());
    for line in crux_csv.lines().take(10) {
        let (origin, bucket) = line.rsplit_once(',').unwrap();
        assert!(origin.contains("://"));
        assert!(bucket.parse::<u32>().is_ok());
    }
}

#[test]
fn ranks_are_dense_and_unique_in_every_ranked_list() {
    let s = study();
    for list in [&s.tranco, &s.trexa, &s.majestic, &s.secrank] {
        for (i, e) in list.entries.iter().enumerate() {
            assert_eq!(e.rank, i as u32 + 1, "{:?} rank gap at {i}", list.source);
        }
        let names: std::collections::HashSet<&str> =
            list.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names.len(),
            list.len(),
            "{:?} has duplicate names",
            list.source
        );
    }
}

#[test]
fn umbrella_is_fqdn_shaped_and_others_are_domain_shaped() {
    let s = study();
    let dev = |l: &RankedList| normalize_ranked(&s.world.psl, l).deviation_percent();
    assert!(dev(s.umbrella_daily.last().unwrap()) > 40.0);
    assert!(dev(&s.majestic) < 5.0);
    assert!(dev(&s.secrank) < 5.0);
    assert!(dev(&s.tranco) < 5.0);
}

#[test]
fn coverage_and_deviation_tables_are_complete() {
    let s = study();
    let t1 = coverage::table1(s);
    let t2 = psl_dev::table2(s).unwrap();
    assert_eq!(t1.len(), ListSource::ALL.len());
    assert_eq!(t2.len(), ListSource::ALL.len());
    let mags = s.magnitudes().len();
    for row in &t1 {
        assert_eq!(row.cells.len(), mags);
    }
    for row in &t2 {
        assert_eq!(row.cells.len(), mags);
    }
    // Coverage at the full magnitude should hover near the configured CDN
    // share for the broad lists.
    let full = |src: ListSource| {
        t1.iter()
            .find(|r| r.source == src)
            .unwrap()
            .cells
            .last()
            .unwrap()
            .2
    };
    for src in [ListSource::Tranco, ListSource::Umbrella, ListSource::Crux] {
        let pct = full(src);
        assert!(
            (10.0..=45.0).contains(&pct),
            "{src} full-list CF coverage {pct:.1}% far from the ~25% CDN share"
        );
    }
}

#[test]
fn normalized_lists_agree_with_raw_heads() {
    // The #1 entry of each domain-shaped list survives normalization at #1.
    let s = study();
    for list in [&s.majestic, &s.secrank] {
        let norm = normalize_ranked(&s.world.psl, list);
        assert_eq!(norm.entries[0].0.as_str(), list.entries[0].name);
        assert_eq!(norm.entries[0].1, 1);
    }
}
