//! String-path vs id-path equivalence: the interned columnar analysis stage
//! must be **byte-identical** (every `f64` bit) to the string-keyed reference
//! implementation it replaced, on real studies and on adversarial synthetic
//! rankings.

use proptest::prelude::*;
use toppling::core::{
    against_cloudflare, against_cloudflare_ids, consistency, similarity, similarity_ids, IdCut,
    Study,
};
use toppling::lists::{DomainId, DomainTable, ListSource};
use toppling::psl::DomainName;
use toppling::sim::WorldConfig;
use toppling::vantage::CfMetric;

fn study() -> Study {
    Study::run(WorldConfig::tiny(7001)).expect("study runs")
}

/// Asserts two floats are the same bit pattern (NaN-safe, sign-of-zero-safe).
fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a:?} vs {b:?}");
}

#[test]
fn against_cloudflare_matches_id_path_exactly() {
    let s = study();
    let mags = s.magnitudes();
    for &(_, k) in &mags {
        for metric in CfMetric::final_seven() {
            let cf_domains = s.cf_monthly_domains(metric);
            let cf_ids = s.cf_monthly_ids(metric);
            for &src in ListSource::ALL.iter() {
                let ev_str = against_cloudflare(&s, s.normalized(src), &cf_domains, k);
                let ev_ids = against_cloudflare_ids(s.index().monthly(src), &cf_ids, k);
                let what = format!("{src:?} k={k} {metric:?}");
                assert_eq!(ev_str.cf_subset_size, ev_ids.cf_subset_size, "{what}");
                assert_bits(
                    ev_str.similarity.jaccard,
                    ev_ids.similarity.jaccard,
                    &format!("{what} jaccard"),
                );
                match (ev_str.similarity.spearman, ev_ids.similarity.spearman) {
                    (None, None) => {}
                    (Some(a), Some(b)) => assert_bits(a.rho, b.rho, &format!("{what} rho")),
                    (a, b) => panic!("{what}: spearman presence differs: {a:?} vs {b:?}"),
                }
            }
        }
    }
}

#[test]
fn consistency_matrix_matches_id_path_exactly() {
    let s = study();
    let mags = s.magnitudes();
    let k = mags[mags.len() - 2].1;
    let metrics: Vec<CfMetric> = CfMetric::final_seven().to_vec();
    let labels: Vec<String> = metrics.iter().map(|m| format!("{m:?}")).collect();
    let str_rankings: Vec<Vec<DomainName>> =
        metrics.iter().map(|&m| s.cf_monthly_domains(m)).collect();
    let id_rankings: Vec<Vec<DomainId>> = metrics.iter().map(|&m| s.cf_monthly_ids(m)).collect();

    let reference = consistency::matrix_from_rankings(labels.clone(), &str_rankings, k);
    for workers in [1usize, 2, 8] {
        let interned =
            consistency::matrix_from_id_rankings(labels.clone(), &id_rankings, k, workers);
        for i in 0..metrics.len() {
            for j in 0..metrics.len() {
                assert_bits(
                    reference.jaccard[i][j],
                    interned.jaccard[i][j],
                    &format!("jaccard[{i}][{j}] workers={workers}"),
                );
                assert_bits(
                    reference.spearman[i][j],
                    interned.spearman[i][j],
                    &format!("spearman[{i}][{j}] workers={workers}"),
                );
            }
        }
    }
}

/// Builds parallel string/id rankings from rank-ordered index lists: index
/// `i` becomes the name `d{i}.test` and the id interned for it, so both
/// paths see the same abstract ranking.
fn parallel_rankings(
    table: &mut DomainTable,
    names: &mut Vec<DomainName>,
    ranking: &[u32],
) -> Vec<DomainId> {
    ranking
        .iter()
        .map(|&i| {
            let name: DomainName = format!("d{i}.test").parse().expect("valid name");
            let id = table.intern(&name);
            names.push(name);
            id
        })
        .collect()
}

/// Keeps the first occurrence of each value, preserving order — turns an
/// arbitrary u32 vector into a valid (unique-entry) best-first ranking.
fn dedup_first(v: Vec<u32>) -> Vec<u32> {
    let mut seen = std::collections::BTreeSet::new();
    v.into_iter().filter(|&x| seen.insert(x)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn similarity_bits_match_on_synthetic_rankings(
        raw_a in proptest::collection::vec(0u32..300, 0..120),
        raw_b in proptest::collection::vec(0u32..300, 0..120),
    ) {
        let (rank_a, rank_b) = (dedup_first(raw_a), dedup_first(raw_b));
        let mut table = DomainTable::new();
        let mut names_a = Vec::new();
        let mut names_b = Vec::new();
        let ids_a = parallel_rankings(&mut table, &mut names_a, &rank_a);
        let ids_b = parallel_rankings(&mut table, &mut names_b, &rank_b);

        let refs_a: Vec<&DomainName> = names_a.iter().collect();
        let refs_b: Vec<&DomainName> = names_b.iter().collect();
        let sim_str = similarity(&refs_a, &refs_b);
        let sim_ids = similarity_ids(&IdCut::new(&ids_a), &IdCut::new(&ids_b));

        prop_assert_eq!(sim_str.jaccard.to_bits(), sim_ids.jaccard.to_bits());
        match (sim_str.spearman, sim_ids.spearman) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.rho.to_bits(), b.rho.to_bits());
                prop_assert_eq!(a.n, b.n);
            }
            (a, b) => prop_assert!(false, "spearman presence differs: {:?} vs {:?}", a, b),
        }
    }
}
