//! Fused-pipeline equivalence over a realistic window: the streaming
//! `DayScratch` path (what `Study::run` uses, including pooled scratch
//! shared by worker threads) must produce exactly the shards the
//! materialized `DayShards::observe` path produces, for every day.
//!
//! `tests/merge_laws.rs` checks the same equality on tiny worlds;
//! `tests/determinism.rs` pins the end-to-end byte-identity across worker
//! counts. This suite covers the middle: the small preset's full window,
//! with scratch checked in and out of a shared [`ScratchPool`] from
//! multiple threads the way the study worker pool does.

use toppling::sim::{World, WorldConfig};
use toppling::vantage::{DayScratch, DayShards, ScratchPool};

#[test]
fn fused_window_matches_materialized_window() {
    let world = World::generate(WorldConfig::small(7070)).unwrap();
    let n_days = world.config.days.len();
    let mut scratch = DayScratch::new(&world);
    for d in 0..n_days {
        let fused = scratch.observe_day(&world, d);
        let traffic = world.simulate_day(d);
        assert_eq!(fused, DayShards::observe(&world, &traffic), "day {d}");
    }
}

#[test]
fn pooled_scratch_across_threads_matches_materialized() {
    let world = World::generate(WorldConfig::small(7071)).unwrap();
    let n_days = world.config.days.len();
    let pool = ScratchPool::new();

    // Fewer workers than days, so scratch states are reused across days and
    // handed between threads through the pool — the study's access pattern.
    // Each spawned chunk carries its starting day index, so every result
    // lands in the slot for the day it actually observed.
    let mut fused: Vec<Option<DayShards>> = Vec::new();
    fused.resize_with(n_days, || None);
    std::thread::scope(|s| {
        let chunk = n_days.div_ceil(3);
        for (t, slice) in fused.chunks_mut(chunk).enumerate() {
            let (pool, world) = (&pool, &world);
            s.spawn(move || {
                for (i, slot) in slice.iter_mut().enumerate() {
                    let d = t * chunk + i;
                    let mut scratch = pool.checkout_or(|| DayScratch::new(world));
                    *slot = Some(scratch.observe_day(world, d));
                    pool.put_back(scratch);
                }
            });
        }
    });

    for (d, got) in fused.into_iter().enumerate() {
        let traffic = world.simulate_day(d);
        let want = DayShards::observe(&world, &traffic);
        assert_eq!(got.expect("every day observed"), want, "day {d}");
    }
}
