//! Determinism regression: two studies run from the same seed must produce
//! byte-identical artifacts. This is the property `topple-lint`'s `hash-iter`
//! rule exists to protect — a single unsorted `HashMap` iteration anywhere in
//! the list-construction or analysis paths shows up here as a diff.

use std::fmt::Write as _;

use toppling::core::{consistency, coverage, listeval, temporal, Study};
use toppling::lists::ListSource;
use toppling::sim::WorldConfig;

/// Serializes every artifact that historically depended on map iteration
/// order: the normalized lists themselves (ranks included), the Figure 2
/// similarity matrices, and the intra-Cloudflare consistency matrix.
fn snapshot(seed: u64) -> String {
    snapshot_with_workers(seed, None)
}

/// Like [`snapshot`], pinning the pipeline worker count. `None` defers to
/// `TOPPLE_WORKERS` / machine parallelism, which is what CI varies.
fn snapshot_with_workers(seed: u64, workers: Option<usize>) -> String {
    let config = WorldConfig {
        workers,
        ..WorldConfig::tiny(seed)
    };
    let s = Study::run(config).expect("study runs");
    let mags = s.magnitudes();
    let k = mags[mags.len() - 2].1;

    let mut out = String::new();
    for &src in ListSource::ALL.iter() {
        let list = s.normalized(src);
        let _ = writeln!(out, "## {src:?} ({} entries)", list.entries.len());
        for (domain, rank) in &list.entries {
            let _ = writeln!(out, "{rank}\t{}", domain.as_str());
        }
    }
    let ev = listeval::figure2(&s, k);
    let _ = writeln!(out, "## figure2 jaccard {:?}", ev.jaccard);
    let _ = writeln!(out, "## figure2 spearman {:?}", ev.spearman);
    let m = consistency::intra_cloudflare_final(&s, k);
    let _ = writeln!(out, "## fig1 jaccard {:?}", m.jaccard);
    let _ = writeln!(out, "## fig1 spearman {:?}", m.spearman);
    // The remaining parallel analysis surfaces: the day-fan-out temporal
    // series, the columnar coverage table, and the Chrome cell matrix.
    for series in temporal::figure3(&s, k) {
        let _ = writeln!(
            out,
            "## fig3 {:?} ji {:?} rho {:?}",
            series.source, series.jaccard, series.spearman
        );
    }
    for row in coverage::table1(&s) {
        let _ = writeln!(out, "## table1 {:?} {:?}", row.source, row.cells);
    }
    let chrome = consistency::intra_chrome(&s, k);
    let _ = writeln!(out, "## chrome jaccard {:?}", chrome.jaccard);
    out
}

/// FNV-1a over the snapshot text: a stable, dependency-free digest for
/// pinning the byte-identity contract across releases.
fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-epoch pinned digests of `snapshot(4242)`. When the draw sequence
/// changes intentionally: bump `DETERMINISM_EPOCH` in `crates/sim`, re-run
/// `topple-lint epoch emit --write`, and add the new `(epoch, digest)` row
/// here (printed by this test on mismatch). `topple-lint epoch verify` keeps
/// sources and manifest honest; this pin keeps the *bytes* honest.
const EPOCH_SNAPSHOTS: &[(u32, u64)] = &[(1, 0x7df2_7435_1dc0_93e3), (2, 0xc733_5963_64ad_8625)];

#[test]
fn epoch_snapshot_digest_is_pinned() {
    // Key on the *runtime* epoch (field → TOPPLE_EPOCH → default), so CI's
    // TOPPLE_EPOCH matrix pins both universes with the same test.
    let epoch = WorldConfig::tiny(4242).effective_epoch();
    let got = fnv1a(&snapshot(4242));
    let pinned = EPOCH_SNAPSHOTS
        .iter()
        .find(|(e, _)| *e == epoch)
        .map(|(_, d)| *d)
        .unwrap_or_else(|| {
            panic!(
                "effective epoch is {epoch} but EPOCH_SNAPSHOTS has no row for it; \
                 measured digest is {got:#018x} — pin it"
            )
        });
    assert_eq!(
        got, pinned,
        "snapshot digest for epoch {epoch} is {got:#018x}, pinned {pinned:#018x}; \
         an unbumped draw-sequence change slipped past `topple-lint epoch verify`"
    );
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = snapshot(4242);
    let b = snapshot(4242);
    if a != b {
        // Point at the first diverging line rather than dumping megabytes.
        for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
            assert_eq!(la, lb, "first divergence at snapshot line {}", i + 1);
        }
        panic!(
            "snapshots differ in length: {} vs {} bytes",
            a.len(),
            b.len()
        );
    }
}

#[test]
fn different_seeds_differ() {
    // Guards against the snapshot accidentally serializing nothing seeded.
    assert_ne!(snapshot(4242), snapshot(4243));
}

#[test]
fn worker_count_does_not_change_artifacts() {
    // The shard/merge pipeline must be invisible in the output: the inline
    // single-worker path and the threaded pool at several widths (including
    // more workers than days) all reconstruct the same sequential fold.
    let inline = snapshot_with_workers(4242, Some(1));
    for workers in [2, 8] {
        let pooled = snapshot_with_workers(4242, Some(workers));
        if inline != pooled {
            for (i, (la, lb)) in inline.lines().zip(pooled.lines()).enumerate() {
                assert_eq!(
                    la,
                    lb,
                    "workers={workers}: first divergence at snapshot line {}",
                    i + 1
                );
            }
            panic!(
                "workers={workers}: snapshots differ in length: {} vs {} bytes",
                inline.len(),
                pooled.len()
            );
        }
    }
}
