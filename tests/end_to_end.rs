//! End-to-end integration: run a full study and assert the paper's headline
//! findings hold in shape — who wins, who loses, and by roughly what
//! relationship — across crate boundaries.

use std::sync::OnceLock;

use toppling::core::methodology::against_cloudflare;
use toppling::core::{consistency, listeval, movement, psl_dev, Study};
use toppling::lists::ListSource;
use toppling::sim::WorldConfig;
use toppling::vantage::CfMetric;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(WorldConfig::small(2022)).expect("study runs"))
}

fn heat_k(s: &Study) -> usize {
    let mags = s.magnitudes();
    mags[mags.len() - 2].1
}

#[test]
fn crux_is_the_most_accurate_list_by_jaccard() {
    let s = study();
    let ev = listeval::figure2(s, heat_k(s));
    let mean_ji = |src: ListSource| {
        let i = ev.lists.iter().position(|&x| x == src).unwrap();
        ev.jaccard[i].iter().sum::<f64>() / ev.jaccard[i].len() as f64
    };
    let crux = mean_ji(ListSource::Crux);
    for other in ListSource::ALL
        .into_iter()
        .filter(|&s| s != ListSource::Crux)
    {
        assert!(
            crux > mean_ji(other),
            "CrUX ({crux:.3}) must beat {other} ({:.3})",
            mean_ji(other)
        );
    }
}

#[test]
fn umbrella_beats_the_weak_lists_by_jaccard() {
    // Paper: Umbrella captures the popular-site set second best. At
    // simulation scale it ties Alexa (membership breadth is the binding
    // constraint; see EXPERIMENTS.md), but must clearly beat the link- and
    // China-derived lists.
    let s = study();
    let ev = listeval::figure2(s, heat_k(s));
    let mean_ji = |src: ListSource| {
        let i = ev.lists.iter().position(|&x| x == src).unwrap();
        ev.jaccard[i].iter().sum::<f64>() / ev.jaccard[i].len() as f64
    };
    let umbrella = mean_ji(ListSource::Umbrella);
    for worse in [ListSource::Majestic, ListSource::Secrank] {
        assert!(
            umbrella > mean_ji(worse),
            "Umbrella ({umbrella:.3}) must beat {worse} ({:.3})",
            mean_ji(worse)
        );
    }
    assert!(
        umbrella > mean_ji(ListSource::Alexa) - 0.05,
        "Umbrella ({umbrella:.3}) should at least tie Alexa ({:.3})",
        mean_ji(ListSource::Alexa)
    );
}

#[test]
fn secrank_is_least_accurate() {
    let s = study();
    let ev = listeval::figure2(s, heat_k(s));
    let mean_ji = |src: ListSource| {
        let i = ev.lists.iter().position(|&x| x == src).unwrap();
        ev.jaccard[i].iter().sum::<f64>() / ev.jaccard[i].len() as f64
    };
    let secrank = mean_ji(ListSource::Secrank);
    for better in ListSource::ALL
        .into_iter()
        .filter(|&s| s != ListSource::Secrank)
    {
        assert!(secrank <= mean_ji(better), "Secrank must trail {better}");
    }
}

#[test]
fn only_crux_reaches_the_intra_cloudflare_band() {
    // Section 5.1: CrUX's JI falls inside the intra-Cloudflare band; no other
    // list's best value clearly enters it.
    let s = study();
    let k = heat_k(s);
    let m = consistency::intra_cloudflare_final(s, k);
    let (band_lo, _band_hi) = m.jaccard_range();
    let ev = listeval::figure2(s, k);
    let best_ji = |src: ListSource| {
        let i = ev.lists.iter().position(|&x| x == src).unwrap();
        ev.jaccard[i]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    };
    assert!(
        best_ji(ListSource::Crux) >= band_lo * 0.85,
        "CrUX best JI {:.3} should approach the intra-CF band floor {band_lo:.3}",
        best_ji(ListSource::Crux)
    );
    for far in [ListSource::Alexa, ListSource::Majestic, ListSource::Secrank] {
        assert!(
            best_ji(far) < band_lo,
            "{far} best JI {:.3} should stay below the band floor {band_lo:.3}",
            best_ji(far)
        );
    }
}

#[test]
fn aggregates_improve_on_inputs_but_never_reach_crux() {
    // Section 5.1 finds Tranco/Trexa "approximately average" their inputs.
    // At simulation scale, membership breadth is the binding constraint, so
    // the Dowdall union does better than an average of its inputs (recorded
    // as a divergence in EXPERIMENTS.md) — but the paper's decisive claim
    // still holds: no aggregation strategy closes the gap to CrUX.
    let s = study();
    let ev = listeval::figure2(s, heat_k(s));
    let mean_ji = |src: ListSource| {
        let i = ev.lists.iter().position(|&x| x == src).unwrap();
        ev.jaccard[i].iter().sum::<f64>() / ev.jaccard[i].len() as f64
    };
    let worst_input = mean_ji(ListSource::Majestic).min(mean_ji(ListSource::Alexa));
    let crux = mean_ji(ListSource::Crux);
    for agg in [ListSource::Tranco, ListSource::Trexa] {
        let v = mean_ji(agg);
        assert!(
            v >= worst_input,
            "{agg} ({v:.3}) must not trail its worst input"
        );
        assert!(
            v < crux - 0.03,
            "{agg} ({v:.3}) must stay clearly below CrUX ({crux:.3})"
        );
    }
}

#[test]
fn umbrella_rank_order_collapses_in_the_tie_band() {
    // Section 5.2's mechanism: beyond the head, Umbrella's integer unique-IP
    // scores tie massively and ties break alphabetically, so rank carries no
    // signal there — while the head (differentiated counts) still orders.
    use toppling::core::spearman_intersection;
    use toppling::lists::normalize_ranked;
    use toppling::psl::DomainName;

    let s = study();
    let day = s.umbrella_daily.len() / 2;
    let umb = normalize_ranked(&s.world.psl, &s.umbrella_daily[day]);
    let cf: Vec<DomainName> = s
        .cf_ranked_domains(s.cdn.daily_all_requests(day))
        .into_iter()
        .cloned()
        .collect();
    let cf_refs: Vec<&DomainName> = cf.iter().collect();
    // Head band: Umbrella's CF-served top slice; tail band: the slice a
    // thousand ranks deeper.
    let umb_cf: Vec<&DomainName> = umb
        .entries
        .iter()
        .map(|(d, _)| d)
        .filter(|d| s.world.is_cloudflare(d))
        .collect();
    let band = (umb_cf.len() / 3).max(50);
    if umb_cf.len() < band * 3 {
        return; // world too small for band analysis
    }
    let head = &umb_cf[..band];
    let tail = &umb_cf[umb_cf.len() - band..];
    let head_rho = spearman_intersection(head, &cf_refs)
        .map(|r| r.rho)
        .unwrap_or(0.0);
    let tail_rho = spearman_intersection(tail, &cf_refs)
        .map(|r| r.rho)
        .unwrap_or(0.0);
    assert!(
        head_rho > tail_rho + 0.1,
        "head band rho ({head_rho:.3}) should clearly beat tail band rho ({tail_rho:.3})"
    );
    assert!(
        tail_rho < 0.45,
        "tail band should carry little rank signal: {tail_rho:.3}"
    );
}

#[test]
fn table2_shape_holds() {
    let s = study();
    let rows = psl_dev::table2(s).unwrap();
    let last = |src: ListSource| {
        rows.iter()
            .find(|r| r.source == src)
            .unwrap()
            .cells
            .last()
            .unwrap()
            .2
    };
    assert!(last(ListSource::Umbrella) > 40.0);
    assert!(last(ListSource::Crux) > 40.0);
    assert!(last(ListSource::Tranco) < 5.0, "Tranco is PSL-filtered");
    assert!(last(ListSource::Alexa) < 10.0);
}

#[test]
fn alexa_moves_more_rank_magnitude_mass_than_crux() {
    let s = study();
    let alexa = movement::figure5(s, ListSource::Alexa);
    let crux = movement::figure5(s, ListSource::Crux);
    // Aggregate overranked share weighted by measured domains.
    let total_over = |r: &movement::MovementReport| {
        let (mut over, mut n) = (0.0, 0.0);
        for b in &r.overranking {
            over += b.overranked / 100.0 * b.measured as f64;
            n += b.measured as f64;
        }
        if n > 0.0 {
            over / n
        } else {
            0.0
        }
    };
    let a = total_over(&alexa);
    let c = total_over(&crux);
    assert!(
        a > c,
        "Alexa should overrank more than CrUX overall: {:.1}% vs {:.1}%",
        a * 100.0,
        c * 100.0
    );
}

#[test]
fn evaluation_against_all_seven_metrics_is_well_formed() {
    let s = study();
    let k = heat_k(s);
    for metric in CfMetric::final_seven() {
        let cf = s.cf_monthly_domains(metric);
        assert!(!cf.is_empty());
        for src in ListSource::ALL {
            let ev = against_cloudflare(s, s.normalized(src), &cf, k);
            assert!((0.0..=1.0).contains(&ev.similarity.jaccard));
            assert!(ev.cf_subset_size <= k);
            if let Some(rho) = ev.similarity.spearman {
                assert!((-1.0..=1.0).contains(&rho.rho));
                assert!((0.0..=1.0).contains(&rho.p_value));
            }
        }
    }
}
