//! Allocation audit for the fused ingestion hot path.
//!
//! The point of the streaming pipeline is that a warmed-up `DayScratch`
//! ingests a day with zero heap traffic: uniqueness maps and dense
//! accumulators are epoch-cleared, never reallocated, and no `DayTraffic`
//! event buffers exist. This test pins that property with a counting global
//! allocator: after warming the scratch over the full window once,
//! re-observing every day through `DayScratch::parts` + `simulate_day_into`
//! must
//! perform zero allocations. Shard materialization (`finish_day`) is
//! excluded — it builds the output `BTreeMap`s, which necessarily allocate.
//!
//! The file holds exactly one `#[test]`: the allocator counter is global,
//! and a concurrently running test would pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use toppling::sim::{World, WorldConfig};
use toppling::vantage::DayScratch;

/// Passes through to the system allocator, counting allocations (and
/// reallocations — growth is what scratch reuse must avoid) while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A sink that observes events without accumulating anything, used to
/// separate "the generator allocates" from "the builders allocate".
struct NullSink;

impl toppling::sim::EventSink for NullSink {
    fn page_load(&mut self, _: &toppling::sim::PageLoad) {}
    fn third_party(&mut self, _: &toppling::sim::ThirdPartyFetch) {}
    fn background(&mut self, _: &toppling::sim::BackgroundQuery) {}
}

fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn warmed_fused_ingestion_does_not_allocate() {
    let world = World::generate(WorldConfig::small(4242)).unwrap();
    let n_days = world.config.days.len();

    // Warm-up pass: scratch tables grow to the window's working-set size
    // (and the outputs of finish_day are built and dropped).
    let mut scratch = DayScratch::new(&world);
    for d in 0..n_days {
        drop(scratch.observe_day(&world, d));
    }

    // The generator alone must already be allocation-free on a warm
    // TrafficScratch (its stub-cache table is sized at construction).
    let mut traffic_scratch = toppling::sim::TrafficScratch::for_world(&world);
    for d in 0..n_days {
        world.simulate_day_into(d, &mut traffic_scratch, &mut NullSink);
    }
    let generator_allocs = count_allocs(|| {
        for d in 0..n_days {
            world.simulate_day_into(d, &mut traffic_scratch, &mut NullSink);
        }
    });
    assert_eq!(
        generator_allocs, 0,
        "traffic generation allocated on a warm scratch"
    );

    // Full fused pass, warm: simulate + all five builders accumulating,
    // across every day of the window, without a single allocation.
    let fused_allocs = count_allocs(|| {
        for d in 0..n_days {
            let (traffic, mut obs) = scratch.parts(&world);
            world.simulate_day_into(d, traffic, &mut obs);
            // Intentionally no finish_day: materializing output shards
            // allocates by design; the per-event path must not.
        }
    });
    assert_eq!(
        fused_allocs, 0,
        "fused per-event ingestion allocated on warm scratch"
    );
}
