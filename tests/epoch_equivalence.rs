//! Cross-epoch equivalence: the batched epoch-2 generator must produce the
//! *same world* as the frozen epoch-1 reference, up to RNG identity.
//!
//! Byte identity across epochs is impossible by construction (that is what
//! the epoch bump legalizes: per-client substreams, multiply-high index
//! picks, single-uniform Poisson inversion, an unconditional root-path
//! coin). What must hold instead — and what this harness pins — is
//! *distributional* identity: the same static universe, the same exact
//! per-event invariants, per-client volumes that agree within Poisson
//! noise, vantage-relevant subpopulation shares that match to a fraction of
//! a percent, and a top-1K popularity ranking that is nearly the identity
//! across epochs at medium scale.
//!
//! The thresholds are deterministic (fixed seeds, fixed windows), so a
//! regression in either generator trips them reproducibly.

use std::collections::{HashMap, HashSet};

use toppling::sim::{
    BackgroundQuery, EventSink, PageLoad, ThirdPartyFetch, TrafficScratch, World, WorldConfig,
};
use toppling::stats::corr::spearman;
use toppling::stats::sets::jaccard;

/// Tallies every event by the dimensions the vantage crates observe.
#[derive(Default)]
struct TallySink {
    /// Page loads per client index.
    per_client: Vec<u64>,
    /// Page loads per site index.
    per_site: Vec<u64>,
    /// Page loads in vantage-relevant subpopulations, keyed by label.
    shares: HashMap<&'static str, u64>,
    page_loads: u64,
    third_party: u64,
    background: u64,
    dwell_total: u64,
    requests_total: u64,
}

impl TallySink {
    fn for_world(world: &World) -> TallySink {
        TallySink {
            per_client: vec![0; world.clients.len()],
            per_site: vec![0; world.sites.len()],
            ..TallySink::default()
        }
    }

    /// Classifies `pl` against the generating world's client table. Borrow
    /// rules keep the sink from holding `&World`, so the world is passed in
    /// by the caller-side wrapper sink below.
    fn observe(&mut self, world: &World, pl: &PageLoad) {
        self.page_loads += 1;
        self.per_client[pl.client.index()] += 1;
        self.per_site[pl.site.index()] += 1;
        self.dwell_total += u64::from(pl.dwell_secs);
        self.requests_total += u64::from(pl.total_requests());
        let c = &world.clients[pl.client.index()];
        for (label, hit) in [
            ("enterprise", c.enterprise),
            ("panelist", c.alexa_panelist),
            ("chrome-optin", c.chrome_optin),
            ("private-mode", pl.private_mode),
            ("completed", pl.completed),
            ("root-path", pl.is_root_path),
            ("dns-fresh", pl.dns_fresh),
        ] {
            if hit {
                *self.shares.entry(label).or_insert(0) += 1;
            }
        }
    }

    fn share(&self, label: &str) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            *self.shares.get(label).unwrap_or(&0) as f64 / self.page_loads as f64
        }
    }
}

/// Pairs a [`TallySink`] with the world it classifies against.
struct WorldTally<'w> {
    world: &'w World,
    tally: TallySink,
}

impl EventSink for WorldTally<'_> {
    fn page_load(&mut self, pl: &PageLoad) {
        self.tally.observe(self.world, pl);
    }
    fn third_party(&mut self, _tp: &ThirdPartyFetch) {
        self.tally.third_party += 1;
    }
    fn background(&mut self, _bg: &BackgroundQuery) {
        self.tally.background += 1;
    }
}

/// Runs `epoch` over its own world and returns the folded tallies.
fn tally_epoch(config: &WorldConfig, epoch: u32) -> (World, TallySink) {
    let config = WorldConfig {
        epoch: Some(epoch),
        days: config.days[..7.min(config.days.len())].to_vec(),
        ..config.clone()
    };
    let world = World::generate(config).expect("world generates");
    let mut tally = TallySink::for_world(&world);
    {
        let mut sink = WorldTally {
            world: &world,
            tally,
        };
        let mut scratch = TrafficScratch::for_world(&world);
        for day in 0..sink.world.config.days.len() {
            sink.world.simulate_day_into(day, &mut scratch, &mut sink);
        }
        tally = sink.tally;
    }
    (world, tally)
}

/// The static universe is a pure function of the seed: epoch selection must
/// not perturb generation at all.
#[test]
fn world_generation_is_epoch_invariant() {
    let base = WorldConfig::small(90210);
    let w1 = World::generate(WorldConfig {
        epoch: Some(1),
        ..base.clone()
    })
    .expect("epoch-1 world");
    let w2 = World::generate(WorldConfig {
        epoch: Some(2),
        ..base
    })
    .expect("epoch-2 world");
    assert_eq!(w1.sites.len(), w2.sites.len());
    assert_eq!(w1.clients.len(), w2.clients.len());
    for (a, b) in w1.sites.iter().zip(&w2.sites) {
        assert_eq!(a.domain, b.domain);
        assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        assert_eq!(a.hosts.len(), b.hosts.len());
        assert_eq!(a.third_party, b.third_party);
    }
    for (a, b) in w1.clients.iter().zip(&w2.clients) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.country, b.country);
        assert_eq!(a.enterprise, b.enterprise);
        assert_eq!(a.activity.to_bits(), b.activity.to_bits());
    }
}

/// Every exact per-event invariant the epoch-1 stream satisfies must hold
/// verbatim for epoch 2 — these are contract clauses, not distributions.
#[test]
fn epoch2_events_satisfy_exact_invariants() {
    struct InvariantSink<'w> {
        world: &'w World,
        seen: u64,
    }
    impl EventSink for InvariantSink<'_> {
        fn page_load(&mut self, pl: &PageLoad) {
            self.seen += 1;
            let site = &self.world.sites[pl.site.index()];
            assert!((pl.host_idx as usize) < site.hosts.len(), "host in range");
            assert!(u32::from(pl.non200) <= pl.total_requests());
            if !pl.completed {
                assert_eq!(pl.dwell_secs, 0, "incomplete loads have no dwell");
            }
            if !site.https {
                assert_eq!(pl.tls_handshakes, 0, "no TLS to plain-HTTP sites");
            } else {
                assert!(pl.tls_handshakes >= 1, "HTTPS implies a handshake");
            }
            assert!(pl.client.index() < self.world.clients.len());
        }
        fn third_party(&mut self, tp: &ThirdPartyFetch) {
            self.seen += 1;
            let site = &self.world.sites[tp.site.index()];
            assert!(site.is_infrastructure, "third-party targets are infra");
            assert!(tp.requests >= 1);
            assert!(tp.non200 <= tp.requests);
            assert!((tp.host_idx as usize) < site.hosts.len());
        }
        fn background(&mut self, _bg: &BackgroundQuery) {
            self.seen += 1;
        }
    }

    let config = WorldConfig::tiny(777);
    let world = World::generate(WorldConfig {
        epoch: Some(2),
        ..config.clone()
    })
    .expect("world generates");
    let mut sink = InvariantSink {
        world: &world,
        seen: 0,
    };
    let mut scratch = TrafficScratch::for_world(&world);
    for day in 0..config.days.len() {
        sink.world.simulate_day_into(day, &mut scratch, &mut sink);
    }
    assert!(sink.seen > 10_000, "tiny window still yields events");
}

/// Per-client weekly volume: under either epoch a client's load count is a
/// sum of Poisson draws with identical means, so the cross-epoch difference
/// must sit within Poisson noise for every single client, and aggregate
/// volume within a fraction of a percent.
#[test]
fn per_client_volume_is_poisson_equivalent() {
    let config = WorldConfig::small(4242);
    let (_, t1) = tally_epoch(&config, 1);
    let (_, t2) = tally_epoch(&config, 2);

    for (i, (&n1, &n2)) in t1.per_client.iter().zip(&t2.per_client).enumerate() {
        #[allow(clippy::cast_precision_loss)]
        let mean = (n1 + n2) as f64 / 2.0;
        #[allow(clippy::cast_precision_loss)]
        let diff = (n1 as f64 - n2 as f64).abs();
        // Var(n1 - n2) = 2·mean; 6σ plus slack for tiny means covers the
        // 2000-client multiplicity deterministically at these seeds.
        assert!(
            diff <= 6.0 * (2.0 * mean.max(1.0)).sqrt() + 10.0,
            "client {i}: epoch-1 saw {n1} loads, epoch-2 saw {n2}"
        );
    }
    #[allow(clippy::cast_precision_loss)]
    let ratio = t1.page_loads as f64 / t2.page_loads as f64;
    assert!(
        (ratio - 1.0).abs() < 0.01,
        "aggregate weekly volume drifted: {} vs {} (ratio {ratio:.4})",
        t1.page_loads,
        t2.page_loads
    );
}

/// The subpopulation shares each vantage point samples from (enterprise
/// resolver users, extension panelists, Chrome opt-ins, private-mode and
/// completed loads, …) must agree across epochs to well under a percentage
/// point — otherwise the bias analyses downstream would measure the epoch,
/// not the mechanism.
#[test]
fn vantage_subpopulation_shares_match() {
    let config = WorldConfig::small(4242);
    let (_, t1) = tally_epoch(&config, 1);
    let (_, t2) = tally_epoch(&config, 2);

    for label in [
        "enterprise",
        "panelist",
        "chrome-optin",
        "private-mode",
        "completed",
        "root-path",
        "dns-fresh",
    ] {
        let (s1, s2) = (t1.share(label), t2.share(label));
        assert!(
            (s1 - s2).abs() < 0.01,
            "{label} share drifted across epochs: {s1:.4} vs {s2:.4}"
        );
    }
    // Secondary event streams and intensive means track each other too.
    #[allow(clippy::cast_precision_loss)]
    let tp_ratio = t1.third_party as f64 / t2.third_party as f64;
    #[allow(clippy::cast_precision_loss)]
    let bg_ratio = t1.background as f64 / t2.background as f64;
    #[allow(clippy::cast_precision_loss)]
    let dwell_ratio = (t1.dwell_total as f64 / t1.page_loads as f64)
        / (t2.dwell_total as f64 / t2.page_loads as f64);
    #[allow(clippy::cast_precision_loss)]
    let req_ratio = (t1.requests_total as f64 / t1.page_loads as f64)
        / (t2.requests_total as f64 / t2.page_loads as f64);
    for (label, ratio) in [
        ("third-party", tp_ratio),
        ("background", bg_ratio),
        ("mean dwell", dwell_ratio),
        ("mean requests", req_ratio),
    ] {
        assert!(
            (ratio - 1.0).abs() < 0.03,
            "{label} volume drifted across epochs (ratio {ratio:.4})"
        );
    }
}

/// The deliverable of the whole pipeline is a popularity ranking. At medium
/// scale the two epochs' 7-day top-1K lists must be nearly the same list:
/// high Jaccard overlap and near-perfect rank correlation over the union.
#[test]
fn medium_scale_top_1k_ranking_is_equivalent() {
    const K: usize = 1000;
    let config = WorldConfig::medium(4242);
    let (_, t1) = tally_epoch(&config, 1);
    let (_, t2) = tally_epoch(&config, 2);

    let top_k = |per_site: &[u64]| -> Vec<usize> {
        let mut order: Vec<usize> = (0..per_site.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(per_site[i]), i));
        order.truncate(K);
        order
    };
    let top1: HashSet<usize> = top_k(&t1.per_site).into_iter().collect();
    let top2: HashSet<usize> = top_k(&t2.per_site).into_iter().collect();
    let overlap = jaccard(&top1, &top2);
    assert!(
        overlap >= 0.85,
        "top-{K} Jaccard across epochs fell to {overlap:.4}"
    );

    // Rank correlation of observed volumes over the union of both top lists.
    let union: Vec<usize> = {
        let mut u: Vec<usize> = top1.union(&top2).copied().collect();
        u.sort_unstable();
        u
    };
    #[allow(clippy::cast_precision_loss)]
    let x: Vec<f64> = union.iter().map(|&i| t1.per_site[i] as f64).collect();
    #[allow(clippy::cast_precision_loss)]
    let y: Vec<f64> = union.iter().map(|&i| t2.per_site[i] as f64).collect();
    // Deterministically measures 0.9599 at this seed: the tail of the
    // top-1K sits in near-tied counts where Poisson noise permutes ranks,
    // exactly as two reruns of a *single* epoch with different day seeds
    // would. A generator bug (biased index pick, dropped clients) pulls
    // this down an order of magnitude further than the pinned floor.
    let rho = spearman(&x, &y).expect("correlation computes").rho;
    assert!(
        rho >= 0.95,
        "top-{K} rank correlation across epochs fell to {rho:.4}"
    );
}

/// The per-epoch lint manifests must tell the same story for every
/// subsystem the epoch-2 refactor did not touch: only the generator
/// variants themselves and the epoch-2 batch samplers may differ.
#[test]
fn manifests_agree_outside_the_restructured_generator() {
    let root = env!("CARGO_MANIFEST_DIR");
    let parse = |name: &str| -> HashMap<String, String> {
        let text = std::fs::read_to_string(format!("{root}/{name}"))
            .unwrap_or_else(|e| panic!("{name} must be checked in: {e}"));
        let mut sites = HashMap::new();
        let mut current = String::new();
        for line in text.lines() {
            if let Some(v) = line.strip_prefix("fn = ") {
                current = v.trim_matches('"').to_owned();
            } else if let Some(v) = line.strip_prefix("draws = ") {
                sites.insert(current.clone(), v.to_owned());
            }
        }
        sites
    };
    let m1 = parse("determinism.epoch1.toml");
    let m2 = parse("determinism.epoch2.toml");
    assert!(!m1.is_empty() && !m2.is_empty());

    let epoch_specific =
        |name: &str| name.contains("_epoch") || name.contains("::batch::UniformBlock::");
    for (name, draws) in &m1 {
        if epoch_specific(name) {
            continue;
        }
        assert_eq!(
            m2.get(name),
            Some(draws),
            "shared draw site `{name}` differs between epoch manifests"
        );
    }
    for name in m2.keys() {
        assert!(
            epoch_specific(name) || m1.contains_key(name),
            "`{name}` is in the epoch-2 manifest only but is not epoch-specific"
        );
    }
}
