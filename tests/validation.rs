//! Framework validation against ground truth — the capability the real study
//! never had. The simulator knows each site's true popularity weight, so we
//! can verify that (a) the vantage metrics are *honest estimators* of it and
//! (b) the evaluation framework ranks a knowably-better list above a
//! knowably-worse one.

use std::collections::HashSet;
use std::sync::OnceLock;

use toppling::core::Study;
use toppling::sim::{World, WorldConfig};
use toppling::stats::corr::spearman;
use toppling::vantage::CfMetric;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(WorldConfig::small(31337)).expect("study runs"))
}

/// Ground-truth top-k *Cloudflare-served* domains.
fn truth_cf_top(world: &World, k: usize) -> Vec<String> {
    world
        .ground_truth_top(world.sites.len())
        .into_iter()
        .filter(|id| world.sites[id.index()].cloudflare)
        .take(k)
        .map(|id| world.sites[id.index()].domain.as_str().to_owned())
        .collect()
}

#[test]
fn cdn_metrics_estimate_true_popularity() {
    let s = study();
    let k = s.world.sites.len() / 10;
    let truth: Vec<String> = truth_cf_top(&s.world, k);
    let truth_set: HashSet<&str> = truth.iter().map(String::as_str).collect();
    for metric in CfMetric::final_seven() {
        let measured: Vec<String> = s
            .cf_monthly_domains(metric)
            .into_iter()
            .take(k)
            .map(|d| d.as_str().to_owned())
            .collect();
        let hit = measured
            .iter()
            .filter(|d| truth_set.contains(d.as_str()))
            .count();
        let recall = hit as f64 / k as f64;
        assert!(
            recall > 0.55,
            "{:?} recalls only {recall:.2} of the true CF top-{k}",
            metric
        );
    }
}

#[test]
fn cdn_rank_correlates_with_true_weights() {
    let s = study();
    let metric = CfMetric::final_seven()[0];
    let scores = s.cdn.monthly(metric);
    // Correlate measured score vs true weight over CF sites with traffic.
    let mut measured = Vec::new();
    let mut truth = Vec::new();
    for site in &s.world.sites {
        if site.cloudflare && scores[site.id.index()] > 0.0 {
            measured.push(scores[site.id.index()]);
            truth.push(site.weight);
        }
    }
    let rho = spearman(&measured, &truth).unwrap();
    assert!(
        rho.rho > 0.8,
        "CDN request counts should strongly track true popularity: rho = {:.3}",
        rho.rho
    );
    assert!(rho.p_value < 1e-10);
}

#[test]
fn chrome_telemetry_estimates_true_popularity() {
    let s = study();
    let ranked = s.chrome.global_completed_list(1);
    // Collapse origins to sites, best position per site.
    let mut seen = HashSet::new();
    let mut measured_sites = Vec::new();
    for ((site, _), _) in ranked {
        if seen.insert(site) {
            measured_sites.push(site);
        }
    }
    let k = (s.world.sites.len() / 10).min(measured_sites.len());
    let truth: HashSet<u32> = s
        .world
        .ground_truth_top(s.world.sites.len())
        .into_iter()
        .filter(|id| s.world.sites[id.index()].public_web)
        .take(k)
        .map(|id| id.0)
        .collect();
    let hit = measured_sites
        .iter()
        .take(k)
        .filter(|id| truth.contains(&id.0))
        .count();
    assert!(
        hit as f64 / k as f64 > 0.6,
        "Chrome telemetry should recall most of the true top: {hit}/{k}"
    );
}

#[test]
fn framework_prefers_a_knowably_better_list() {
    // Construct two synthetic lists: one from ground truth, one from ground
    // truth reversed within the top half. The framework must score the
    // faithful list strictly higher on both measures.
    use toppling::core::methodology::against_cloudflare;
    use toppling::lists::{normalize_ranked, ListSource, RankedList};

    let s = study();
    let k = s.world.sites.len() / 10;
    let truth: Vec<String> = s
        .world
        .ground_truth_top(s.world.sites.len() / 2)
        .into_iter()
        .map(|id| s.world.sites[id.index()].domain.as_str().to_owned())
        .collect();
    let faithful = RankedList::from_sorted_names(ListSource::Alexa, truth.clone());
    let mut scrambled_names = truth;
    scrambled_names.reverse();
    let scrambled = RankedList::from_sorted_names(ListSource::Alexa, scrambled_names);

    let cf = s.cf_monthly_domains(CfMetric::final_seven()[0]);
    let ev_faithful = against_cloudflare(s, &normalize_ranked(&s.world.psl, &faithful), &cf, k);
    let ev_scrambled = against_cloudflare(s, &normalize_ranked(&s.world.psl, &scrambled), &cf, k);
    assert!(
        ev_faithful.similarity.jaccard > ev_scrambled.similarity.jaccard,
        "faithful {:.3} vs scrambled {:.3}",
        ev_faithful.similarity.jaccard,
        ev_scrambled.similarity.jaccard
    );
    let rho_f = ev_faithful
        .similarity
        .spearman
        .expect("faithful list intersects")
        .rho;
    // The scrambled list's head is the popularity tail: its Cloudflare
    // subset may not intersect the reference at all, which is itself the
    // correct "no agreement" verdict.
    let rho_s = ev_scrambled.similarity.spearman.map_or(-1.0, |s| s.rho);
    assert!(
        rho_f > 0.5,
        "faithful list should rank-correlate: {rho_f:.3}"
    );
    assert!(rho_f > rho_s, "faithful {rho_f:.3} vs scrambled {rho_s:.3}");
}

#[test]
fn study_is_deterministic_across_processes_shape() {
    // Full determinism is asserted in-crate; here check the public artifacts
    // of two independent runs match (different instances, same seed).
    let a = Study::run(WorldConfig::tiny(99)).unwrap();
    let b = Study::run(WorldConfig::tiny(99)).unwrap();
    assert_eq!(a.tranco.to_csv(), b.tranco.to_csv());
    assert_eq!(a.crux.to_csv(), b.crux.to_csv());
    assert_eq!(a.secrank.to_csv(), b.secrank.to_csv());
    assert_eq!(a.majestic.to_csv(), b.majestic.to_csv());
}
