//! Property suite for the epoch-stamped scratch primitives.
//!
//! The scratch-epoch invariant — after `begin_epoch`, every slot reads as
//! if freshly zeroed, regardless of what earlier epochs wrote — is what
//! makes reusing one scratch state across days safe. These properties pit
//! a long-lived, epoch-cleared [`ScratchTable`]/[`ScratchMap`] against a
//! freshly allocated model under randomized operation sequences, including
//! pool-style checkout/return interleavings where several logical "days"
//! take turns on a small set of physical scratch states.

use std::collections::BTreeMap;

use proptest::prelude::*;
use topple_vantage::scratch::{ScratchMap, ScratchPool, ScratchTable};

const TABLE_LEN: usize = 48;

/// Replays one epoch of table touches against a fresh zeroed model.
fn check_table_epoch(table: &mut ScratchTable<u32>, touches: &[u16]) {
    table.begin_epoch();
    let mut model = vec![0u32; TABLE_LEN];
    let mut touched = vec![false; TABLE_LEN];
    for &t in touches {
        let i = usize::from(t) % TABLE_LEN;
        let (first, v) = table.slot(i);
        assert_eq!(first, !touched[i], "first-touch flag diverged at {i}");
        touched[i] = true;
        *v += u32::from(t) + 1;
        model[i] += u32::from(t) + 1;
    }
    for i in 0..TABLE_LEN {
        assert_eq!(table.peek(i), model[i], "slot {i} diverged from model");
    }
}

/// Replays one epoch of map entries against a fresh `BTreeMap` model.
fn check_map_epoch(map: &mut ScratchMap<u32>, keys: &[u64]) {
    map.begin_epoch();
    let mut model: BTreeMap<u64, u32> = BTreeMap::new();
    for &k in keys {
        let (fresh, v) = map.entry(k);
        assert_eq!(fresh, !model.contains_key(&k), "freshness diverged at {k}");
        *v += 1;
        *model.entry(k).or_insert(0) += 1;
    }
    assert_eq!(map.len(), model.len());
    for (&k, &want) in &model {
        assert_eq!(map.get(k), Some(&want), "value diverged at key {k}");
    }
    // Keys never inserted this epoch must read as absent, even if a prior
    // epoch wrote them (stale stamps are the whole point).
    for probe in 0..64u64 {
        let k = probe.wrapping_mul(0x5851_F42D_4C95_7F2D);
        if !model.contains_key(&k) {
            assert_eq!(map.get(k), None, "stale key {k} leaked across epochs");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An epoch-cleared table is indistinguishable from a freshly zeroed
    /// one across many consecutive epochs with random touch patterns.
    #[test]
    fn table_epoch_clearing_equals_fresh_table(
        epochs in proptest::collection::vec(
            proptest::collection::vec(any::<u16>(), 0..200), 1..8)
    ) {
        let mut table = ScratchTable::<u32>::with_len(TABLE_LEN);
        for touches in &epochs {
            check_table_epoch(&mut table, touches);
        }
    }

    /// Same for the open-addressed map, with keys drawn from a small range
    /// (forcing cross-epoch collisions) and a large one (forcing growth).
    #[test]
    fn map_epoch_clearing_equals_fresh_map(
        epochs in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..150), 1..8),
        narrow in proptest::collection::vec(0u64..24, 0..150),
    ) {
        let mut map = ScratchMap::<u32>::new();
        check_map_epoch(&mut map, &narrow);
        for keys in &epochs {
            check_map_epoch(&mut map, keys);
        }
    }

    /// Pool-style reuse: logical tasks check states out of a shared pool in
    /// a randomized interleaving; whichever physical state a task lands on
    /// — brand new or warmed by any previous task — behaves identically to
    /// a fresh one.
    #[test]
    fn pooled_scratch_is_indistinguishable_from_fresh(
        lanes in proptest::collection::vec(0u8..3, 1..24),
        keysets in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..60), 1..24),
    ) {
        let pool: ScratchPool<ScratchMap<u32>> = ScratchPool::new();
        // Up to three states in flight at once, returned in varying order.
        let mut held: Vec<ScratchMap<u32>> = Vec::new();
        for (lane, keys) in lanes.iter().zip(&keysets) {
            let mut state = pool.checkout_or(ScratchMap::new);
            check_map_epoch(&mut state, keys);
            held.push(state);
            // Return a lane-dependent member, not necessarily the newest:
            // interleavings where a warmed state skips several "days" before
            // its next checkout are the interesting ones.
            if held.len() > usize::from(*lane) {
                let idx = usize::from(*lane) % held.len();
                pool.put_back(held.swap_remove(idx));
            }
        }
        for state in held {
            pool.put_back(state);
        }
    }
}
