//! Cross-vantage integration tests: the observers must tell a mutually
//! consistent story about the same traffic.

// Test harness: aborting on a broken fixture is the correct failure mode
// (clippy.toml's allow-*-in-tests covers `#[test]` fns but not helpers).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use topple_sim::{Resolver, World, WorldConfig};
use topple_vantage::{
    CdnVantage, CfAgg, CfFilter, CfMetric, ChromeVantage, CrawlerVantage, DnsVantage, PanelVantage,
};

fn setup() -> (World, CdnVantage, ChromeVantage, DnsVantage, PanelVantage) {
    let w = World::generate(WorldConfig::tiny(901)).unwrap();
    let mut cdn = CdnVantage::new(&w);
    let mut chrome = ChromeVantage::new(&w);
    let mut dns = DnsVantage::new(Resolver::Umbrella);
    let mut panel = PanelVantage::new(&w);
    for d in 0..5 {
        let t = w.simulate_day(d);
        cdn.ingest_day(&w, &t);
        chrome.ingest_day(&w, &t);
        dns.ingest_day(&w, &t);
        panel.ingest_day(&w, &t);
    }
    (w, cdn, chrome, dns, panel)
}

#[test]
fn daily_final_accessors_are_consistent_with_monthly() {
    let (w, cdn, ..) = setup();
    let metrics = CfMetric::final_seven();
    for (mi, &m) in metrics.iter().enumerate() {
        let monthly = cdn.monthly(m);
        for (site, &month_val) in monthly.iter().enumerate().take(w.sites.len()) {
            let mean_daily: f64 = (0..cdn.days())
                .map(|d| cdn.daily_final(mi, d)[site])
                .sum::<f64>()
                / cdn.days() as f64;
            assert!(
                (month_val - mean_daily).abs() < 1e-9,
                "site {site} metric {mi}: monthly {month_val} vs mean daily {mean_daily}"
            );
        }
    }
}

#[test]
fn panel_sees_subset_of_cdn_traffic_story() {
    // Sites the panel observed on Cloudflare must also have CDN traffic.
    let (w, cdn, _, _, panel) = setup();
    let m = CfMetric {
        filter: CfFilter::AllRequests,
        agg: CfAgg::Raw,
    };
    let monthly = cdn.monthly(m);
    for d in 0..panel.day_count() {
        for (site, _) in panel.day(d).sites() {
            if w.sites[site.index()].cloudflare {
                assert!(
                    monthly[site.index()] > 0.0,
                    "panel saw CF site {} but the CDN recorded nothing",
                    w.sites[site.index()].domain
                );
            }
        }
    }
}

#[test]
fn chrome_origins_belong_to_visited_public_sites() {
    let (w, cdn, chrome, ..) = setup();
    let m = CfMetric {
        filter: CfFilter::AllRequests,
        agg: CfAgg::Raw,
    };
    let monthly = cdn.monthly(m);
    for (origin, _) in chrome.global_completed_list(1) {
        let site = &w.sites[origin.0.index()];
        assert!(site.public_web);
        // Chrome-visible CF sites must also be CDN-visible.
        if site.cloudflare {
            assert!(monthly[origin.0.index()] > 0.0);
        }
    }
}

#[test]
fn resolver_sees_no_more_names_than_exist() {
    let (w, _, _, dns, _) = setup();
    let max_names: usize =
        w.sites.iter().map(|s| s.hosts.len()).sum::<usize>() + w.background_names.len();
    for d in 0..dns.day_count() {
        assert!(dns.day(d).name_count() <= max_names);
    }
}

#[test]
fn crawler_and_cdn_agree_on_popular_public_sites() {
    // Among CF-served public sites, being well-linked and being
    // well-requested must correlate far above chance. A rank correlation
    // over *all* candidates is used rather than a top-k overlap count:
    // at tiny scale the top-k cut is noisy enough to flap with the RNG
    // stream, while the full-population correlation is stable.
    let (w, cdn, ..) = setup();
    let crawl = CrawlerVantage::crawl(&w, 25, usize::MAX);
    let refs = crawl.referring_domains();
    let m = CfMetric {
        filter: CfFilter::AllRequests,
        agg: CfAgg::Raw,
    };
    let monthly = cdn.monthly(m);
    let candidates: Vec<usize> = (0..w.sites.len())
        .filter(|&i| w.sites[i].cloudflare && w.sites[i].public_web)
        .collect();
    assert!(
        candidates.len() >= 20,
        "world too small for a meaningful test"
    );
    let xs: Vec<f64> = candidates.iter().map(|&i| refs[i]).collect();
    let ys: Vec<f64> = candidates.iter().map(|&i| monthly[i]).collect();
    let s = topple_stats::corr::spearman(&xs, &ys).expect("correlation is defined");
    assert!(
        s.rho > 0.2 && s.p_value < 0.05,
        "links and traffic should correlate: rho {} (p {})",
        s.rho,
        s.p_value
    );
}
