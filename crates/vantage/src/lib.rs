//! Observer vantage points over the simulated traffic stream.
//!
//! Each vantage sees only what its real-world counterpart could see:
//!
//! * [`cloudflare::CdnVantage`] — server-side request logs for the ~quarter of
//!   sites the CDN proxies, folded into the paper's 21 filter × aggregation
//!   popularity metrics (Section 3).
//! * [`dns::DnsVantage`] — the two resolvers that publish popularity data: the
//!   Umbrella-style enterprise resolver and the Chinese resolver feeding
//!   Secrank. Counts queries and unique client IPs per *queried name*.
//! * [`crawler::CrawlerVantage`] — a link-graph crawler counting referring
//!   domains (Majestic's signal).
//! * [`panel::PanelVantage`] — the browser-extension panel behind the
//!   Alexa-style list (small, desktop-skewed, blind to private browsing).
//! * [`chrome::ChromeVantage`] — opt-in browser telemetry: initiated loads,
//!   completed loads, and time-on-site per (country, platform), plus the
//!   origin-aggregated global view behind the public CrUX list.
//!
//! All vantages share the same shape: `ingest_day(&World, &DayTraffic)`
//! incrementally, then finalize into ranked scores. None of them reads
//! ground-truth site weights.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod cloudflare;
pub mod crawler;
pub mod dns;
pub mod metrics;
pub mod panel;

pub use chrome::{ChromeMetric, ChromeVantage};
pub use cloudflare::{CdnVantage, CfAgg, CfFilter, CfMetric};
pub use crawler::CrawlerVantage;
pub use dns::{DnsVantage, QueriedName};
pub use metrics::{ranked_sites, ScoreVec};
pub use panel::PanelVantage;
