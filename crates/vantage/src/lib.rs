//! Observer vantage points over the simulated traffic stream.
//!
//! Each vantage sees only what its real-world counterpart could see:
//!
//! * [`cloudflare::CdnVantage`] — server-side request logs for the ~quarter of
//!   sites the CDN proxies, folded into the paper's 21 filter × aggregation
//!   popularity metrics (Section 3).
//! * [`dns::DnsVantage`] — the two resolvers that publish popularity data: the
//!   Umbrella-style enterprise resolver and the Chinese resolver feeding
//!   Secrank. Counts queries and unique client IPs per *queried name*.
//! * [`crawler::CrawlerVantage`] — a link-graph crawler counting referring
//!   domains (Majestic's signal).
//! * [`panel::PanelVantage`] — the browser-extension panel behind the
//!   Alexa-style list (small, desktop-skewed, blind to private browsing).
//! * [`chrome::ChromeVantage`] — opt-in browser telemetry: initiated loads,
//!   completed loads, and time-on-site per (country, platform), plus the
//!   origin-aggregated global view behind the public CrUX list.
//!
//! All vantages share the same shape: observe a day of traffic into a pure,
//! mergeable per-day [`Shard`] ([`shard`] module), then fold shards into the
//! vantage's accumulators in day order — `ingest_day(&World, &DayTraffic)`
//! is the one-day convenience wrapper. Shard *construction* is
//! order-independent and safe to parallelize; order-sensitive state (the DNS
//! TTL gate, day-indexed storage) lives only in the sequential
//! `ingest_shard` folds. None of the vantages reads ground-truth site
//! weights.
//!
//! Shard construction has two equivalent entry points: the materialized
//! path (`Shard::from_day` over a `DayTraffic`) and the fused streaming
//! path ([`fused::DayScratch::observe_day`]), which observes events from
//! all five vantages as the simulator generates them, with per-day working
//! state held in reusable epoch-stamped scratch ([`scratch`] module). The
//! study pipeline uses the fused path; `from_day` replays through the same
//! builders, so the two cannot drift apart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod cloudflare;
pub mod crawler;
pub mod dns;
pub mod fused;
pub mod metrics;
pub mod panel;
pub mod scratch;
pub mod shard;

pub use chrome::{ChromeMetric, ChromeShard, ChromeVantage, TELEMETRY_PLATFORMS};
pub use cloudflare::{CdnShard, CdnVantage, CfAgg, CfFilter, CfMetric};
pub use crawler::CrawlerVantage;
pub use dns::{DnsShard, DnsVantage, QueriedName};
pub use fused::{DayScratch, FusedObserver};
pub use metrics::{ranked_site_ids, ranked_sites, ScoreVec};
pub use panel::{PanelShard, PanelVantage};
pub use scratch::ScratchPool;
pub use shard::{DayShards, Shard};
