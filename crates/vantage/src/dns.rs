//! DNS resolver vantages: the Umbrella-style enterprise resolver and the
//! Chinese resolver whose logs feed Secrank.
//!
//! A resolver sees *queried names*, not websites: FQDNs (including `www.`,
//! `m.`, and service hosts), background noise names (TLD probes, NTP pools,
//! connectivity checks), and nothing at all for clients using other
//! resolvers. Client-side stub caching means repeat visits within a day
//! usually don't reach the resolver (`dns_fresh` on the traffic events).
//!
//! Umbrella's published ranking is computed from unique client IPs per name
//! relative to all requests \[33\]; Secrank runs a voting algorithm over per-IP
//! query volume and frequency (Xie et al.). Both constructions live in
//! `topple-lists`; this module only collects what each resolver could log.

use std::collections::{BTreeMap, HashMap};

use topple_sim::{
    BackgroundQuery, ClientId, DayTraffic, PageLoad, Resolver, SiteId, ThirdPartyFetch, World,
};

use crate::scratch::{ScratchMap, ScratchTable};

/// A name as seen in resolver logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueriedName {
    /// An FQDN belonging to a website: `(site, host index)`.
    Host(SiteId, u8),
    /// A background/non-website name, indexed into `World::background_names`.
    Background(u16),
}

/// Per-name counters for one day at one resolver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NameDayStats {
    /// Total queries that reached the resolver.
    pub queries: u64,
    /// Distinct client IPs that queried the name.
    pub unique_ips: u32,
}

/// One day of logs at one resolver.
#[derive(Debug, Default)]
pub struct ResolverDay {
    per_name: HashMap<QueriedName, NameDayStats>,
    // Scratch: distinct (name, ip) pairs seen today.
    seen_ip: std::collections::HashSet<(QueriedName, u32)>,
}

impl ResolverDay {
    fn record(&mut self, name: QueriedName, ip: u32, queries: u64) {
        let stats = self.per_name.entry(name).or_default();
        stats.queries += queries;
        if self.seen_ip.insert((name, ip)) {
            stats.unique_ips += 1;
        }
    }

    /// Iterates `(name, stats)` for the day.
    pub fn names(&self) -> impl Iterator<Item = (&QueriedName, &NameDayStats)> {
        self.per_name.iter()
    }

    /// Number of distinct names seen.
    pub fn name_count(&self) -> usize {
        self.per_name.len()
    }

    /// Total queries across all names.
    pub fn total_queries(&self) -> u64 {
        self.per_name.values().map(|s| s.queries).sum()
    }
}

/// Per-(client IP, registrable domain) monthly cell for the voting algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct VoteCell {
    /// Total queries from this IP for this domain over the window.
    pub queries: u32,
    /// Bitmask of days on which the IP queried the domain.
    pub day_mask: u32,
}

/// One day's raw, *ungated* resolver-bound activity: what reached the
/// client-side stub caches, before the multi-day TTL gate decides which
/// queries escape to the resolver at all.
#[derive(Debug, Clone, Default, PartialEq)]
struct DnsDayShard {
    /// Fresh website-name lookups: `(client, name) -> (client ip, events)`.
    /// The TTL gate is applied at fold time, because whether a day-`d` query
    /// reaches the resolver depends on the days before it.
    candidates: BTreeMap<(ClientId, QueriedName), (u32, u64)>,
    /// Background names bypass the TTL gate entirely (queried by jobs, not
    /// browsers), so their per-day stats are final at observation time.
    background: BTreeMap<QueriedName, NameDayStats>,
}

impl DnsDayShard {
    fn merge(&mut self, other: DnsDayShard) {
        // Counter merges saturate instead of wrapping: `min(a + b, MAX)` is
        // associative and commutative, so the shard monoid laws survive
        // even for adversarial same-day self-merges (`tests/merge_laws.rs`).
        for (key, (ip, events)) in other.candidates {
            let e = self.candidates.entry(key).or_insert((ip, 0));
            e.1 = e.1.saturating_add(events);
        }
        for (name, stats) in other.background {
            let e = self.background.entry(name).or_default();
            e.queries = e.queries.saturating_add(stats.queries);
            e.unique_ips = e.unique_ips.saturating_add(stats.unique_ips);
        }
    }
}

/// A mergeable observation of one resolver's inbound queries for a set of
/// days, keyed by day index.
///
/// The shard stores *pre-gate* candidates rather than final per-day logs:
/// the multi-day TTL cache (see [`DnsVantage`]) makes day `d`'s resolver log
/// depend on days `0..d`, so that sequential dependency is deferred to
/// [`DnsVantage::ingest_shard`], which folds days in ascending order. The
/// merge itself is a keyed union — exactly associative and commutative —
/// which is what lets shards be built fully in parallel.
///
/// A shard is built *for one resolver* ([`DnsShard::from_day`] filters to
/// that resolver's clients); feeding it to a vantage modeling a different
/// resolver is a logic error the types do not prevent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DnsShard {
    days: BTreeMap<usize, DnsDayShard>,
}

impl DnsShard {
    /// Observes one day of traffic as seen by `resolver`'s clients. Pure:
    /// depends only on `(world, traffic, resolver)`, never on order.
    ///
    /// Implemented as a replay of the materialized traffic through a fresh
    /// [`DnsDayBuilder`] — the same accumulation the fused streaming path
    /// uses, so the two cannot drift apart.
    pub fn from_day(world: &World, traffic: &DayTraffic, resolver: Resolver) -> Self {
        let mut b = DnsDayBuilder::new(world, resolver);
        b.begin();
        for pl in &traffic.page_loads {
            b.page_load(world, pl);
        }
        for tp in &traffic.third_party {
            b.third_party(world, tp);
        }
        for bg in &traffic.background {
            b.background(world, bg);
        }
        b.finish_day(traffic.day_index)
    }

    /// Day indices covered by this shard, ascending.
    pub fn day_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.days.keys().copied()
    }
}

/// Reusable streaming builder of one resolver's single-day shard.
///
/// Website-name candidates append to a reusable vector instead of a
/// `BTreeMap`: `dns_fresh` fires at most once per (client, zone) per day
/// (the stub cache is shared across page loads and third-party fetches), so
/// `(client, name)` keys cannot repeat within a day — the finish step still
/// coalesces through a keyed map, so even hypothetical duplicates would
/// merge exactly as the old map-based scan did. Background-name stats use a
/// dense name-indexed [`ScratchTable`] with a packed `(name, ip)` presence
/// map for unique-IP counting.
#[derive(Debug)]
pub(crate) struct DnsDayBuilder {
    resolver: Resolver,
    /// `((client, name), (client ip, events))` candidate rows, unsorted.
    candidates: Vec<((ClientId, QueriedName), (u32, u64))>,
    /// `name_idx → (queries, unique_ips)` for background names.
    bg: ScratchTable<(u64, u32)>,
    /// Background names touched this day (order irrelevant: results land in
    /// a `BTreeMap`).
    bg_touched: Vec<u16>,
    /// Presence of packed `(name_idx << 32) | ip` pairs.
    bg_ip_seen: ScratchMap<()>,
}

impl DnsDayBuilder {
    pub(crate) fn new(world: &World, resolver: Resolver) -> Self {
        DnsDayBuilder {
            resolver,
            candidates: Vec::new(),
            bg: ScratchTable::with_len(world.background_names.len()),
            bg_touched: Vec::new(),
            bg_ip_seen: ScratchMap::new(),
        }
    }

    /// Starts a new day; previous per-day state is invalidated in O(1).
    pub(crate) fn begin(&mut self) {
        self.candidates.clear();
        self.bg.begin_epoch();
        self.bg_touched.clear();
        self.bg_ip_seen.begin_epoch();
    }

    // topple-lint: hot-path-begin
    pub(crate) fn page_load(&mut self, world: &World, pl: &PageLoad) {
        let client = &world.clients[pl.client.index()];
        if client.resolver != self.resolver || !pl.dns_fresh {
            return;
        }
        let name = QueriedName::Host(pl.site, pl.host_idx);
        self.candidates.push(((pl.client, name), (client.ip, 1)));
    }

    pub(crate) fn third_party(&mut self, world: &World, tp: &ThirdPartyFetch) {
        let client = &world.clients[tp.client.index()];
        if client.resolver != self.resolver || !tp.dns_fresh {
            return;
        }
        let name = QueriedName::Host(tp.site, tp.host_idx);
        self.candidates.push(((tp.client, name), (client.ip, 1)));
    }

    pub(crate) fn background(&mut self, world: &World, bg: &BackgroundQuery) {
        let client = &world.clients[bg.client.index()];
        if client.resolver != self.resolver {
            return;
        }
        let (first, stats) = self.bg.slot(bg.name_idx as usize);
        if first {
            self.bg_touched.push(bg.name_idx);
        }
        stats.0 += 1;
        let (new_ip, ()) = self
            .bg_ip_seen
            .entry((u64::from(bg.name_idx) << 32) | u64::from(client.ip));
        if new_ip {
            stats.1 += 1;
        }
    }
    // topple-lint: hot-path-end

    /// Drains the day's rows into a single-day shard.
    pub(crate) fn finish_day(&mut self, day_index: usize) -> DnsShard {
        let mut day = DnsDayShard::default();
        for &(key, (ip, events)) in &self.candidates {
            let e = day.candidates.entry(key).or_insert((ip, 0));
            e.1 += events;
        }
        for &i in &self.bg_touched {
            let (queries, unique_ips) = self.bg.peek(i as usize);
            day.background.insert(
                QueriedName::Background(i),
                NameDayStats {
                    queries,
                    unique_ips,
                },
            );
        }
        let mut days = BTreeMap::new();
        days.insert(day_index, day);
        DnsShard { days }
    }
}

impl crate::Shard for DnsShard {
    fn merge(&mut self, other: Self) {
        for (day, dshard) in other.days {
            match self.days.entry(day) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(dshard);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge(dshard);
                }
            }
        }
    }
}

/// A DNS vantage accumulating daily logs for one resolver.
#[derive(Debug)]
pub struct DnsVantage {
    resolver: Resolver,
    days: Vec<ResolverDay>,
    /// Domain-level (site) monthly voting data: `(ip, site) -> cell`.
    /// Only maintained for the China resolver (Secrank's input).
    votes: HashMap<(u32, SiteId), VoteCell>,
    /// Multi-day negative/positive cache: `(client, name) -> expiry day`.
    /// Records cached by OS stubs and CPE resolvers for their full TTL stop
    /// repeat queries from reaching the resolver for days — the mechanism
    /// that decouples DNS-derived rankings from fine-grained visit frequency
    /// (Section 5.2: "caching, TTLs, and other DNS complexities prevent
    /// capturing fine grained popularity").
    ttl_cache: HashMap<(ClientId, QueriedName), u32>,
}

/// Deterministic TTL horizon in days (1..=7).
///
/// TTL is a property of the *zone*: operators publish anything from minutes
/// to a week, and a long-TTL zone is revisited by every cache ~7× less often
/// than a short-TTL one **regardless of its popularity**. This per-name
/// multiplicative distortion is the dominant reason DNS-derived rankings
/// preserve coarse membership but scramble fine-grained rank (Section 5.2).
/// A small per-client offset models stub/CPE cache eviction differences.
fn ttl_days(client: ClientId, name: QueriedName) -> u32 {
    // Keyed per *zone* (site), not per FQDN: operators set one TTL policy
    // for the whole zone, so every host of a site shares the distortion.
    let zone = match name {
        QueriedName::Host(site, _host) => u64::from(site.0).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        QueriedName::Background(i) => u64::from(i).wrapping_mul(0x94D0_49BB_1331_11EB),
    };
    // Zone TTL classes span minutes to weeks (roughly log-uniform); at the
    // resolver's daily granularity that is 1..=15 days between re-queries.
    let z = (zone ^ (zone >> 31)) % 15;
    let c = (u64::from(client.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 61) % 2;
    1 + (z + c).min(15) as u32
}

impl DnsVantage {
    /// Creates a vantage for the given resolver. Panics on [`Resolver::Isp`],
    /// which publishes nothing.
    pub fn new(resolver: Resolver) -> Self {
        assert!(
            resolver != Resolver::Isp,
            "ISP resolvers publish no popularity data"
        );
        DnsVantage {
            resolver,
            days: Vec::new(),
            votes: HashMap::new(),
            ttl_cache: HashMap::new(),
        }
    }

    /// Whether a fresh-today query actually reaches the resolver, given the
    /// multi-day TTL cache; updates the cache when it does.
    fn reaches_resolver(&mut self, client: ClientId, name: QueriedName, day: u32) -> bool {
        let key = (client, name);
        match self.ttl_cache.get(&key) {
            Some(&expiry) if day < expiry => false,
            _ => {
                self.ttl_cache.insert(key, day + ttl_days(client, name));
                true
            }
        }
    }

    /// Which resolver this vantage models.
    pub fn resolver(&self) -> Resolver {
        self.resolver
    }

    /// Ingests one day of traffic. Days must be ingested in order — the
    /// multi-day TTL cache is stateful. Equivalent to building a
    /// [`DnsShard`] for the day and ingesting it — that *is* the
    /// implementation, so the sequential and sharded paths cannot drift.
    pub fn ingest_day(&mut self, world: &World, traffic: &DayTraffic) {
        self.ingest_shard(world, DnsShard::from_day(world, traffic, self.resolver));
    }

    /// Folds a (possibly multi-day) shard into the resolver's state,
    /// applying its days in ascending day order: this is where the multi-day
    /// TTL gate runs, so the shard's pre-gate candidates become the day's
    /// actual resolver log. Days must arrive contiguously.
    ///
    /// The shard must have been built (via [`DnsShard::from_day`]) for the
    /// same resolver this vantage models.
    ///
    /// # Panics
    ///
    /// Panics if a shard day is out of order with respect to what this
    /// vantage has already ingested.
    pub fn ingest_shard(&mut self, world: &World, shard: DnsShard) {
        let collect_votes = self.resolver == Resolver::ChinaVoting;
        let gate = world.config.mechanisms.dns_ttl_distortion;
        for (day_index, dshard) in shard.days {
            assert_eq!(
                day_index,
                self.days.len(),
                "resolver days must be ingested in order"
            );
            let day_bit = 1u32 << (day_index.min(31));
            let day_no = day_index as u32;
            let mut day = ResolverDay::default();

            for ((client, name), (ip, events)) in dshard.candidates {
                // With the TTL gate on, at most the first fresh lookup of the
                // day escapes the client network; with it off, every fresh
                // lookup reaches the resolver.
                let reaching = if gate {
                    if self.reaches_resolver(client, name, day_no) {
                        1
                    } else {
                        0
                    }
                } else {
                    events
                };
                if reaching == 0 {
                    continue;
                }
                day.record(name, ip, reaching);
                if collect_votes {
                    if let QueriedName::Host(site, _) = name {
                        let cell = self.votes.entry((ip, site)).or_default();
                        cell.queries += reaching as u32;
                        cell.day_mask |= day_bit;
                    }
                }
            }
            for (name, stats) in dshard.background {
                // Background names have short TTLs and bypass caching (they
                // are queried by jobs, not browsers); their keys are disjoint
                // from website names, so the stats transfer verbatim.
                let e = day.per_name.entry(name).or_default();
                e.queries += stats.queries;
                e.unique_ips += stats.unique_ips;
            }
            day.seen_ip = Default::default(); // drop scratch before storing
            self.days.push(day);
        }
    }

    /// Number of ingested days.
    pub fn day_count(&self) -> usize {
        self.days.len()
    }

    /// One day's logs.
    pub fn day(&self, day_index: usize) -> &ResolverDay {
        &self.days[day_index]
    }

    /// Monthly voting cells (Secrank input). Empty for the Umbrella resolver.
    pub fn votes(&self) -> &HashMap<(u32, SiteId), VoteCell> {
        &self.votes
    }

    /// Renders a queried name to its textual FQDN.
    pub fn name_text(world: &World, name: QueriedName) -> String {
        match name {
            QueriedName::Host(site, host_idx) => world.sites[site.index()].hosts[host_idx as usize]
                .name
                .as_str()
                .to_owned(),
            QueriedName::Background(i) => world.background_names[i as usize].as_str().to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::{Country, WorldConfig};

    fn setup() -> (World, DayTraffic) {
        let w = World::generate(WorldConfig::tiny(41)).unwrap();
        let t = w.simulate_day(0);
        (w, t)
    }

    #[test]
    #[should_panic(expected = "publish no popularity data")]
    fn isp_resolver_rejected() {
        DnsVantage::new(Resolver::Isp);
    }

    #[test]
    fn only_own_clients_are_logged() {
        let (w, t) = setup();
        let mut v = DnsVantage::new(Resolver::ChinaVoting);
        v.ingest_day(&w, &t);
        // Every vote must come from a Chinese client IP block.
        let china_block = (Country::China.index() as u32 + 1) << 24;
        for (ip, _) in v.votes().keys() {
            assert_eq!(
                ip >> 24,
                china_block >> 24,
                "non-Chinese IP in China resolver logs"
            );
        }
    }

    #[test]
    fn cache_misses_only() {
        let (w, t) = setup();
        let mut v = DnsVantage::new(Resolver::Umbrella);
        v.ingest_day(&w, &t);
        let total = v.day(0).total_queries();
        // Raw page loads from Umbrella clients exceed resolver queries
        // because repeat visits are served from the stub cache.
        let umbrella_loads = t
            .page_loads
            .iter()
            .filter(|p| w.clients[p.client.index()].resolver == Resolver::Umbrella)
            .count() as u64;
        let umbrella_bg = t
            .background
            .iter()
            .filter(|b| w.clients[b.client.index()].resolver == Resolver::Umbrella)
            .count() as u64;
        assert!(total <= umbrella_loads + umbrella_bg + t.third_party.len() as u64);
        assert!(total > 0, "Umbrella resolver saw nothing");
    }

    #[test]
    fn background_names_present() {
        let (w, t) = setup();
        let mut v = DnsVantage::new(Resolver::Umbrella);
        v.ingest_day(&w, &t);
        let has_bg = v
            .day(0)
            .names()
            .any(|(n, _)| matches!(n, QueriedName::Background(_)));
        assert!(has_bg, "background DNS noise should reach the resolver");
    }

    #[test]
    fn unique_ips_bounded_by_queries() {
        let (w, t) = setup();
        let mut v = DnsVantage::new(Resolver::Umbrella);
        v.ingest_day(&w, &t);
        for (_, s) in v.day(0).names() {
            assert!(u64::from(s.unique_ips) <= s.queries);
            assert!(s.unique_ips >= 1);
        }
    }

    #[test]
    fn name_text_renders() {
        let (w, t) = setup();
        let mut v = DnsVantage::new(Resolver::Umbrella);
        v.ingest_day(&w, &t);
        for (n, _) in v.day(0).names().take(10) {
            let text = DnsVantage::name_text(&w, *n);
            assert!(!text.is_empty());
            assert!(text.contains('.') || matches!(n, QueriedName::Background(_)));
        }
    }

    #[test]
    fn votes_accumulate_across_days() {
        let (w, _) = setup();
        let mut v = DnsVantage::new(Resolver::ChinaVoting);
        v.ingest_day(&w, &w.simulate_day(0));
        let after_one: u32 = v
            .votes()
            .values()
            .map(|c| c.day_mask.count_ones())
            .max()
            .unwrap_or(0);
        v.ingest_day(&w, &w.simulate_day(1));
        let after_two: u32 = v
            .votes()
            .values()
            .map(|c| c.day_mask.count_ones())
            .max()
            .unwrap_or(0);
        assert!(after_two >= after_one);
        assert!(after_two <= 2);
        assert_eq!(v.day_count(), 2);
    }
}
