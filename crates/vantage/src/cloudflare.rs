//! The Cloudflare-style CDN vantage and its 21 popularity metrics.
//!
//! Section 3 of the paper derives popularity metrics from server-side request
//! logs as *filter × aggregation* combinations: seven filters (all requests,
//! HTML-only, 200-only, non-null referer, top-5 browsers, TLS handshakes, root
//! page loads) by three aggregations (raw count, unique client IPs, unique
//! (IP, User-Agent) tuples). This module reproduces all 21 and exposes both
//! the full suite (Appendix Figure 8) and the paper's chosen seven (Figure 1).
//!
//! The vantage sees traffic **only for sites it proxies** (`site.cloudflare`),
//! exactly like the real CDN: server-side logging is unaffected by private
//! browsing, but blind to every non-customer site.

use std::collections::BTreeMap;

use topple_sim::{Browser, DayTraffic, PageLoad, ThirdPartyFetch, World};

use crate::metrics::{add_assign, scale, ScoreVec};
use crate::scratch::{ScratchMap, ScratchTable};

/// Request-log filters (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CfFilter {
    /// 1: all HTTP(S) requests.
    AllRequests,
    /// 1.1: requests for `text/html` resources.
    Html,
    /// 1.2: requests answered 200 OK.
    Status200,
    /// 1.3: requests carrying a non-null `Referer`.
    Referer,
    /// 1.4: requests from the five most popular browsers.
    TopBrowsers,
    /// 2: TLS handshakes.
    Tls,
    /// 3: root page loads (`GET /`).
    RootPage,
}

impl CfFilter {
    /// All seven filters in stable order.
    pub const ALL: [CfFilter; 7] = [
        CfFilter::AllRequests,
        CfFilter::Html,
        CfFilter::Status200,
        CfFilter::Referer,
        CfFilter::TopBrowsers,
        CfFilter::Tls,
        CfFilter::RootPage,
    ];

    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label used in heatmaps.
    pub fn label(self) -> &'static str {
        match self {
            CfFilter::AllRequests => "all-req",
            CfFilter::Html => "html",
            CfFilter::Status200 => "200-only",
            CfFilter::Referer => "referer",
            CfFilter::TopBrowsers => "top5-brws",
            CfFilter::Tls => "tls",
            CfFilter::RootPage => "root-page",
        }
    }
}

/// Log aggregations (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CfAgg {
    /// Raw event count.
    Raw,
    /// Unique client IPs per day.
    UniqueIp,
    /// Unique (client IP, User-Agent) tuples per day.
    UniqueIpUa,
}

impl CfAgg {
    /// All aggregations in stable order.
    pub const ALL: [CfAgg; 3] = [CfAgg::Raw, CfAgg::UniqueIp, CfAgg::UniqueIpUa];

    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label used in heatmaps.
    pub fn label(self) -> &'static str {
        match self {
            CfAgg::Raw => "raw",
            CfAgg::UniqueIp => "uniq-ip",
            CfAgg::UniqueIpUa => "uniq-ip-ua",
        }
    }
}

/// One of the 21 filter × aggregation popularity metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CfMetric {
    /// The filter.
    pub filter: CfFilter,
    /// The aggregation.
    pub agg: CfAgg,
}

impl CfMetric {
    /// Dense index in `0..21`.
    #[inline]
    pub fn index(self) -> usize {
        self.filter.index() * CfAgg::ALL.len() + self.agg.index()
    }

    /// All 21 combinations (Appendix Figure 8).
    pub fn full_suite() -> Vec<CfMetric> {
        let mut v = Vec::with_capacity(21);
        for f in CfFilter::ALL {
            for a in CfAgg::ALL {
                v.push(CfMetric { filter: f, agg: a });
            }
        }
        v
    }

    /// The paper's seven chosen metrics (Section 3.3, Figure 1):
    /// (1) all requests, (2) TLS handshakes, (3) root-page requests,
    /// (4) top-5-browser requests, (5) unique IPs, (6) unique IPs on the
    /// root page, (7) unique IPs from top-5 browsers.
    pub fn final_seven() -> [CfMetric; 7] {
        [
            CfMetric {
                filter: CfFilter::AllRequests,
                agg: CfAgg::Raw,
            },
            CfMetric {
                filter: CfFilter::Tls,
                agg: CfAgg::Raw,
            },
            CfMetric {
                filter: CfFilter::RootPage,
                agg: CfAgg::Raw,
            },
            CfMetric {
                filter: CfFilter::TopBrowsers,
                agg: CfAgg::Raw,
            },
            CfMetric {
                filter: CfFilter::AllRequests,
                agg: CfAgg::UniqueIp,
            },
            CfMetric {
                filter: CfFilter::RootPage,
                agg: CfAgg::UniqueIp,
            },
            CfMetric {
                filter: CfFilter::TopBrowsers,
                agg: CfAgg::UniqueIp,
            },
        ]
    }

    /// The four *request-based* metrics among the final seven (Section 3.3).
    pub fn request_based_four() -> [CfMetric; 4] {
        [
            CfMetric {
                filter: CfFilter::AllRequests,
                agg: CfAgg::Raw,
            },
            CfMetric {
                filter: CfFilter::Tls,
                agg: CfAgg::Raw,
            },
            CfMetric {
                filter: CfFilter::RootPage,
                agg: CfAgg::Raw,
            },
            CfMetric {
                filter: CfFilter::TopBrowsers,
                agg: CfAgg::Raw,
            },
        ]
    }

    /// Human-readable label.
    pub fn label(self) -> String {
        format!("{}/{}", self.filter.label(), self.agg.label())
    }
}

/// Number of metrics in the full suite.
pub const METRIC_COUNT: usize = 21;

/// Per-filter event contribution, in request counts.
#[derive(Debug, Clone, Copy, Default)]
struct FilterCounts {
    counts: [u32; 7],
}

impl FilterCounts {
    #[inline]
    fn bits(&self) -> u8 {
        let mut b = 0u8;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                b |= 1 << i;
            }
        }
        b
    }

    /// The per-filter contribution of a page load (`None` for non-customer
    /// sites, which the CDN never sees).
    fn of_page_load(world: &World, pl: &PageLoad) -> Option<(FilterCounts, Browser, u32)> {
        let site = &world.sites[pl.site.index()];
        if !site.cloudflare {
            return None;
        }
        let client = &world.clients[pl.client.index()];
        let total = pl.total_requests();
        let mut fc = FilterCounts::default();
        fc.counts[CfFilter::AllRequests.index()] = total;
        fc.counts[CfFilter::Html.index()] = 1;
        fc.counts[CfFilter::Status200.index()] = total - u32::from(pl.non200);
        // Subresources always carry a Referer; the navigation does iff it
        // was a link click.
        fc.counts[CfFilter::Referer.index()] =
            u32::from(pl.own_requests) + u32::from(pl.link_click);
        fc.counts[CfFilter::TopBrowsers.index()] = if client.browser.is_top5() { total } else { 0 };
        fc.counts[CfFilter::Tls.index()] = u32::from(pl.tls_handshakes);
        fc.counts[CfFilter::RootPage.index()] = u32::from(pl.is_root_path);
        Some((fc, client.browser, client.ip))
    }

    /// The per-filter contribution of a third-party fetch batch.
    fn of_third_party(world: &World, tp: &ThirdPartyFetch) -> Option<(FilterCounts, Browser, u32)> {
        let site = &world.sites[tp.site.index()];
        if !site.cloudflare {
            return None;
        }
        let client = &world.clients[tp.client.index()];
        let reqs = u32::from(tp.requests);
        let mut fc = FilterCounts::default();
        fc.counts[CfFilter::AllRequests.index()] = reqs;
        // Third-party fetches are assets, not documents, and always carry
        // a Referer; they never hit `GET /`.
        fc.counts[CfFilter::Status200.index()] = reqs - u32::from(tp.non200);
        fc.counts[CfFilter::Referer.index()] = reqs;
        fc.counts[CfFilter::TopBrowsers.index()] = if client.browser.is_top5() { reqs } else { 0 };
        fc.counts[CfFilter::Tls.index()] = u32::from(tp.tls_handshakes);
        Some((fc, client.browser, client.ip))
    }
}

/// Per-(site, ip) uniqueness state: which filters have already counted this
/// IP for the site, overall and per browser (User-Agent).
#[derive(Debug, Clone, Copy, Default)]
struct IpCell {
    /// Filter bits counted toward unique-IP.
    bits: u8,
    /// Filter bits counted toward unique-(IP, UA), per browser.
    ua_bits: [u8; 7],
}

/// Per-site accumulators for one day: raw request counts plus the two
/// unique-aggregation counters, per filter.
#[derive(Debug, Clone, Copy, Default)]
struct SiteCell {
    raw: [u32; 7],
    uniq_ip: [u32; 7],
    uniq_ip_ua: [u32; 7],
}

/// Reusable streaming builder of one day's CDN metrics.
///
/// Replaces the `BTreeMap<(site, ip), bits>` / `BTreeMap<(site, ip, ua),
/// bits>` uniqueness maps of the old materialized scan with an epoch-stamped
/// [`ScratchMap`] keyed by the packed `(site << 32) | ip` and per-site dense
/// counters: when an event sets a filter bit that the `(site, ip)` (or
/// `(site, ip, ua)`) pair has not produced yet today, the site's unique
/// counter for that filter increments — exactly the number of map entries
/// whose value contains the bit, i.e. the same count the maps produced.
/// Unique-IP tracking must key on the *IP*, not the client: enterprise
/// clients share NAT egress IPs, and the CDN can only see addresses.
#[derive(Debug)]
pub(crate) struct CdnDayBuilder {
    ip_cells: ScratchMap<IpCell>,
    per_site: ScratchTable<SiteCell>,
    /// Sites touched this day, for the finish scan (order irrelevant:
    /// results land in site-indexed vectors).
    touched: Vec<u32>,
}

impl CdnDayBuilder {
    pub(crate) fn new(world: &World) -> Self {
        CdnDayBuilder {
            ip_cells: ScratchMap::new(),
            per_site: ScratchTable::with_len(world.sites.len()),
            touched: Vec::new(),
        }
    }

    /// Starts a new day; previous per-day state is invalidated in O(1).
    pub(crate) fn begin(&mut self) {
        self.ip_cells.begin_epoch();
        self.per_site.begin_epoch();
        self.touched.clear();
    }

    // topple-lint: hot-path-begin
    pub(crate) fn page_load(&mut self, world: &World, pl: &PageLoad) {
        if let Some((fc, ua, ip)) = FilterCounts::of_page_load(world, pl) {
            self.accumulate(pl.site.0, ip, ua, &fc);
        }
    }

    pub(crate) fn third_party(&mut self, world: &World, tp: &ThirdPartyFetch) {
        if let Some((fc, ua, ip)) = FilterCounts::of_third_party(world, tp) {
            self.accumulate(tp.site.0, ip, ua, &fc);
        }
    }

    fn accumulate(&mut self, site: u32, ip: u32, ua: Browser, fc: &FilterCounts) {
        let (first, sc) = self.per_site.slot(site as usize);
        if first {
            self.touched.push(site);
        }
        for i in 0..7 {
            sc.raw[i] += fc.counts[i];
        }
        let bits = fc.bits();
        if bits != 0 {
            let key = (u64::from(site) << 32) | u64::from(ip);
            let (_, cell) = self.ip_cells.entry(key);
            let ip_new = bits & !cell.bits;
            cell.bits |= bits;
            let ua_slot = &mut cell.ua_bits[ua.index()];
            let ua_new = bits & !*ua_slot;
            *ua_slot |= bits;
            if ip_new != 0 || ua_new != 0 {
                for f in 0..7 {
                    sc.uniq_ip[f] += u32::from((ip_new >> f) & 1);
                    sc.uniq_ip_ua[f] += u32::from((ua_new >> f) & 1);
                }
            }
        }
    }
    // topple-lint: hot-path-end

    /// Drains the day's accumulators into the 21 metric score vectors.
    pub(crate) fn finish_day(&mut self, n_sites: usize) -> CfDayMetrics {
        let mut scores: Vec<ScoreVec> = (0..METRIC_COUNT).map(|_| vec![0.0; n_sites]).collect();
        for &site in &self.touched {
            let sc = self.per_site.peek(site as usize);
            for f in CfFilter::ALL {
                let i = f.index();
                scores[CfMetric {
                    filter: f,
                    agg: CfAgg::Raw,
                }
                .index()][site as usize] = f64::from(sc.raw[i]);
                scores[CfMetric {
                    filter: f,
                    agg: CfAgg::UniqueIp,
                }
                .index()][site as usize] = f64::from(sc.uniq_ip[i]);
                scores[CfMetric {
                    filter: f,
                    agg: CfAgg::UniqueIpUa,
                }
                .index()][site as usize] = f64::from(sc.uniq_ip_ua[i]);
            }
        }
        CfDayMetrics { scores }
    }
}

/// All 21 metric scores for one day, indexed `[metric][site]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CfDayMetrics {
    /// Scores per metric per site.
    pub scores: Vec<ScoreVec>,
}

impl CfDayMetrics {
    /// Score vector of one metric.
    pub fn metric(&self, m: CfMetric) -> &ScoreVec {
        &self.scores[m.index()]
    }
}

/// A mergeable per-day observation of the CDN request log: the full
/// 21-metric snapshot of each covered day, keyed by day index.
///
/// Shards form a commutative monoid under [`Shard::merge`]: the identity is
/// the empty shard, merges over *distinct* days are a keyed union (no float
/// arithmetic, hence exactly associative), and merging the same day twice
/// sums its scores — the "observed the traffic twice" semantics shared by
/// every shard type. All scores are integer-valued counts stored as `f64`,
/// so even the degenerate same-day sum stays exact below 2^53.
///
/// [`Shard::merge`]: crate::Shard::merge
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CdnShard {
    days: BTreeMap<usize, CfDayMetrics>,
}

impl CdnDayBuilder {
    /// Drains the day's accumulation into a single-day [`CdnShard`] (the
    /// fused streaming path's counterpart to [`CdnShard::from_day`]).
    pub(crate) fn finish_shard(&mut self, world: &World, day_index: usize) -> CdnShard {
        let mut days = BTreeMap::new();
        days.insert(day_index, self.finish_day(world.sites.len()));
        CdnShard { days }
    }
}

impl CdnShard {
    /// Observes one day of traffic into a single-day shard. Pure: depends
    /// only on `(world, traffic)`, never on ingestion order.
    pub fn from_day(world: &World, traffic: &DayTraffic) -> Self {
        let mut days = BTreeMap::new();
        days.insert(traffic.day_index, CdnVantage::observe_day(world, traffic));
        CdnShard { days }
    }

    /// Day indices covered by this shard, ascending.
    pub fn day_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.days.keys().copied()
    }
}

impl crate::Shard for CdnShard {
    fn merge(&mut self, other: Self) {
        for (day, metrics) in other.days {
            match self.days.entry(day) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(metrics);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    for (dst, src) in e.get_mut().scores.iter_mut().zip(&metrics.scores) {
                        add_assign(dst, src);
                    }
                }
            }
        }
    }
}

/// The CDN vantage, accumulating per-day metrics over the window.
#[derive(Debug)]
pub struct CdnVantage {
    n_sites: usize,
    days_ingested: usize,
    /// Sum over days of each metric's daily score, `[metric][site]`.
    monthly_sum: Vec<ScoreVec>,
    /// Daily scores for the paper's seven final metrics, `[day][final_idx]`
    /// (the evaluation averages daily comparisons; keeping all 21 per day
    /// would be prohibitive at full scale).
    daily_final: Vec<Vec<ScoreVec>>,
    /// The full 21-metric snapshot of the first ingested day (Figure 8).
    first_day: Option<CfDayMetrics>,
}

impl CdnVantage {
    /// Creates an empty vantage for a world.
    pub fn new(world: &World) -> Self {
        CdnVantage {
            n_sites: world.sites.len(),
            days_ingested: 0,
            monthly_sum: (0..METRIC_COUNT)
                .map(|_| vec![0.0; world.sites.len()])
                .collect(),
            daily_final: Vec::new(),
            first_day: None,
        }
    }

    /// Computes one day's 21 metrics from the request log without mutating
    /// the vantage (used directly by the Figure 8 experiment).
    ///
    /// Implemented as a replay of the materialized traffic through a fresh
    /// [`CdnDayBuilder`] — the same accumulation the fused streaming path
    /// uses, so the two cannot drift apart.
    pub fn observe_day(world: &World, traffic: &DayTraffic) -> CfDayMetrics {
        let mut b = CdnDayBuilder::new(world);
        b.begin();
        for pl in &traffic.page_loads {
            b.page_load(world, pl);
        }
        for tp in &traffic.third_party {
            b.third_party(world, tp);
        }
        b.finish_day(world.sites.len())
    }

    /// Ingests one day of traffic. Equivalent to building a [`CdnShard`]
    /// for the day and ingesting it — that *is* the implementation, so the
    /// sequential and sharded paths cannot drift apart.
    pub fn ingest_day(&mut self, world: &World, traffic: &DayTraffic) {
        self.ingest_shard(CdnShard::from_day(world, traffic));
    }

    /// Folds a (possibly multi-day) shard into the accumulators, applying
    /// its days in ascending day order. Days must arrive contiguously —
    /// day `d` can only be ingested once days `0..d` have been.
    ///
    /// # Panics
    ///
    /// Panics if a shard day is out of order with respect to what this
    /// vantage has already ingested.
    pub fn ingest_shard(&mut self, shard: CdnShard) {
        for (day_index, day) in shard.days {
            assert_eq!(
                day_index, self.days_ingested,
                "CDN days must be ingested in order"
            );
            for m in 0..METRIC_COUNT {
                add_assign(&mut self.monthly_sum[m], &day.scores[m]);
            }
            self.daily_final.push(
                CfMetric::final_seven()
                    .iter()
                    .map(|m| day.scores[m.index()].clone())
                    .collect(),
            );
            if self.first_day.is_none() {
                self.first_day = Some(day);
            }
            self.days_ingested += 1;
        }
    }

    /// Number of days ingested so far.
    pub fn days(&self) -> usize {
        self.days_ingested
    }

    /// Number of sites in the underlying world.
    pub fn site_count(&self) -> usize {
        self.n_sites
    }

    /// Monthly mean daily score for a metric.
    pub fn monthly(&self, m: CfMetric) -> ScoreVec {
        let mut v = self.monthly_sum[m.index()].clone();
        if self.days_ingested > 0 {
            scale(&mut v, self.days_ingested as f64);
        }
        v
    }

    /// Daily scores for one of the seven final metrics (index into
    /// [`CfMetric::final_seven`]). All-requests is index 0 and root-page
    /// index 2, the two page-load bookends.
    pub fn daily_final(&self, final_idx: usize, day_index: usize) -> &ScoreVec {
        &self.daily_final[day_index][final_idx]
    }

    /// Daily all-requests scores (Figure 3's reference metric).
    pub fn daily_all_requests(&self, day_index: usize) -> &ScoreVec {
        self.daily_final(0, day_index)
    }

    /// The full 21-metric snapshot of the first ingested day (Figure 8).
    pub fn first_day(&self) -> Option<&CfDayMetrics> {
        self.first_day.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::{World, WorldConfig};

    fn world_and_day() -> (World, DayTraffic) {
        let w = World::generate(WorldConfig::tiny(31)).unwrap();
        let t = w.simulate_day(0);
        (w, t)
    }

    #[test]
    fn metric_indices_are_dense() {
        let all = CfMetric::full_suite();
        assert_eq!(all.len(), 21);
        for (i, m) in all.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
        assert_eq!(CfMetric::final_seven().len(), 7);
    }

    #[test]
    fn non_customer_sites_are_invisible() {
        let (w, t) = world_and_day();
        let day = CdnVantage::observe_day(&w, &t);
        for (i, site) in w.sites.iter().enumerate() {
            if !site.cloudflare {
                for m in CfMetric::full_suite() {
                    assert_eq!(day.metric(m)[i], 0.0, "{} leaked into {:?}", site.domain, m);
                }
            }
        }
    }

    #[test]
    fn filter_counts_are_ordered_subsets() {
        let (w, t) = world_and_day();
        let day = CdnVantage::observe_day(&w, &t);
        let all = day.metric(CfMetric {
            filter: CfFilter::AllRequests,
            agg: CfAgg::Raw,
        });
        for f in [
            CfFilter::Html,
            CfFilter::Status200,
            CfFilter::Referer,
            CfFilter::TopBrowsers,
            CfFilter::RootPage,
        ] {
            let sub = day.metric(CfMetric {
                filter: f,
                agg: CfAgg::Raw,
            });
            for i in 0..w.sites.len() {
                assert!(
                    sub[i] <= all[i],
                    "filter {f:?} exceeds all-requests at site {i}: {} > {}",
                    sub[i],
                    all[i]
                );
            }
        }
    }

    #[test]
    fn unique_ip_bounded_by_raw_and_ip_ua_at_least_ip() {
        let (w, t) = world_and_day();
        let day = CdnVantage::observe_day(&w, &t);
        for f in CfFilter::ALL {
            let raw = day.metric(CfMetric {
                filter: f,
                agg: CfAgg::Raw,
            });
            let ip = day.metric(CfMetric {
                filter: f,
                agg: CfAgg::UniqueIp,
            });
            let ipua = day.metric(CfMetric {
                filter: f,
                agg: CfAgg::UniqueIpUa,
            });
            for i in 0..w.sites.len() {
                assert!(
                    ip[i] <= raw[i].max(ip[i]),
                    "uniq ip should not exceed raw requests"
                );
                if raw[i] > 0.0 && f != CfFilter::Tls {
                    // Some requester must exist when requests were counted.
                    assert!(ip[i] >= 1.0, "site {i} filter {f:?}");
                }
                assert!(ipua[i] >= ip[i], "ip-ua tuples can only exceed plain ips");
            }
        }
    }

    #[test]
    fn https_only_tls() {
        let (w, t) = world_and_day();
        let day = CdnVantage::observe_day(&w, &t);
        let tls = day.metric(CfMetric {
            filter: CfFilter::Tls,
            agg: CfAgg::Raw,
        });
        for (i, site) in w.sites.iter().enumerate() {
            if !site.https {
                assert_eq!(tls[i], 0.0, "plain-HTTP site {} counted TLS", site.domain);
            }
        }
    }

    #[test]
    fn monthly_is_mean_of_days() {
        let (w, _) = world_and_day();
        let mut v = CdnVantage::new(&w);
        let t0 = w.simulate_day(0);
        let t1 = w.simulate_day(1);
        v.ingest_day(&w, &t0);
        v.ingest_day(&w, &t1);
        let m = CfMetric {
            filter: CfFilter::AllRequests,
            agg: CfAgg::Raw,
        };
        let d0 = CdnVantage::observe_day(&w, &t0);
        let d1 = CdnVantage::observe_day(&w, &t1);
        let monthly = v.monthly(m);
        for (i, &got) in monthly.iter().enumerate().take(w.sites.len()) {
            let want = (d0.metric(m)[i] + d1.metric(m)[i]) / 2.0;
            assert!((got - want).abs() < 1e-9);
        }
        assert_eq!(v.days(), 2);
        assert!(v.first_day().is_some());
    }

    /// The retired map-based implementation, kept as an executable spec:
    /// the scratch-table builder must produce bit-identical metrics.
    fn reference_observe_day(world: &World, traffic: &DayTraffic) -> CfDayMetrics {
        let n = world.sites.len();
        let mut raw: Vec<FilterCounts> = vec![FilterCounts::default(); n];
        let mut uniq_ip: BTreeMap<(u32, u32), u8> = BTreeMap::new();
        let mut uniq_ip_ua: BTreeMap<(u32, u32, u8), u8> = BTreeMap::new();
        let mut bump = |site: u32, ip: u32, ua: Browser, fc: FilterCounts| {
            let r = &mut raw[site as usize];
            for i in 0..7 {
                r.counts[i] += fc.counts[i];
            }
            let bits = fc.bits();
            if bits != 0 {
                *uniq_ip.entry((site, ip)).or_default() |= bits;
                *uniq_ip_ua.entry((site, ip, ua.index() as u8)).or_default() |= bits;
            }
        };
        for pl in &traffic.page_loads {
            if let Some((fc, ua, ip)) = FilterCounts::of_page_load(world, pl) {
                bump(pl.site.0, ip, ua, fc);
            }
        }
        for tp in &traffic.third_party {
            if let Some((fc, ua, ip)) = FilterCounts::of_third_party(world, tp) {
                bump(tp.site.0, ip, ua, fc);
            }
        }
        let mut scores: Vec<ScoreVec> = (0..METRIC_COUNT).map(|_| vec![0.0; n]).collect();
        for (i, fc) in raw.iter().enumerate() {
            for f in CfFilter::ALL {
                scores[CfMetric {
                    filter: f,
                    agg: CfAgg::Raw,
                }
                .index()][i] = f64::from(fc.counts[f.index()]);
            }
        }
        for ((site, _ip), bits) in &uniq_ip {
            for f in CfFilter::ALL {
                if bits & (1 << f.index()) != 0 {
                    scores[CfMetric {
                        filter: f,
                        agg: CfAgg::UniqueIp,
                    }
                    .index()][*site as usize] += 1.0;
                }
            }
        }
        for ((site, _ip, _ua), bits) in &uniq_ip_ua {
            for f in CfFilter::ALL {
                if bits & (1 << f.index()) != 0 {
                    scores[CfMetric {
                        filter: f,
                        agg: CfAgg::UniqueIpUa,
                    }
                    .index()][*site as usize] += 1.0;
                }
            }
        }
        CfDayMetrics { scores }
    }

    #[test]
    fn builder_matches_map_based_reference() {
        let w = World::generate(WorldConfig::tiny(33)).unwrap();
        // Reuse one builder across days: epoch clearing must not leak
        // anything from day to day.
        let mut b = CdnDayBuilder::new(&w);
        for d in 0..3 {
            let t = w.simulate_day(d);
            b.begin();
            for pl in &t.page_loads {
                b.page_load(&w, pl);
            }
            for tp in &t.third_party {
                b.third_party(&w, tp);
            }
            let got = b.finish_day(w.sites.len());
            let want = reference_observe_day(&w, &t);
            for m in CfMetric::full_suite() {
                for i in 0..w.sites.len() {
                    assert_eq!(
                        got.metric(m)[i].to_bits(),
                        want.metric(m)[i].to_bits(),
                        "day {d} metric {m:?} site {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn automation_excluded_from_top_browsers() {
        let (w, t) = world_and_day();
        let day = CdnVantage::observe_day(&w, &t);
        // Find a pageload from an automation client to a CF site.
        let m_all = CfMetric {
            filter: CfFilter::AllRequests,
            agg: CfAgg::Raw,
        };
        let m_top = CfMetric {
            filter: CfFilter::TopBrowsers,
            agg: CfAgg::Raw,
        };
        let mut automation_traffic = 0.0;
        for pl in &t.page_loads {
            let c = &w.clients[pl.client.index()];
            if c.browser == Browser::Automation && w.sites[pl.site.index()].cloudflare {
                automation_traffic += f64::from(pl.total_requests());
            }
        }
        if automation_traffic > 0.0 {
            let total_all: f64 = day.scores[m_all.index()].iter().sum();
            let total_top: f64 = day.scores[m_top.index()].iter().sum();
            assert!(
                total_top < total_all,
                "top-browser filter must drop automation"
            );
        }
    }
}
