//! The browser-extension measurement panel behind the Alexa-style ranking.
//!
//! The panel is small (a percent-ish of clients), skews desktop and
//! non-China, and — critically — sees nothing from private browsing windows,
//! where extensions are disabled by default \[15\]. Alexa's rank combines
//! "average daily visitors and pageviews" \[3\], so the panel records both per
//! site per day.

use std::collections::BTreeMap;

use topple_sim::{DayTraffic, PageLoad, SiteId, World};

use crate::scratch::{ScratchMap, ScratchTable};

/// A mergeable observation of panel activity for a set of days, keyed by
/// day index.
///
/// Each day's stats are final at observation time (the panel has no
/// cross-day state), so the merge is a keyed union over days — exactly
/// associative and commutative. Merging the same day twice sums its stats
/// ("observed the traffic twice"), like every other shard type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PanelShard {
    days: BTreeMap<usize, PanelDay>,
}

impl PanelShard {
    /// Observes one day of traffic into a single-day shard. Pure: depends
    /// only on `(world, traffic)`, never on ingestion order.
    ///
    /// Implemented as a replay of the materialized traffic through a fresh
    /// [`PanelDayBuilder`] — the same accumulation the fused streaming path
    /// uses, so the two cannot drift apart.
    pub fn from_day(world: &World, traffic: &DayTraffic) -> Self {
        let mut b = PanelDayBuilder::new(world);
        b.begin();
        for pl in &traffic.page_loads {
            b.page_load(world, pl);
        }
        b.finish_day(traffic.day_index)
    }

    /// Day indices covered by this shard, ascending.
    pub fn day_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.days.keys().copied()
    }
}

/// Reusable streaming builder of one day's panel shard: a dense
/// site-indexed stats table plus a packed `(site, client)` presence map for
/// visitor deduplication, both epoch-cleared between days.
#[derive(Debug)]
pub(crate) struct PanelDayBuilder {
    per_site: ScratchTable<PanelDayStats>,
    /// Sites touched this day (order irrelevant: the finish step emits into
    /// a `BTreeMap`).
    touched: Vec<u32>,
    /// Presence of packed `(site << 32) | client` pairs.
    visitors: ScratchMap<()>,
}

impl PanelDayBuilder {
    pub(crate) fn new(world: &World) -> Self {
        PanelDayBuilder {
            per_site: ScratchTable::with_len(world.sites.len()),
            touched: Vec::new(),
            visitors: ScratchMap::new(),
        }
    }

    /// Starts a new day; previous per-day state is invalidated in O(1).
    pub(crate) fn begin(&mut self) {
        self.per_site.begin_epoch();
        self.touched.clear();
        self.visitors.begin_epoch();
    }

    // topple-lint: hot-path-begin
    pub(crate) fn page_load(&mut self, world: &World, pl: &PageLoad) {
        let client = &world.clients[pl.client.index()];
        // Extensions are disabled in private windows: those loads vanish.
        if !client.alexa_panelist || pl.private_mode {
            return;
        }
        let (first, stats) = self.per_site.slot(pl.site.index());
        if first {
            self.touched.push(pl.site.0);
        }
        stats.pageviews += 1;
        let (new_visitor, ()) = self
            .visitors
            .entry((u64::from(pl.site.0) << 32) | u64::from(pl.client.0));
        if new_visitor {
            stats.visitors += 1;
        }
    }
    // topple-lint: hot-path-end

    /// Drains the day's stats into a single-day shard.
    pub(crate) fn finish_day(&mut self, day_index: usize) -> PanelShard {
        let mut day = PanelDay::default();
        for &site in &self.touched {
            day.per_site
                .insert(SiteId(site), self.per_site.peek(site as usize));
        }
        let mut days = BTreeMap::new();
        days.insert(day_index, day);
        PanelShard { days }
    }
}

impl crate::Shard for PanelShard {
    fn merge(&mut self, other: Self) {
        for (day_index, day) in other.days {
            match self.days.entry(day_index) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(day);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let dst = e.get_mut();
                    for (site, stats) in day.per_site {
                        // Saturating rather than wrapping: `min(a + b, MAX)`
                        // keeps the merge associative and commutative, so
                        // the monoid laws hold even for adversarial
                        // same-day self-merges (`tests/merge_laws.rs`).
                        let s = dst.per_site.entry(site).or_default();
                        s.pageviews = s.pageviews.saturating_add(stats.pageviews);
                        s.visitors = s.visitors.saturating_add(stats.visitors);
                    }
                }
            }
        }
    }
}

/// One site's panel observation for one day.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PanelDayStats {
    /// Page views by panelists.
    pub pageviews: u32,
    /// Distinct panelists who visited.
    pub visitors: u32,
}

/// One day of panel data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PanelDay {
    per_site: BTreeMap<SiteId, PanelDayStats>,
}

impl PanelDay {
    /// Iterates observed `(site, stats)`.
    pub fn sites(&self) -> impl Iterator<Item = (&SiteId, &PanelDayStats)> {
        self.per_site.iter()
    }

    /// Stats for one site, if observed.
    pub fn get(&self, s: SiteId) -> Option<PanelDayStats> {
        self.per_site.get(&s).copied()
    }

    /// Number of sites the panel saw that day.
    pub fn site_count(&self) -> usize {
        self.per_site.len()
    }
}

/// The extension panel vantage.
#[derive(Debug, Default)]
pub struct PanelVantage {
    days: Vec<PanelDay>,
    panel_size: usize,
}

impl PanelVantage {
    /// Creates an empty panel vantage.
    pub fn new(world: &World) -> Self {
        PanelVantage {
            days: Vec::new(),
            panel_size: world.clients.iter().filter(|c| c.alexa_panelist).count(),
        }
    }

    /// Number of panelists in the population.
    pub fn panel_size(&self) -> usize {
        self.panel_size
    }

    /// Ingests one day of traffic. Equivalent to building a [`PanelShard`]
    /// for the day and ingesting it — that *is* the implementation, so the
    /// sequential and sharded paths cannot drift apart.
    pub fn ingest_day(&mut self, world: &World, traffic: &DayTraffic) {
        self.ingest_shard(PanelShard::from_day(world, traffic));
    }

    /// Folds a (possibly multi-day) shard into the day list, applying its
    /// days in ascending day order. Days must arrive contiguously so the
    /// day-indexed accessors stay meaningful.
    ///
    /// # Panics
    ///
    /// Panics if a shard day is out of order with respect to what this
    /// vantage has already ingested.
    pub fn ingest_shard(&mut self, shard: PanelShard) {
        for (day_index, day) in shard.days {
            assert_eq!(
                day_index,
                self.days.len(),
                "panel days must be ingested in order"
            );
            self.days.push(day);
        }
    }

    /// Number of ingested days.
    pub fn day_count(&self) -> usize {
        self.days.len()
    }

    /// One day of panel data.
    pub fn day(&self, day_index: usize) -> &PanelDay {
        &self.days[day_index]
    }

    /// All ingested days.
    pub fn all_days(&self) -> &[PanelDay] {
        &self.days
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::{Category, WorldConfig};

    fn setup() -> (World, PanelVantage) {
        let w = World::generate(WorldConfig::small(61)).unwrap();
        let mut p = PanelVantage::new(&w);
        let t = w.simulate_day(0);
        p.ingest_day(&w, &t);
        (w, p)
    }

    #[test]
    fn panel_is_small() {
        let (w, p) = setup();
        assert!(p.panel_size() > 0);
        assert!(p.panel_size() < w.clients.len() / 10);
    }

    #[test]
    fn visitors_bounded_by_pageviews_and_panel() {
        let (_, p) = setup();
        for (_, s) in p.day(0).sites() {
            assert!(s.visitors <= s.pageviews);
            assert!(s.visitors as usize <= p.panel_size());
            assert!(s.visitors >= 1);
        }
    }

    #[test]
    fn private_browsing_is_invisible() {
        // Adult traffic is mostly private; the panel's adult share must be
        // far below the true traffic share.
        let w = World::generate(WorldConfig {
            n_clients: 3_000,
            ..WorldConfig::small(62)
        })
        .unwrap();
        let t = w.simulate_day(0);
        let mut p = PanelVantage::new(&w);
        p.ingest_day(&w, &t);

        let true_adult = t
            .page_loads
            .iter()
            .filter(|pl| w.sites[pl.site.index()].category == Category::Adult)
            .count() as f64
            / t.page_loads.len() as f64;
        let panel_total: u32 = p.day(0).sites().map(|(_, s)| s.pageviews).sum();
        let panel_adult: u32 = p
            .day(0)
            .sites()
            .filter(|(id, _)| w.sites[id.index()].category == Category::Adult)
            .map(|(_, s)| s.pageviews)
            .sum();
        if panel_total > 200 && true_adult > 0.0 {
            let panel_share = f64::from(panel_adult) / f64::from(panel_total);
            assert!(
                panel_share < true_adult * 0.7,
                "panel adult share {panel_share:.4} vs true {true_adult:.4}"
            );
        }
    }

    #[test]
    fn only_panelists_counted() {
        let (w, p) = setup();
        let t = w.simulate_day(0);
        let panel_loads = t
            .page_loads
            .iter()
            .filter(|pl| w.clients[pl.client.index()].alexa_panelist && !pl.private_mode)
            .count() as u32;
        let counted: u32 = p.day(0).sites().map(|(_, s)| s.pageviews).sum();
        assert_eq!(counted, panel_loads);
    }
}
