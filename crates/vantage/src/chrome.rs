//! The Chrome telemetry vantage: the data source behind CrUX and the paper's
//! Section 6 platform/country analyses.
//!
//! Telemetry covers only Chrome users who opted into history sync and usage
//! statistics. It is aggregated by *web origin*, excludes private (incognito)
//! windows and non-public domains, and applies a minimum-unique-visitors
//! privacy threshold before an origin may appear in any published list \[13\].
//!
//! Three client metrics are collected (Section 6.1): initiated page loads,
//! completed page loads (First Contentful Paint, the public CrUX metric), and
//! total time on site — broken down by client country and platform
//! (Windows and Android, the representative desktop and mobile platforms).

use std::collections::{BTreeMap, BTreeSet, HashSet};

use topple_sim::{Country, DayTraffic, PageLoad, Platform, SiteId, World};

use crate::scratch::ScratchMap;

/// A web origin in telemetry: `(site, host index)`. The textual origin is
/// recoverable via [`ChromeVantage::origin_text`].
pub type OriginKey = (SiteId, u8);

/// Client telemetry metrics (Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChromeMetric {
    /// Page loads that began.
    InitiatedLoads,
    /// Page loads that reached First Contentful Paint — the CrUX metric.
    CompletedLoads,
    /// Total seconds spent on the origin.
    TimeOnSite,
}

impl ChromeMetric {
    /// All three metrics in stable order.
    pub const ALL: [ChromeMetric; 3] = [
        ChromeMetric::InitiatedLoads,
        ChromeMetric::CompletedLoads,
        ChromeMetric::TimeOnSite,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ChromeMetric::InitiatedLoads => "initiated",
            ChromeMetric::CompletedLoads => "completed",
            ChromeMetric::TimeOnSite => "time-on-site",
        }
    }
}

/// Per-origin accumulated counters.
#[derive(Debug, Clone, Copy, Default)]
struct OriginCell {
    initiated: u64,
    completed: u64,
    dwell_secs: u64,
    unique_clients: u32,
}

/// The platforms Chrome telemetry breaks out (Section 6.1).
pub const TELEMETRY_PLATFORMS: [Platform; 2] = [Platform::Windows, Platform::Android];

/// Per-origin counters of a shard, carrying the exact client *set* (not just
/// its size) so that unique-client counts merge losslessly across shards.
#[derive(Debug, Clone, Default, PartialEq)]
struct ShardCell {
    initiated: u64,
    completed: u64,
    dwell_secs: u64,
    clients: BTreeSet<u32>,
}

impl ShardCell {
    fn merge(&mut self, other: ShardCell) {
        // Saturating: a fixed-width counter must clamp at its maximum
        // rather than wrap when pathological shards (e.g. the same heavy
        // day merged into itself many times) meet. Saturating addition is
        // still associative and commutative — `min(a + b, MAX)` composed in
        // any order yields `min(a + b + …, MAX)` — so the monoid laws the
        // pipeline relies on survive; `tests/merge_laws.rs` pins both.
        self.initiated = self.initiated.saturating_add(other.initiated);
        self.completed = self.completed.saturating_add(other.completed);
        self.dwell_secs = self.dwell_secs.saturating_add(other.dwell_secs);
        self.clients.extend(other.clients);
    }
}

/// A mergeable observation of Chrome telemetry for a set of days.
///
/// Every field merges commutatively and exactly: counters are integer sums,
/// unique clients are set unions, and covered days are a set union — so the
/// merge is associative regardless of the order shards are combined in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeShard {
    day_indices: BTreeSet<usize>,
    global: BTreeMap<OriginKey, ShardCell>,
    cells: BTreeMap<(Country, Platform, OriginKey), ShardCell>,
}

impl ChromeShard {
    /// Observes one day of traffic into a single-day shard. Pure: depends
    /// only on `(world, traffic)`, never on ingestion order.
    ///
    /// Implemented as a replay of the materialized traffic through a fresh
    /// [`ChromeDayBuilder`] — the same accumulation the fused streaming
    /// path uses, so the two cannot drift apart.
    pub fn from_day(world: &World, traffic: &DayTraffic) -> Self {
        let mut b = ChromeDayBuilder::new();
        b.begin();
        for pl in &traffic.page_loads {
            b.page_load(world, pl);
        }
        b.finish_day(traffic.day_index)
    }

    /// Day indices covered by this shard, ascending.
    pub fn day_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.day_indices.iter().copied()
    }
}

/// One telemetry cell under construction: counters plus the deduplicated
/// client list (exact set semantics, order irrelevant).
#[derive(Debug, Default)]
struct CellScratch {
    initiated: u64,
    completed: u64,
    dwell_secs: u64,
    clients: Vec<u32>,
}

impl CellScratch {
    /// Resets for reuse, keeping the client list's capacity.
    fn reset(&mut self) {
        self.initiated = 0;
        self.completed = 0;
        self.dwell_secs = 0;
        self.clients.clear();
    }

    fn emit(&mut self) -> ShardCell {
        ShardCell {
            initiated: self.initiated,
            completed: self.completed,
            dwell_secs: self.dwell_secs,
            clients: self.clients.iter().copied().collect(),
        }
    }
}

/// Reusable streaming builder of one day's Chrome telemetry shard.
///
/// Cells live in flat vectors addressed through epoch-stamped
/// [`ScratchMap`] indices; per-cell client deduplication goes through a
/// packed `(cell, client)` presence map instead of per-cell sets. Cell
/// *allocation* order depends on event order, but the finish step emits
/// cells into `BTreeMap`s keyed by origin, so the resulting shard is
/// order-independent.
#[derive(Debug, Default)]
pub(crate) struct ChromeDayBuilder {
    /// Packed origin key `(site << 8) | host` → index into `global_cells`.
    global_idx: ScratchMap<u32>,
    global_cells: Vec<(OriginKey, CellScratch)>,
    global_live: usize,
    /// Packed `(country, platform, origin)` → index into `cp_cells`.
    cp_idx: ScratchMap<u32>,
    cp_cells: Vec<((Country, Platform, OriginKey), CellScratch)>,
    cp_live: usize,
    /// Presence of `(tagged cell, client)` pairs; global cells are tagged
    /// with the high bit clear, per-(country, platform) cells with it set.
    client_seen: ScratchMap<()>,
}

/// Tag bit distinguishing per-(country, platform) cells from global cells
/// in the shared `(cell, client)` presence map.
const CP_TAG: u64 = 1 << 31;

impl ChromeDayBuilder {
    pub(crate) fn new() -> Self {
        ChromeDayBuilder::default()
    }

    /// Starts a new day; previous per-day state is invalidated in O(1).
    pub(crate) fn begin(&mut self) {
        self.global_idx.begin_epoch();
        self.cp_idx.begin_epoch();
        self.client_seen.begin_epoch();
        self.global_live = 0;
        self.cp_live = 0;
    }

    // topple-lint: hot-path-begin
    pub(crate) fn page_load(&mut self, world: &World, pl: &PageLoad) {
        let client = &world.clients[pl.client.index()];
        if !client.chrome_optin || pl.private_mode {
            return;
        }
        let site = &world.sites[pl.site.index()];
        // Telemetry excludes non-public domains [13].
        if !site.public_web {
            return;
        }
        let origin: OriginKey = (pl.site, pl.host_idx);
        let origin_key = (u64::from(pl.site.0) << 8) | u64::from(pl.host_idx);

        let (fresh, slot) = self.global_idx.entry(origin_key);
        let gi = if fresh {
            let gi = claim(&mut self.global_cells, &mut self.global_live, origin);
            *slot = gi;
            gi
        } else {
            *slot
        };
        let cell = &mut self.global_cells[gi as usize].1;
        cell.initiated += 1;
        cell.completed += u64::from(pl.completed);
        cell.dwell_secs += u64::from(pl.dwell_secs);
        let (new_client, ()) = self
            .client_seen
            .entry((u64::from(gi) << 32) | u64::from(pl.client.0));
        if new_client {
            cell.clients.push(pl.client.0);
        }

        if TELEMETRY_PLATFORMS.contains(&client.platform) {
            let cp = (client.country, client.platform, origin);
            let cp_key = ((client.country.index() as u64) << 48)
                | ((client.platform.index() as u64) << 40)
                | origin_key;
            let (fresh, slot) = self.cp_idx.entry(cp_key);
            let ci = if fresh {
                let ci = claim(&mut self.cp_cells, &mut self.cp_live, cp);
                *slot = ci;
                ci
            } else {
                *slot
            };
            let cell = &mut self.cp_cells[ci as usize].1;
            cell.initiated += 1;
            cell.completed += u64::from(pl.completed);
            cell.dwell_secs += u64::from(pl.dwell_secs);
            let (new_client, ()) = self
                .client_seen
                .entry(((CP_TAG | u64::from(ci)) << 32) | u64::from(pl.client.0));
            if new_client {
                cell.clients.push(pl.client.0);
            }
        }
    }
    // topple-lint: hot-path-end

    /// Drains the day's cells into a single-day shard.
    pub(crate) fn finish_day(&mut self, day_index: usize) -> ChromeShard {
        let mut shard = ChromeShard::default();
        shard.day_indices.insert(day_index);
        for (origin, cell) in self.global_cells.iter_mut().take(self.global_live) {
            shard.global.insert(*origin, cell.emit());
        }
        for (key, cell) in self.cp_cells.iter_mut().take(self.cp_live) {
            shard.cells.insert(*key, cell.emit());
        }
        shard
    }
}

/// Claims the next cell slot in `cells`, reusing a previous day's
/// allocation when one exists, and records its key.
fn claim<K: Copy>(cells: &mut Vec<(K, CellScratch)>, live: &mut usize, key: K) -> u32 {
    let idx = *live;
    *live += 1;
    if idx == cells.len() {
        cells.push((key, CellScratch::default()));
    } else {
        cells[idx].0 = key;
        cells[idx].1.reset();
    }
    idx as u32
}

impl crate::Shard for ChromeShard {
    fn merge(&mut self, other: Self) {
        self.day_indices.extend(other.day_indices);
        for (origin, cell) in other.global {
            self.global.entry(origin).or_default().merge(cell);
        }
        for (key, cell) in other.cells {
            self.cells.entry(key).or_default().merge(cell);
        }
    }
}

/// The Chrome telemetry vantage.
#[derive(Debug)]
pub struct ChromeVantage {
    /// Monthly per-(country, platform) per-origin cells.
    cells: BTreeMap<(Country, Platform, OriginKey), OriginCell>,
    /// Global per-origin cells (all countries and platforms) — CrUX input.
    global: BTreeMap<OriginKey, OriginCell>,
    /// Scratch: distinct (country, platform, origin, client) quadruples.
    seen_cp: HashSet<(Country, Platform, OriginKey, u32)>,
    /// Scratch: distinct (origin, client) pairs.
    seen_global: HashSet<(OriginKey, u32)>,
    /// Opted-in population size (for reporting).
    optin_clients: usize,
    days: usize,
}

impl ChromeVantage {
    /// Creates an empty vantage.
    pub fn new(world: &World) -> Self {
        ChromeVantage {
            cells: BTreeMap::new(),
            global: BTreeMap::new(),
            seen_cp: HashSet::new(),
            seen_global: HashSet::new(),
            optin_clients: world.clients.iter().filter(|c| c.chrome_optin).count(),
            days: 0,
        }
    }

    /// Number of opted-in clients in the population.
    pub fn optin_clients(&self) -> usize {
        self.optin_clients
    }

    /// Number of ingested days.
    pub fn day_count(&self) -> usize {
        self.days
    }

    /// Ingests one day of traffic. Equivalent to building a [`ChromeShard`]
    /// for the day and ingesting it — that *is* the implementation, so the
    /// sequential and sharded paths cannot drift apart.
    pub fn ingest_day(&mut self, world: &World, traffic: &DayTraffic) {
        self.ingest_shard(ChromeShard::from_day(world, traffic));
    }

    /// Folds a (possibly multi-day) shard into the accumulators. Chrome
    /// telemetry has no order-sensitive state, so shards may arrive in any
    /// order; the persistent seen-client sets turn shard client sets into
    /// monotone unique-client counts.
    pub fn ingest_shard(&mut self, shard: ChromeShard) {
        for (origin, cell) in shard.global {
            let global = self.global.entry(origin).or_default();
            global.initiated += cell.initiated;
            global.completed += cell.completed;
            global.dwell_secs += cell.dwell_secs;
            for client in cell.clients {
                if self.seen_global.insert((origin, client)) {
                    global.unique_clients += 1;
                }
            }
        }
        for ((country, platform, origin), cell) in shard.cells {
            let dst = self.cells.entry((country, platform, origin)).or_default();
            dst.initiated += cell.initiated;
            dst.completed += cell.completed;
            dst.dwell_secs += cell.dwell_secs;
            for client in cell.clients {
                if self.seen_cp.insert((country, platform, origin, client)) {
                    dst.unique_clients += 1;
                }
            }
        }
        self.days += shard.day_indices.len();
    }

    /// The published per-(country, platform) rank-order list for one metric:
    /// origins above the privacy threshold, sorted by descending score.
    pub fn country_platform_list(
        &self,
        country: Country,
        platform: Platform,
        metric: ChromeMetric,
        privacy_threshold: u32,
    ) -> Vec<(OriginKey, f64)> {
        let mut out: Vec<(OriginKey, f64)> = self
            .cells
            .iter()
            .filter(|((c, p, _), cell)| {
                *c == country && *p == platform && cell.unique_clients >= privacy_threshold
            })
            .map(|((_, _, o), cell)| (*o, Self::score(cell, metric)))
            .filter(|&(_, s)| s > 0.0)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The global origin list by completed page loads (the public CrUX
    /// input), privacy-thresholded.
    pub fn global_completed_list(&self, privacy_threshold: u32) -> Vec<(OriginKey, f64)> {
        let mut out: Vec<(OriginKey, f64)> = self
            .global
            .iter()
            .filter(|(_, cell)| cell.unique_clients >= privacy_threshold && cell.completed > 0)
            .map(|(o, cell)| (*o, cell.completed as f64))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    fn score(cell: &OriginCell, metric: ChromeMetric) -> f64 {
        match metric {
            ChromeMetric::InitiatedLoads => cell.initiated as f64,
            ChromeMetric::CompletedLoads => cell.completed as f64,
            ChromeMetric::TimeOnSite => cell.dwell_secs as f64,
        }
    }

    /// Renders an origin key as its textual web origin.
    pub fn origin_text(world: &World, origin: OriginKey) -> String {
        world.sites[origin.0.index()]
            .origin_of(origin.1 as usize)
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::{Browser, WorldConfig};

    fn setup() -> (World, ChromeVantage) {
        let w = World::generate(WorldConfig::small(71)).unwrap();
        let mut v = ChromeVantage::new(&w);
        for d in 0..3 {
            let t = w.simulate_day(d);
            v.ingest_day(&w, &t);
        }
        (w, v)
    }

    #[test]
    fn only_optin_chrome_users_counted() {
        let (w, v) = setup();
        // Sum of global initiated equals opted-in non-private public loads.
        let mut expected = 0u64;
        for d in 0..3 {
            let t = w.simulate_day(d);
            expected += t
                .page_loads
                .iter()
                .filter(|pl| {
                    let c = &w.clients[pl.client.index()];
                    c.chrome_optin
                        && c.browser == Browser::Chrome
                        && !pl.private_mode
                        && w.sites[pl.site.index()].public_web
                })
                .count() as u64;
        }
        let got: u64 = v.global.values().map(|c| c.initiated).sum();
        assert_eq!(got, expected);
    }

    #[test]
    fn completed_bounded_by_initiated() {
        let (_, v) = setup();
        for cell in v.global.values() {
            assert!(cell.completed <= cell.initiated);
        }
        for cell in v.cells.values() {
            assert!(cell.completed <= cell.initiated);
        }
    }

    #[test]
    fn privacy_threshold_filters() {
        let (_, v) = setup();
        let loose = v.global_completed_list(1);
        let strict = v.global_completed_list(5);
        assert!(strict.len() <= loose.len());
        for (o, _) in &strict {
            assert!(v.global[o].unique_clients >= 5);
        }
    }

    #[test]
    fn lists_are_sorted_descending() {
        let (_, v) = setup();
        let list = v.global_completed_list(1);
        assert!(!list.is_empty());
        for w in list.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let cp = v.country_platform_list(
            Country::UnitedStates,
            Platform::Windows,
            ChromeMetric::CompletedLoads,
            1,
        );
        for w in cp.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn non_public_sites_excluded() {
        let (w, v) = setup();
        for (o, _) in v.global_completed_list(1) {
            assert!(w.sites[o.0.index()].public_web);
        }
    }

    #[test]
    fn platform_breakdown_covers_only_telemetry_platforms() {
        let (_, v) = setup();
        for (c, p, _) in v.cells.keys() {
            assert!(
                TELEMETRY_PLATFORMS.contains(p),
                "unexpected platform {p:?} for {c:?}"
            );
        }
    }

    #[test]
    fn origin_text_is_a_valid_origin() {
        let (w, v) = setup();
        if let Some((o, _)) = v.global_completed_list(1).first() {
            let text = ChromeVantage::origin_text(&w, *o);
            assert!(text.starts_with("http://") || text.starts_with("https://"));
        }
    }
}
