//! Epoch-stamped scratch structures for allocation-free per-day ingestion.
//!
//! The fused ingestion path (see [`crate::fused`]) accumulates one day of
//! traffic at a time into dense working tables, then resets them for the
//! next day. Resetting by reallocation (or even by `clear()`-and-rezero)
//! would put an `O(capacity)` cost and fresh heap traffic on every day; the
//! structures here instead stamp each slot with the *epoch* (day generation
//! counter) that last wrote it. Bumping the epoch invalidates every slot in
//! `O(1)`, and a slot whose stamp is stale reads as its `Default` value —
//! indistinguishable from a freshly zeroed table. That equivalence is the
//! **scratch-epoch invariant**, pinned by the property tests in
//! `crates/vantage/tests/scratch_props.rs`.
//!
//! Epochs are `u64` and only ever incremented, so they cannot wrap within
//! any feasible run (2^64 days), and no stamp laundering is needed.
//!
//! Three pieces:
//!
//! * [`ScratchTable`] — a dense index-addressed table (for site- or
//!   name-indexed accumulators over the world's fixed universe).
//! * [`ScratchMap`] — an open-addressed `u64`-keyed hash map (for sparse
//!   composite keys like `(site, ip)` packed into 64 bits).
//! * [`ScratchPool`] — a mutex-guarded free list the study worker pool
//!   checks scratch states out of per day, so capacity built up on early
//!   days is reused for the rest of the window.

use std::sync::{Mutex, PoisonError};

/// A dense, epoch-stamped table addressed by `usize` index.
///
/// `slot(i)` returns the value for `i` in the current epoch, resetting it to
/// `V::default()` first if the slot was last written in an earlier epoch.
/// [`ScratchTable::begin_epoch`] therefore "clears" the whole table in
/// `O(1)` without touching memory.
#[derive(Debug)]
pub struct ScratchTable<V> {
    stamps: Vec<u64>,
    vals: Vec<V>,
    epoch: u64,
}

impl<V: Default + Clone> ScratchTable<V> {
    /// A table covering indices `0..len` (the universe size is fixed per
    /// world, so the one allocation happens at construction).
    pub fn with_len(len: usize) -> Self {
        ScratchTable {
            stamps: vec![0; len],
            vals: vec![V::default(); len],
            // Stamps start at 0, so the first epoch must be 1 — otherwise
            // every slot would read as already claimed.
            epoch: 1,
        }
    }

    /// Starts a new epoch: every slot now reads as `V::default()`.
    pub fn begin_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Mutable access to slot `i`, plus whether this is the slot's first
    /// touch in the current epoch (after the reset to default).
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the constructed length.
    pub fn slot(&mut self, i: usize) -> (bool, &mut V) {
        let first = self.stamps[i] != self.epoch;
        if first {
            self.stamps[i] = self.epoch;
            self.vals[i] = V::default();
        }
        (first, &mut self.vals[i])
    }

    /// Reads slot `i` without claiming it: the current-epoch value, or
    /// `V::default()` if untouched this epoch.
    pub fn peek(&self, i: usize) -> V {
        if self.stamps[i] == self.epoch {
            self.vals[i].clone()
        } else {
            V::default()
        }
    }

    /// The constructed length.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Whether the table covers no indices at all.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }
}

/// An open-addressed, linear-probed hash map from packed `u64` keys to `V`,
/// with epoch-stamped slots.
///
/// Designed for the per-day uniqueness tracking in the fused ingestion path:
/// `entry(key)` either finds the key's current-epoch slot or claims a stale
/// one (resetting it to `V::default()`), reporting which happened. The table
/// grows geometrically at 7/8 load — growth re-seats only current-epoch
/// entries, and once a scratch has seen its heaviest day the capacity is
/// final, making subsequent days allocation-free.
///
/// Iteration order is never exposed: consumers drain results through their
/// own dense touch lists or sorts, keeping results independent of hash
/// layout.
#[derive(Debug)]
pub struct ScratchMap<V> {
    keys: Vec<u64>,
    stamps: Vec<u64>,
    vals: Vec<V>,
    epoch: u64,
    live: usize,
}

/// Initial capacity (slots) of a [`ScratchMap`]; always a power of two.
const MAP_INITIAL_CAPACITY: usize = 64;

/// Multiplicative hash (Fibonacci constant); the high bits index the table.
#[inline]
fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl<V: Default + Clone> ScratchMap<V> {
    /// An empty map with the default initial capacity.
    pub fn new() -> Self {
        ScratchMap {
            keys: vec![0; MAP_INITIAL_CAPACITY],
            stamps: vec![0; MAP_INITIAL_CAPACITY],
            vals: vec![V::default(); MAP_INITIAL_CAPACITY],
            // Stamps start at 0, so the first epoch must be 1 — otherwise
            // every slot would look live and probes could cycle forever.
            epoch: 1,
            live: 0,
        }
    }

    /// Starts a new epoch: the map now reads as empty.
    pub fn begin_epoch(&mut self) {
        self.epoch += 1;
        self.live = 0;
    }

    /// Number of distinct keys inserted in the current epoch.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no key has been inserted in the current epoch.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The value for `key` in the current epoch, if inserted.
    pub fn get(&self, key: u64) -> Option<&V> {
        let mask = self.keys.len() - 1;
        let mut i = (spread(key) >> 32) as usize & mask;
        loop {
            if self.stamps[i] != self.epoch {
                return None;
            }
            if self.keys[i] == key {
                return Some(&self.vals[i]);
            }
            i = (i + 1) & mask;
        }
    }

    /// Finds or inserts `key`'s slot for the current epoch. Returns whether
    /// the key is new this epoch (value freshly reset to `V::default()`)
    /// and the slot itself.
    pub fn entry(&mut self, key: u64) -> (bool, &mut V) {
        if (self.live + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = (spread(key) >> 32) as usize & mask;
        loop {
            if self.stamps[i] != self.epoch {
                self.keys[i] = key;
                self.stamps[i] = self.epoch;
                self.vals[i] = V::default();
                self.live += 1;
                return (true, &mut self.vals[i]);
            }
            if self.keys[i] == key {
                return (false, &mut self.vals[i]);
            }
            i = (i + 1) & mask;
        }
    }

    /// Doubles capacity, re-seating only the current epoch's live entries.
    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let mut keys = vec![0u64; new_cap];
        let mut stamps = vec![0u64; new_cap];
        let mut vals = vec![V::default(); new_cap];
        let mask = new_cap - 1;
        for old in 0..self.keys.len() {
            if self.stamps[old] != self.epoch {
                continue;
            }
            let key = self.keys[old];
            let mut i = (spread(key) >> 32) as usize & mask;
            while stamps[i] == self.epoch {
                i = (i + 1) & mask;
            }
            keys[i] = key;
            stamps[i] = self.epoch;
            vals[i] = std::mem::take(&mut self.vals[old]);
        }
        self.keys = keys;
        self.stamps = stamps;
        self.vals = vals;
    }
}

impl<V: Default + Clone> Default for ScratchMap<V> {
    fn default() -> Self {
        ScratchMap::new()
    }
}

/// A mutex-guarded free list of reusable scratch states.
///
/// The study's worker pool checks a state out per day and returns it after
/// the day's shards are built, so at most `workers` states ever exist and
/// each one's warmed-up capacity serves many days. The pool imposes no
/// ordering and the states carry no cross-day data (every checkout starts a
/// fresh epoch), so pooling cannot affect results — only allocation counts.
#[derive(Debug)]
pub struct ScratchPool<T> {
    free: Mutex<Vec<T>>,
}

impl<T> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Takes a pooled state, or builds one with `make` if none is free.
    pub fn checkout_or(&self, make: impl FnOnce() -> T) -> T {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_else(make)
    }

    /// Returns a state to the pool for the next checkout.
    pub fn put_back(&self, state: T) {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(state);
    }
}

impl<T> Default for ScratchPool<T> {
    fn default() -> Self {
        ScratchPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_epoch_reads_as_fresh() {
        let mut t: ScratchTable<u32> = ScratchTable::with_len(8);
        let (first, v) = t.slot(3);
        assert!(first);
        *v = 7;
        assert_eq!(t.peek(3), 7);
        let (first, v) = t.slot(3);
        assert!(!first);
        assert_eq!(*v, 7);
        t.begin_epoch();
        assert_eq!(t.peek(3), 0, "stale slot must read as default");
        let (first, v) = t.slot(3);
        assert!(first, "stale slot must be re-claimable");
        assert_eq!(*v, 0);
    }

    #[test]
    fn map_entry_tracks_freshness_across_epochs() {
        let mut m: ScratchMap<u8> = ScratchMap::new();
        let (fresh, v) = m.entry(42);
        assert!(fresh);
        *v = 9;
        let (fresh, v) = m.entry(42);
        assert!(!fresh);
        assert_eq!(*v, 9);
        assert_eq!(m.len(), 1);
        m.begin_epoch();
        assert!(m.get(42).is_none());
        assert!(m.is_empty());
        let (fresh, v) = m.entry(42);
        assert!(fresh, "key from a past epoch must count as new");
        assert_eq!(*v, 0);
    }

    #[test]
    fn map_grows_past_load_factor_and_keeps_entries() {
        let mut m: ScratchMap<u64> = ScratchMap::new();
        for k in 0..1000u64 {
            let key = k.wrapping_mul(0x1234_5678_9ABC_DEF1);
            let (fresh, v) = m.entry(key);
            assert!(fresh);
            *v = k;
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            let key = k.wrapping_mul(0x1234_5678_9ABC_DEF1);
            assert_eq!(m.get(key), Some(&k));
        }
    }

    #[test]
    fn map_probes_past_bucket_collisions() {
        // Keys 1, 60, 129 all spread into bucket 57 of the 64-slot initial
        // table (verified against `spread` below), so the second and third
        // inserts exercise the linear-probe path, not the happy path.
        let colliding = [1u64, 60, 129];
        let mask = MAP_INITIAL_CAPACITY - 1;
        for &k in &colliding {
            assert_eq!(
                (spread(k) >> 32) as usize & mask,
                (spread(colliding[0]) >> 32) as usize & mask,
                "test premise: keys must share a bucket"
            );
        }
        let mut m: ScratchMap<u64> = ScratchMap::new();
        for &k in &colliding {
            let (fresh, v) = m.entry(k);
            assert!(fresh, "distinct colliding keys must each claim a slot");
            *v = k * 10;
        }
        assert_eq!(m.len(), 3);
        for &k in &colliding {
            assert_eq!(m.get(k), Some(&(k * 10)), "probe chain must find {k}");
            let (fresh, v) = m.entry(k);
            assert!(!fresh, "re-entry must reuse the probed slot for {k}");
            assert_eq!(*v, k * 10);
        }
        // A fourth key in a different bucket is unaffected by the chain.
        assert!(m.get(2).is_none());
    }

    #[test]
    fn map_probe_wraps_around_the_table_end() {
        // Keys 69, 128, 187 all spread into the LAST slot (63) of the
        // 64-slot initial table, so the probe sequence must wrap to slot 0
        // via the index mask rather than run off the end.
        let wrapping = [69u64, 128, 187];
        let mask = MAP_INITIAL_CAPACITY - 1;
        for &k in &wrapping {
            assert_eq!(
                (spread(k) >> 32) as usize & mask,
                mask,
                "test premise: keys must hash to the final slot"
            );
        }
        let mut m: ScratchMap<u64> = ScratchMap::new();
        for &k in &wrapping {
            let (fresh, v) = m.entry(k);
            assert!(fresh);
            *v = k + 1;
        }
        for &k in &wrapping {
            assert_eq!(m.get(k), Some(&(k + 1)), "wrapped probe must find {k}");
        }
        // Absent keys whose bucket sits inside the wrapped chain terminate
        // (the chain stamps break the loop) instead of probing forever.
        assert!(m.get(u64::MAX).is_none());
        // Freshness survives the wrap across epochs too.
        m.begin_epoch();
        for &k in &wrapping {
            assert!(m.get(k).is_none(), "{k} must expire with the epoch");
        }
        let (fresh, _) = m.entry(wrapping[2]);
        assert!(fresh, "wrapped slot must be re-claimable next epoch");
    }

    #[test]
    fn pool_round_trips_states() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        let mut a = pool.checkout_or(|| Vec::with_capacity(16));
        a.push(1);
        let cap = a.capacity();
        pool.put_back(a);
        let b = pool.checkout_or(Vec::new);
        assert_eq!(b.capacity(), cap, "pooled state must be the same buffer");
        let c = pool.checkout_or(|| vec![9]);
        assert_eq!(c, vec![9], "empty pool must fall back to the factory");
    }
}
