//! The shard/merge algebra shared by every vantage.
//!
//! A *shard* is a pure, mergeable observation of one (or, after merging,
//! several) days of traffic as one vantage would see it. Shards obey monoid
//! laws — an identity element, associativity, and (for every shard type in
//! this crate) commutativity — which is what makes it safe to *build* them
//! on any number of worker threads in any completion order. Order-sensitive
//! state (the DNS TTL gate, day-indexed accessors) lives entirely in the
//! vantages' `ingest_shard` folds, which consume a shard's days in ascending
//! day order.
//!
//! The laws are not aspirational: `tests/merge_laws.rs` at the workspace
//! root asserts identity, associativity, commutativity, and
//! shard-vs-sequential equivalence for every vantage over seeded worlds, and
//! `tests/determinism.rs` pins that study results are byte-identical across
//! worker counts.
//!
//! The crawler vantage has no shard type: it reads the static hyperlink
//! graph, not the daily traffic stream, so there is nothing per-day to
//! merge (see `DESIGN.md` §10).

use topple_sim::{DayTraffic, Resolver, World};

use crate::chrome::ChromeShard;
use crate::cloudflare::CdnShard;
use crate::dns::DnsShard;
use crate::panel::PanelShard;

/// A mergeable per-day observation: the monoid every vantage shard
/// implements.
///
/// Implementations must keep `merge` associative — and every shard in this
/// crate keeps it commutative too — with `Default::default()` as the
/// identity element. `merge` performs no floating-point arithmetic on
/// distinct days (keyed unions and integer sums only), so the laws hold
/// *exactly*, not just up to rounding.
pub trait Shard: Default {
    /// Folds `other` into `self`. Distinct days union; identical days
    /// combine as if their traffic had been observed twice.
    fn merge(&mut self, other: Self);

    /// The identity element: a shard that observed nothing.
    fn identity() -> Self {
        Self::default()
    }
}

/// One day's observations for all five traffic-ingesting vantages of a
/// study: the unit of work a pipeline worker produces.
///
/// `DnsShard` appears twice because the study runs two resolver vantages
/// (Umbrella and the Chinese resolver behind Secrank) over the same traffic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DayShards {
    /// CDN request-log metrics.
    pub cdn: CdnShard,
    /// Chrome telemetry.
    pub chrome: ChromeShard,
    /// The Umbrella-style enterprise resolver.
    pub umbrella: DnsShard,
    /// The Chinese resolver feeding Secrank.
    pub china: DnsShard,
    /// The browser-extension panel.
    pub panel: PanelShard,
}

impl DayShards {
    /// Observes one day of traffic from every vantage at once. Pure and
    /// thread-safe: depends only on `(world, traffic)`, so workers can
    /// build shards for different days concurrently and in any order.
    pub fn observe(world: &World, traffic: &DayTraffic) -> Self {
        DayShards {
            cdn: CdnShard::from_day(world, traffic),
            chrome: ChromeShard::from_day(world, traffic),
            umbrella: DnsShard::from_day(world, traffic, Resolver::Umbrella),
            china: DnsShard::from_day(world, traffic, Resolver::ChinaVoting),
            panel: PanelShard::from_day(world, traffic),
        }
    }
}

impl Shard for DayShards {
    fn merge(&mut self, other: Self) {
        self.cdn.merge(other.cdn);
        self.chrome.merge(other.chrome);
        self.umbrella.merge(other.umbrella);
        self.china.merge(other.china);
        self.panel.merge(other.panel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    #[test]
    fn day_shards_observe_and_merge() {
        let w = World::generate(WorldConfig::tiny(91)).unwrap();
        let t0 = w.simulate_day(0);
        let t1 = w.simulate_day(1);
        let mut a = DayShards::observe(&w, &t0);
        let b = DayShards::observe(&w, &t1);
        assert_ne!(a, b);
        a.merge(b.clone());
        assert_eq!(a.cdn.day_indices().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(a.panel.day_indices().collect::<Vec<_>>(), vec![0, 1]);
        // Identity on both sides.
        let mut id_left = DayShards::identity();
        id_left.merge(b.clone());
        let mut id_right = b.clone();
        id_right.merge(DayShards::identity());
        assert_eq!(id_left, b);
        assert_eq!(id_right, b);
    }
}
