//! The web crawler vantage behind the Majestic-style backlink ranking.
//!
//! A crawler discovers sites only by following hyperlinks from pages it has
//! already fetched: it can never see unlinked ("non-public") sites, and what
//! it counts — distinct referring domains — reflects who *links*, not who
//! *visits*. Both properties are the mechanisms behind Majestic's biases in
//! the paper (institutions over-represented, adult/abuse/parked missing).

use std::collections::VecDeque;

use topple_sim::{SiteId, World};

use crate::metrics::ScoreVec;

/// A breadth-first crawl over the world's hyperlink graph.
#[derive(Debug)]
pub struct CrawlerVantage {
    /// Distinct referring domains discovered per site.
    referring_domains: Vec<u32>,
    /// Total backlink pages discovered per site.
    backlinks: Vec<u32>,
    /// Sites actually fetched by the crawl.
    crawled: Vec<bool>,
}

impl CrawlerVantage {
    /// Runs a crawl of at most `budget` page fetches, seeded from the first
    /// `seeds` *public* sites in id order (mirroring a crawler bootstrapped
    /// from a well-known-sites seed list).
    ///
    /// The crawl fetches a site's pages only if the site is public; links
    /// into non-public sites are recorded as discovered names but never
    /// expanded.
    pub fn crawl(world: &World, seeds: usize, budget: usize) -> Self {
        let n = world.sites.len();
        let mut referring_domains = vec![0u32; n];
        let mut backlinks = vec![0u32; n];
        let mut crawled = vec![false; n];
        let mut queued = vec![false; n];
        // Last crawled source that linked to each target, for deduping
        // referring-domain counts without per-target sets.
        let mut last_ref: Vec<u32> = vec![u32::MAX; n];

        let mut queue: VecDeque<u32> = VecDeque::new();
        for s in world.sites.iter().filter(|s| s.public_web).take(seeds) {
            queue.push_back(s.id.0);
            queued[s.id.index()] = true;
        }

        let mut fetched = 0usize;
        while let Some(src) = queue.pop_front() {
            if fetched >= budget {
                break;
            }
            if !world.sites[src as usize].public_web {
                continue;
            }
            crawled[src as usize] = true;
            fetched += 1;
            for &dst in world.link_graph.out_links(SiteId(src)) {
                backlinks[dst as usize] += 1;
                if last_ref[dst as usize] != src {
                    last_ref[dst as usize] = src;
                    referring_domains[dst as usize] += 1;
                }
                if !queued[dst as usize] && world.sites[dst as usize].public_web {
                    queued[dst as usize] = true;
                    queue.push_back(dst);
                }
            }
        }

        CrawlerVantage {
            referring_domains,
            backlinks,
            crawled,
        }
    }

    /// Distinct referring domains per site (Majestic's primary signal).
    pub fn referring_domains(&self) -> ScoreVec {
        self.referring_domains
            .iter()
            .map(|&v| f64::from(v))
            .collect()
    }

    /// Raw backlink pages per site (Majestic's tiebreaker).
    pub fn backlinks(&self) -> &[u32] {
        &self.backlinks
    }

    /// Whether a site's own pages were fetched.
    pub fn was_crawled(&self, s: SiteId) -> bool {
        self.crawled[s.index()]
    }

    /// Number of sites fetched.
    pub fn crawled_count(&self) -> usize {
        self.crawled.iter().filter(|&&c| c).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::{Category, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::small(51)).unwrap()
    }

    #[test]
    fn crawl_respects_budget() {
        let w = world();
        let c = CrawlerVantage::crawl(&w, 10, 500);
        assert!(c.crawled_count() <= 500);
        assert!(c.crawled_count() > 100, "crawl should expand beyond seeds");
    }

    #[test]
    fn non_public_sites_never_crawled() {
        let w = world();
        let c = CrawlerVantage::crawl(&w, 10, usize::MAX);
        for s in &w.sites {
            if !s.public_web {
                assert!(!c.was_crawled(s.id), "{} crawled despite robots", s.domain);
            }
        }
    }

    #[test]
    fn referring_domains_bounded_by_backlinks() {
        let w = world();
        let c = CrawlerVantage::crawl(&w, 10, usize::MAX);
        for i in 0..w.sites.len() {
            assert!(c.referring_domains()[i] <= f64::from(c.backlinks()[i]));
        }
    }

    #[test]
    fn institutions_beat_adult_content() {
        let w = world();
        let c = CrawlerVantage::crawl(&w, 10, usize::MAX);
        let refs = c.referring_domains();
        let mean = |cat: Category| {
            let vals: Vec<f64> = w
                .sites
                .iter()
                .filter(|s| s.category == cat)
                .map(|s| refs[s.id.index()])
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        assert!(mean(Category::Government) > 2.0 * mean(Category::Adult));
    }

    #[test]
    fn bigger_budget_sees_no_less() {
        let w = world();
        let small = CrawlerVantage::crawl(&w, 10, 200);
        let big = CrawlerVantage::crawl(&w, 10, 2_000);
        assert!(big.crawled_count() >= small.crawled_count());
        let s_total: f64 = small.referring_domains().iter().sum();
        let b_total: f64 = big.referring_domains().iter().sum();
        assert!(b_total >= s_total);
    }
}
