//! Fused single-pass ingestion: every vantage observes the traffic stream
//! as it is generated.
//!
//! The materialized pipeline simulates a day into three event vectors
//! (`DayTraffic`) and then lets each of the five vantages re-scan them. The
//! fused pipeline inverts that: [`DayScratch::observe_day`] drives
//! `World::simulate_day_into` with a [`FusedObserver`] sink that dispatches
//! each event — still on the stack, by reference — to all five shard
//! builders at once. No per-day event buffer ever exists, and all per-day
//! working state (uniqueness maps, dense accumulators, the traffic engine's
//! stub cache) lives in reusable epoch-stamped scratch (see
//! [`crate::scratch`]), so a warmed-up `DayScratch` ingests a day without
//! heap allocation until the final shard materialization.
//!
//! Both paths produce identical [`DayShards`]: the builders' per-day
//! aggregations are order-independent (exact presence sets and commutative
//! integer counters), so the streamed interleaving of page loads with their
//! third-party fetches cannot produce different shards than the segregated
//! `DayTraffic` scan. `tests/merge_laws.rs` and `tests/ingest_fused.rs`
//! assert the equality; `tests/determinism.rs` pins that study outputs stay
//! byte-identical across worker counts.

use topple_sim::{
    BackgroundQuery, EventSink, PageLoad, Resolver, ThirdPartyFetch, TrafficScratch, World,
};

use crate::chrome::ChromeDayBuilder;
use crate::cloudflare::CdnDayBuilder;
use crate::dns::DnsDayBuilder;
use crate::panel::PanelDayBuilder;
use crate::shard::DayShards;

/// All per-worker reusable state for fused day ingestion: the traffic
/// engine's scratch plus one streaming builder per vantage.
///
/// Create one per worker (or check one out of a
/// [`ScratchPool`](crate::scratch::ScratchPool) per day) and call
/// [`DayScratch::observe_day`] for each day; capacity warmed up on early
/// days is reused for the rest of the window. Carries no cross-day data —
/// every day starts a fresh scratch epoch — so reuse cannot affect results.
#[derive(Debug)]
pub struct DayScratch {
    traffic: TrafficScratch,
    cdn: CdnDayBuilder,
    chrome: ChromeDayBuilder,
    umbrella: DnsDayBuilder,
    china: DnsDayBuilder,
    panel: PanelDayBuilder,
}

impl DayScratch {
    /// Scratch sized for `world`'s site and name universes.
    pub fn new(world: &World) -> Self {
        DayScratch {
            traffic: TrafficScratch::for_world(world),
            cdn: CdnDayBuilder::new(world),
            chrome: ChromeDayBuilder::new(),
            umbrella: DnsDayBuilder::new(world, Resolver::Umbrella),
            china: DnsDayBuilder::new(world, Resolver::ChinaVoting),
            panel: PanelDayBuilder::new(world),
        }
    }

    /// Splits the scratch into the traffic engine's part and an observer
    /// over the five builders, with all builders reset for a new day. The
    /// split borrow is what lets `simulate_day_into` feed the observer
    /// while both live in the same scratch.
    pub fn parts<'a>(
        &'a mut self,
        world: &'a World,
    ) -> (&'a mut TrafficScratch, FusedObserver<'a>) {
        self.cdn.begin();
        self.chrome.begin();
        self.umbrella.begin();
        self.china.begin();
        self.panel.begin();
        let DayScratch {
            traffic,
            cdn,
            chrome,
            umbrella,
            china,
            panel,
        } = self;
        (
            traffic,
            FusedObserver {
                world,
                cdn,
                chrome,
                umbrella,
                china,
                panel,
            },
        )
    }

    /// Simulates day `day_index` and observes it from all five vantages in
    /// one streaming pass, returning the day's shards.
    ///
    /// # Panics
    ///
    /// Panics if `day_index` is outside the world's configured window or
    /// the scratch was built for a different (smaller) world.
    pub fn observe_day(&mut self, world: &World, day_index: usize) -> DayShards {
        let (traffic, mut obs) = self.parts(world);
        world.simulate_day_into(day_index, traffic, &mut obs);
        obs.finish_day(day_index)
    }
}

/// The [`EventSink`] that fans each traffic event out to all five shard
/// builders. Borrowed out of a [`DayScratch`] via [`DayScratch::parts`].
#[derive(Debug)]
pub struct FusedObserver<'a> {
    world: &'a World,
    cdn: &'a mut CdnDayBuilder,
    chrome: &'a mut ChromeDayBuilder,
    umbrella: &'a mut DnsDayBuilder,
    china: &'a mut DnsDayBuilder,
    panel: &'a mut PanelDayBuilder,
}

impl FusedObserver<'_> {
    /// Materializes the observed day into its five single-day shards.
    pub fn finish_day(self, day_index: usize) -> DayShards {
        DayShards {
            cdn: self.cdn.finish_shard(self.world, day_index),
            chrome: self.chrome.finish_day(day_index),
            umbrella: self.umbrella.finish_day(day_index),
            china: self.china.finish_day(day_index),
            panel: self.panel.finish_day(day_index),
        }
    }
}

impl EventSink for FusedObserver<'_> {
    fn page_load(&mut self, pl: &PageLoad) {
        self.cdn.page_load(self.world, pl);
        self.chrome.page_load(self.world, pl);
        self.umbrella.page_load(self.world, pl);
        self.china.page_load(self.world, pl);
        self.panel.page_load(self.world, pl);
    }

    fn third_party(&mut self, tp: &ThirdPartyFetch) {
        self.cdn.third_party(self.world, tp);
        self.umbrella.third_party(self.world, tp);
        self.china.third_party(self.world, tp);
    }

    fn background(&mut self, bg: &BackgroundQuery) {
        self.umbrella.background(self.world, bg);
        self.china.background(self.world, bg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    #[test]
    fn fused_equals_materialized_with_scratch_reuse() {
        let w = World::generate(WorldConfig::tiny(101)).unwrap();
        let mut scratch = DayScratch::new(&w);
        // Revisit day 0 after later days: epoch clearing must leak nothing.
        for d in [0, 1, 2, 0, 6] {
            let fused = scratch.observe_day(&w, d);
            let t = w.simulate_day(d);
            let materialized = DayShards::observe(&w, &t);
            assert_eq!(fused, materialized, "day {d}");
        }
    }
}
