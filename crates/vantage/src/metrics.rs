//! Shared scoring utilities for vantage outputs.

use topple_sim::SiteId;

/// A score per site, indexed by dense site id. Zero means "not observed".
pub type ScoreVec = Vec<f64>;

/// Ranks sites by descending score, dropping unobserved (zero-score) sites.
///
/// Ties are broken by site id, which is deterministic but *arbitrary with
/// respect to true popularity* — the same property that real list publishers'
/// tie handling has.
pub fn ranked_sites(scores: &ScoreVec) -> Vec<(SiteId, f64)> {
    let mut out: Vec<(SiteId, f64)> = scores
        .iter()
        .enumerate()
        .filter(|(_, &s)| s > 0.0)
        .map(|(i, &s)| (SiteId(i as u32), s))
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Ranks sites by descending score like [`ranked_sites`], returning only the
/// site ids — the form the interned analysis index consumes
/// (`topple-core::index::StudyIndex::cf_ranked_ids`). Shares [`ranked_sites`]
/// so both forms order identically by construction.
pub fn ranked_site_ids(scores: &ScoreVec) -> Vec<SiteId> {
    ranked_sites(scores).into_iter().map(|(id, _)| id).collect()
}

/// Adds `src` element-wise into `dst` (used for monthly accumulation).
pub fn add_assign(dst: &mut ScoreVec, src: &ScoreVec) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Divides every element by `n` (monthly mean from a sum).
pub fn scale(dst: &mut ScoreVec, n: f64) {
    for d in dst.iter_mut() {
        *d /= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_sites_orders_and_filters() {
        let scores = vec![0.0, 5.0, 2.0, 5.0, 0.0, 9.0];
        let ranked = ranked_sites(&scores);
        let ids: Vec<u32> = ranked.iter().map(|(s, _)| s.0).collect();
        assert_eq!(ids, vec![5, 1, 3, 2]); // ties (1,3) broken by id
        assert!(ranked.iter().all(|&(_, s)| s > 0.0));
    }

    #[test]
    fn accumulation_helpers() {
        let mut a = vec![1.0, 2.0];
        add_assign(&mut a, &vec![3.0, 4.0]);
        assert_eq!(a, vec![4.0, 6.0]);
        scale(&mut a, 2.0);
        assert_eq!(a, vec![2.0, 3.0]);
    }
}
