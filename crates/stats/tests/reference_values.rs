//! Pins against reference values computed with standard scientific software
//! (R 4.3 / scipy 1.11), guarding the from-scratch implementations against
//! silent regressions.

use topple_stats::corr::{kendall_tau_b, pearson, spearman};
use topple_stats::dist::{ChiSquared, StandardNormal, StudentsT};
use topple_stats::logit::{fit_with_intercept, LogitOptions};
use topple_stats::special::{ln_gamma, reg_inc_beta, reg_inc_gamma};

fn close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{a} vs {b}");
}

#[test]
fn normal_quantiles_match_r_qnorm() {
    // R: qnorm(c(.5,.8,.9,.95,.975,.99,.995,.999))
    let cases = [
        (0.5, 0.0),
        (0.8, 0.841_621_233_572_914),
        (0.9, 1.281_551_565_544_6),
        (0.95, 1.644_853_626_951_47),
        (0.975, 1.959_963_984_540_05),
        (0.99, 2.326_347_874_040_84),
        (0.995, 2.575_829_303_548_9),
        (0.999, 3.090_232_306_167_81),
    ];
    for (p, q) in cases {
        close(StandardNormal::inv_cdf(p), q, 1e-7);
        close(StandardNormal::cdf(q), p, 1e-9);
    }
}

#[test]
fn t_distribution_matches_r_pt() {
    // R: pt(c(1, 2, 3), df)
    close(StudentsT::new(5.0).cdf(1.0), 0.818_391_3, 1e-6);
    close(StudentsT::new(5.0).cdf(2.0), 0.949_030_3, 1e-6);
    close(StudentsT::new(30.0).cdf(3.0), 0.997_305_0, 1e-6);
    close(StudentsT::new(2.0).cdf(-1.5), 0.136_196_562, 1e-6); // exact: 1/2 - 1.5/(2*sqrt(2+2.25))
}

#[test]
fn chi2_matches_r_pchisq() {
    // R: pchisq(c(1, 5, 10), df)
    close(ChiSquared::new(3.0).cdf(1.0), 0.198_748_0, 1e-6);
    close(ChiSquared::new(3.0).cdf(5.0), 0.828_202_8, 1e-6);
    close(ChiSquared::new(10.0).cdf(10.0), 0.559_506_7, 1e-6);
}

#[test]
fn special_functions_match_references() {
    // R: lgamma(c(0.1, 2.5, 10.3))
    close(ln_gamma(0.1), 2.252_712_651_734_21, 1e-10);
    close(ln_gamma(2.5), 0.284_682_870_472_919, 1e-10);
    close(ln_gamma(10.3), 13.482_036_786_138_3, 1e-9); // Stirling-verified
                                                       // Pinned; cross-checked against the exact identities in the unit
                                                       // tests (P(1,x) = 1 - e^-x; chi-square and erf reference points).
    close(reg_inc_gamma(2.5, 3.0), 0.693_781_08, 1e-6);
    // scipy.special.betainc(2.0, 5.0, 0.3)
    close(reg_inc_beta(2.0, 5.0, 0.3), 0.579_825_3, 1e-6);
}

#[test]
fn spearman_matches_scipy_on_fixed_data() {
    // scipy.stats.spearmanr(x, y) -> rho=0.74545..., p=0.01333...
    let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
    let y = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 8.0, 7.0, 10.0, 9.0];
    let s = spearman(&x, &y).unwrap();
    // rho: hand-computable via d^2: sum d^2 = 10*1 = 10 -> 1 - 60/990
    close(s.rho, 1.0 - 60.0 / 990.0, 1e-12);
    assert!(s.p_value < 0.01, "p = {}", s.p_value);
}

#[test]
fn pearson_and_kendall_on_anscombe_ii() {
    // Anscombe's quartet II: same r ≈ 0.8162 despite the nonlinear shape.
    let x = [10.0, 8.0, 13.0, 9.0, 11.0, 14.0, 6.0, 4.0, 12.0, 7.0, 5.0];
    let y = [
        9.14, 8.14, 8.74, 8.77, 9.26, 8.10, 6.13, 3.10, 9.13, 7.26, 4.74,
    ];
    close(pearson(&x, &y).unwrap(), 0.816_236_5, 1e-6);
    // Kendall: scipy.stats.kendalltau -> 0.5636364
    close(
        kendall_tau_b(&x, &y).unwrap(),
        0.563_636_363_636_363_6,
        1e-9,
    );
}

#[test]
fn logit_matches_r_glm_binomial() {
    // R:
    //   x <- c(rep(0, 60), rep(1, 40)); y <- c(rep(1, 20), rep(0, 40), rep(1, 25), rep(0, 15))
    //   glm(y ~ x, family=binomial)
    //   coef: (Intercept) -0.6931472, x 1.2039728
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..20 {
        xs.push(0.0);
        ys.push(1.0);
    }
    for _ in 0..40 {
        xs.push(0.0);
        ys.push(0.0);
    }
    for _ in 0..25 {
        xs.push(1.0);
        ys.push(1.0);
    }
    for _ in 0..15 {
        xs.push(1.0);
        ys.push(0.0);
    }
    let fit = fit_with_intercept(&[xs], &ys, LogitOptions::default()).unwrap();
    close(fit.coefficients[0].estimate, -std::f64::consts::LN_2, 1e-6);
    close(fit.coefficients[1].estimate, 1.203_972_8, 1e-6);
    // Odds ratio = (25/15)/(20/40) = 10/3.
    close(fit.coefficients[1].odds_ratio(), 10.0 / 3.0, 1e-6);
    // se(log OR) = sqrt(1/20 + 1/40 + 1/25 + 1/15) from the 2x2 table.
    let se = (1.0f64 / 20.0 + 1.0 / 40.0 + 1.0 / 25.0 + 1.0 / 15.0).sqrt();
    close(fit.coefficients[1].std_error, se, 1e-5);
}
