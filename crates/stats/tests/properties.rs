//! Property-based tests for the statistics toolkit's invariants.

use std::collections::HashSet;

use proptest::prelude::*;
use topple_stats::corr::{kendall_tau_b, pearson, spearman};
use topple_stats::desc::{geometric_mean, mean, quantile, variance};
use topple_stats::dist::{ChiSquared, StandardNormal, StudentsT};
use topple_stats::linalg::{Cholesky, Matrix};
use topple_stats::mtc::{bonferroni, holm};
use topple_stats::rank::{average_ranks, competition_ranks};
use topple_stats::sets::{jaccard, overlap_coefficient, rank_biased_overlap};

fn samples(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, n)
}

proptest! {
    // ---- ranking ----

    #[test]
    fn rank_sum_is_invariant(xs in samples(1..60)) {
        let ranks = average_ranks(&xs).unwrap();
        let n = xs.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn ranks_respect_order(xs in samples(2..60)) {
        let ranks = average_ranks(&xs).unwrap();
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] < xs[j] {
                    prop_assert!(ranks[i] < ranks[j]);
                } else if xs[i] == xs[j] {
                    prop_assert_eq!(ranks[i], ranks[j]);
                }
            }
        }
    }

    #[test]
    fn competition_ranks_bound_average_ranks(xs in samples(1..60)) {
        let avg = average_ranks(&xs).unwrap();
        let comp = competition_ranks(&xs).unwrap();
        for (a, c) in avg.iter().zip(&comp) {
            prop_assert!(f64::from(*c) <= *a + 1e-12);
        }
    }

    // ---- correlation ----

    #[test]
    fn correlations_are_bounded_and_symmetric(
        xs in samples(3..40),
        ys in samples(3..40),
    ) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        if let (Ok(a), Ok(b)) = (pearson(xs, ys), pearson(ys, xs)) {
            prop_assert!((-1.0..=1.0).contains(&a));
            prop_assert!((a - b).abs() < 1e-12);
        }
        if let (Ok(a), Ok(b)) = (spearman(xs, ys), spearman(ys, xs)) {
            prop_assert!((-1.0..=1.0).contains(&a.rho));
            prop_assert!((a.rho - b.rho).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&a.p_value));
        }
        if let (Ok(a), Ok(b)) = (kendall_tau_b(xs, ys), kendall_tau_b(ys, xs)) {
            prop_assert!((-1.0..=1.0).contains(&a));
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(xs in samples(4..40)) {
        let distinct: HashSet<u64> = xs.iter().map(|v| v.to_bits()).collect();
        prop_assume!(distinct.len() == xs.len());
        let ys: Vec<f64> = xs.iter().map(|&v| v.powi(3) * 2.0 + 5.0).collect();
        let s = spearman(&xs, &ys).unwrap();
        prop_assert!((s.rho - 1.0).abs() < 1e-9);
        // Negation flips the sign exactly.
        let neg: Vec<f64> = ys.iter().map(|v| -v).collect();
        let s2 = spearman(&xs, &neg).unwrap();
        prop_assert!((s2.rho + 1.0).abs() < 1e-9);
    }

    #[test]
    fn kendall_agrees_with_spearman_sign(xs in samples(5..40), ys in samples(5..40)) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        if let (Ok(tau), Ok(rho)) = (kendall_tau_b(xs, ys), spearman(xs, ys)) {
            // Strong rank agreement in one must not be strong disagreement
            // in the other.
            if rho.rho > 0.8 {
                prop_assert!(tau > 0.0, "tau {tau} vs rho {}", rho.rho);
            }
            if rho.rho < -0.8 {
                prop_assert!(tau < 0.0);
            }
        }
    }

    // ---- sets ----

    #[test]
    fn jaccard_bounds_and_symmetry(a in proptest::collection::hash_set(0u32..500, 0..80),
                                   b in proptest::collection::hash_set(0u32..500, 0..80)) {
        let ji = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&ji));
        prop_assert_eq!(ji, jaccard(&b, &a));
        // Jaccard <= overlap coefficient.
        prop_assert!(ji <= overlap_coefficient(&a, &b) + 1e-12);
        // Identity.
        prop_assert_eq!(jaccard(&a, &a), 1.0);
    }

    #[test]
    fn jaccard_triangle_on_distance(a in proptest::collection::hash_set(0u32..60, 0..30),
                                    b in proptest::collection::hash_set(0u32..60, 0..30),
                                    c in proptest::collection::hash_set(0u32..60, 0..30)) {
        // Jaccard distance (1 - JI) satisfies the triangle inequality.
        let dab = 1.0 - jaccard(&a, &b);
        let dbc = 1.0 - jaccard(&b, &c);
        let dac = 1.0 - jaccard(&a, &c);
        prop_assert!(dac <= dab + dbc + 1e-9);
    }

    #[test]
    fn rbo_bounds(a in proptest::collection::vec(0u32..100, 0..40),
                  b in proptest::collection::vec(0u32..100, 0..40)) {
        // Deduplicate inputs, preserving order (RBO expects rankings).
        let dedup = |v: Vec<u32>| {
            let mut seen = HashSet::new();
            v.into_iter().filter(|x| seen.insert(*x)).collect::<Vec<_>>()
        };
        let (a, b) = (dedup(a), dedup(b));
        let v = rank_biased_overlap(&a, &b, 0.9);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
    }

    // ---- descriptive ----

    #[test]
    fn mean_within_min_max(xs in samples(1..50)) {
        let m = mean(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn variance_nonnegative_and_shift_invariant(xs in samples(2..50), shift in -1e3f64..1e3) {
        let v = variance(&xs).unwrap();
        prop_assert!(v >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let vs = variance(&shifted).unwrap();
        prop_assert!((v - vs).abs() < 1e-4 * (1.0 + v.abs()));
    }

    #[test]
    fn quantiles_are_monotone(xs in samples(1..50), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo).unwrap();
        let b = quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn geometric_mean_bounded_by_arithmetic(xs in proptest::collection::vec(1e-3f64..1e3, 1..40)) {
        let g = geometric_mean(&xs).unwrap();
        let a = mean(&xs).unwrap();
        prop_assert!(g <= a + 1e-9 * a.abs().max(1.0));
    }

    // ---- distributions ----

    #[test]
    fn cdfs_are_monotone(x1 in -30.0f64..30.0, x2 in -30.0f64..30.0, df in 1.0f64..200.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(StandardNormal::cdf(lo) <= StandardNormal::cdf(hi) + 1e-12);
        let t = StudentsT::new(df);
        prop_assert!(t.cdf(lo) <= t.cdf(hi) + 1e-12);
        let c = ChiSquared::new(df);
        prop_assert!(c.cdf(lo.abs()) <= c.cdf(hi.abs().max(lo.abs())) + 1e-12);
    }

    #[test]
    fn normal_cdf_symmetry(x in -8.0f64..8.0) {
        let a = StandardNormal::cdf(x);
        let b = StandardNormal::cdf(-x);
        prop_assert!((a + b - 1.0).abs() < 1e-10);
    }

    #[test]
    fn normal_quantile_inverts_cdf(p in 0.0005f64..0.9995) {
        let x = StandardNormal::inv_cdf(p);
        prop_assert!((StandardNormal::cdf(x) - p).abs() < 1e-8);
    }

    // ---- multiple testing ----

    #[test]
    fn corrections_dominate_raw(ps in proptest::collection::vec(0.0f64..1.0, 1..30)) {
        let bonf = bonferroni(&ps, ps.len());
        let holm_adj = holm(&ps);
        for i in 0..ps.len() {
            prop_assert!(bonf[i] >= ps[i] - 1e-15);
            prop_assert!(holm_adj[i] >= ps[i] - 1e-15);
            prop_assert!(holm_adj[i] <= bonf[i] + 1e-15, "holm dominates bonferroni");
            prop_assert!(bonf[i] <= 1.0 && holm_adj[i] <= 1.0);
        }
    }

    // ---- linear algebra ----

    #[test]
    fn cholesky_solves_spd_systems(vals in proptest::collection::vec(-2.0f64..2.0, 9),
                                   b in proptest::collection::vec(-5.0f64..5.0, 3)) {
        // Build SPD matrix A = MᵀM + I.
        let m = Matrix::from_rows(&[
            vals[0..3].to_vec(),
            vals[3..6].to_vec(),
            vals[6..9].to_vec(),
        ]);
        let mut a = m.xtwx(&[1.0, 1.0, 1.0]);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&b);
        let back = a.mat_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-6 * (1.0 + v.abs()));
        }
    }
}
