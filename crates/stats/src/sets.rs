//! Set-similarity measures for unordered list comparison.
//!
//! Two families live here: hash-set measures over arbitrary `Eq + Hash`
//! elements, and allocation-free sorted-slice measures over dense `u32` ids
//! ([`intersection_size_sorted`], [`jaccard_sorted`]) for the interned
//! columnar analysis path. Both families share the same **empty-set
//! convention**: the Jaccard index of two empty sets is defined as `1.0`
//! (empty sets are identical; `0/0` would otherwise be NaN), while one empty
//! and one non-empty set give `0.0`. `tests::empty_set_convention_is_shared`
//! pins the two families to each other.

use std::collections::HashSet;
use std::hash::Hash;

/// Jaccard index `|A ∩ B| / |A ∪ B|` of two sets.
///
/// Returns 1.0 when both sets are empty (they are identical — the `0/0`
/// case), matching the convention used when comparing empty list
/// intersections; see the module docs.
///
/// ```
/// use std::collections::HashSet;
/// use topple_stats::sets::jaccard;
///
/// let a: HashSet<_> = [1, 2, 3].into_iter().collect();
/// let b: HashSet<_> = [2, 3, 4].into_iter().collect();
/// assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
/// ```
pub fn jaccard<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let inter = small.iter().filter(|v| large.contains(v)).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap_coefficient<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let inter = small.iter().filter(|v| large.contains(v)).count();
    inter as f64 / small.len() as f64
}

/// Size of the intersection of two sets.
pub fn intersection_size<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().filter(|v| large.contains(v)).count()
}

/// Size of the intersection of two strictly-ascending sorted slices, by
/// merge-walk: no hashing, no allocation.
///
/// Callers must pass deduplicated ascending slices (as produced by sorting a
/// set of interned domain ids); duplicates would be counted once per aligned
/// pair.
pub fn intersection_size_sorted(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a not sorted/dedup");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b not sorted/dedup");
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

/// Jaccard index of two strictly-ascending sorted slices (merge-walk
/// counterpart of [`jaccard`]).
///
/// Keeps [`jaccard`]'s empty-set convention bit-for-bit: both slices empty →
/// `1.0` (the `0/0` case), exactly one empty → `0.0`. The arithmetic is the
/// same `inter as f64 / union as f64` expression, so results are
/// byte-identical to the hash-set path for equal inputs.
pub fn jaccard_sorted(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = intersection_size_sorted(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Rank-biased overlap (Webber et al. 2010) between two rankings, extrapolated
/// to the evaluation depth. `p` is the persistence parameter (typical 0.9–0.99);
/// higher `p` weights deeper ranks more.
///
/// Used as a supplementary top-weighted similarity alongside Jaccard; the paper
/// itself reports Jaccard and Spearman only, so this lives here as an extension
/// for ablation benchmarks.
pub fn rank_biased_overlap<T: Eq + Hash + Clone>(a: &[T], b: &[T], p: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&p),
        "persistence must be in [0, 1), got {p}"
    );
    let depth = a.len().min(b.len());
    if depth == 0 {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let mut seen_a: HashSet<T> = HashSet::with_capacity(depth);
    let mut seen_b: HashSet<T> = HashSet::with_capacity(depth);
    let mut overlap = 0usize;
    let mut sum = 0.0;
    let mut weight = 1.0 - p; // (1-p) p^{d-1} at depth d
    for d in 0..depth {
        let x = &a[d];
        let y = &b[d];
        if x == y {
            overlap += 1;
        } else {
            if seen_b.contains(x) {
                overlap += 1;
            }
            if seen_a.contains(y) {
                overlap += 1;
            }
            seen_a.insert(x.clone());
            seen_b.insert(y.clone());
        }
        sum += weight * overlap as f64 / (d + 1) as f64;
        weight *= p;
    }
    // Extrapolate the final agreement level to infinite depth.
    let agreement_at_depth = overlap as f64 / depth as f64;
    sum + agreement_at_depth * p.powi(crate::cast::i32_from_usize(depth))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> HashSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&set(&[1, 2]), &set(&[1, 2])), 1.0);
        assert_eq!(jaccard(&set(&[1, 2]), &set(&[3, 4])), 0.0);
        assert!((jaccard(&set(&[1, 2, 3]), &set(&[2, 3, 4])) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard::<u32>(&set(&[]), &set(&[])), 1.0);
        assert_eq!(jaccard(&set(&[]), &set(&[1])), 0.0);
    }

    #[test]
    fn jaccard_paper_interpretation_example() {
        // Section 4.4: two lists of 100 with 90 shared -> JI ≈ 0.82.
        let a: HashSet<u32> = (0..100).collect();
        let b: HashSet<u32> = (10..110).collect();
        let ji = jaccard(&a, &b);
        assert!((ji - 90.0 / 110.0).abs() < 1e-12);
        assert!(ji > 0.81 && ji < 0.82);
    }

    #[test]
    fn jaccard_symmetric() {
        let a = set(&[1, 5, 9, 11]);
        let b = set(&[2, 5, 9]);
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
    }

    #[test]
    fn overlap_coefficient_basics() {
        assert_eq!(overlap_coefficient(&set(&[1, 2]), &set(&[1, 2, 3, 4])), 1.0);
        assert_eq!(overlap_coefficient(&set(&[1]), &set(&[2])), 0.0);
        assert_eq!(overlap_coefficient::<u32>(&set(&[]), &set(&[])), 1.0);
        assert_eq!(overlap_coefficient(&set(&[]), &set(&[1])), 0.0);
    }

    #[test]
    fn intersection_sizes() {
        assert_eq!(intersection_size(&set(&[1, 2, 3]), &set(&[2, 3, 4])), 2);
        assert_eq!(intersection_size(&set(&[]), &set(&[1])), 0);
    }

    #[test]
    fn sorted_intersection_matches_hash_path() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[1, 2, 3], &[2, 3, 4]),
            (&[], &[1, 2]),
            (&[5], &[5]),
            (&[1, 3, 5, 7, 9], &[2, 4, 6, 8]),
            (&[1, 2, 3, 4], &[1, 2, 3, 4]),
        ];
        for &(a, b) in cases {
            assert_eq!(
                intersection_size_sorted(a, b),
                intersection_size(&set(a), &set(b)),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn sorted_jaccard_is_byte_identical_to_hash_jaccard() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[1, 2, 3], &[2, 3, 4]),
            (&[], &[1]),
            (&[1, 5, 9, 11], &[2, 5, 9]),
            (&[7], &[7]),
            (&[1, 2], &[3, 4]),
        ];
        for &(a, b) in cases {
            let hashed = jaccard(&set(a), &set(b));
            let sorted = jaccard_sorted(a, b);
            assert_eq!(
                hashed.to_bits(),
                sorted.to_bits(),
                "{a:?} vs {b:?}: {hashed} != {sorted}"
            );
        }
    }

    #[test]
    fn empty_set_convention_is_shared() {
        // 0/0 is *defined* as 1.0 (two empty sets are identical), in both the
        // hash-set and the sorted-slice family; one-sided emptiness is 0.0.
        assert_eq!(jaccard::<u32>(&set(&[]), &set(&[])), 1.0);
        assert_eq!(jaccard_sorted(&[], &[]), 1.0);
        assert_eq!(jaccard(&set(&[]), &set(&[1])), 0.0);
        assert_eq!(jaccard_sorted(&[], &[1]), 0.0);
        assert_eq!(jaccard_sorted(&[1], &[]), 0.0);
    }

    #[test]
    fn rbo_identical_lists() {
        let a = vec![1, 2, 3, 4, 5];
        assert!((rank_biased_overlap(&a, &a, 0.9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rbo_disjoint_lists() {
        let a = vec![1, 2, 3];
        let b = vec![4, 5, 6];
        assert!(rank_biased_overlap(&a, &b, 0.9) < 1e-9);
    }

    #[test]
    fn rbo_top_weighted() {
        // Agreement at the head is worth more than at the tail.
        let base = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let head_swap = vec![2, 1, 3, 4, 5, 6, 7, 8];
        let tail_swap = vec![1, 2, 3, 4, 5, 6, 8, 7];
        let rbo_head = rank_biased_overlap(&base, &head_swap, 0.9);
        let rbo_tail = rank_biased_overlap(&base, &tail_swap, 0.9);
        assert!(rbo_head < rbo_tail, "{rbo_head} !< {rbo_tail}");
    }

    #[test]
    fn rbo_bounds() {
        let a = vec![1, 2, 3, 9, 10];
        let b = vec![3, 2, 8, 1, 11];
        let v = rank_biased_overlap(&a, &b, 0.95);
        assert!((0.0..=1.0).contains(&v));
    }
}
