//! Logistic regression via iteratively reweighted least squares (IRLS).
//!
//! Table 3 of the paper models top-list inclusion (a binary outcome) against a
//! one-hot website-category predictor and reports odds ratios with Wald tests.
//! This module provides exactly that: a Newton/IRLS fit of
//! `logit P(y=1) = Xβ`, standard errors from the observed information matrix,
//! and per-coefficient Wald z statistics and p-values.

use crate::dist::StandardNormal;
use crate::linalg::{Cholesky, Matrix};
use crate::{Result, StatsError};

/// One fitted coefficient.
#[derive(Debug, Clone, Copy)]
pub struct Coefficient {
    /// Point estimate of β.
    pub estimate: f64,
    /// Standard error from the inverse Fisher information.
    pub std_error: f64,
    /// Wald statistic `β / se`.
    pub z: f64,
    /// Two-sided p-value of the Wald test.
    pub p_value: f64,
}

impl Coefficient {
    /// The odds ratio `exp(β)` — the effect size Table 3 reports.
    pub fn odds_ratio(&self) -> f64 {
        self.estimate.exp()
    }

    /// Wald confidence interval for the odds ratio at level `1 - alpha`.
    pub fn odds_ratio_ci(&self, alpha: f64) -> (f64, f64) {
        let zc = StandardNormal::inv_cdf(1.0 - alpha / 2.0);
        (
            (self.estimate - zc * self.std_error).exp(),
            (self.estimate + zc * self.std_error).exp(),
        )
    }
}

/// A fitted logistic-regression model.
#[derive(Debug, Clone)]
pub struct LogitFit {
    /// Per-column coefficients (the first column is conventionally the intercept).
    pub coefficients: Vec<Coefficient>,
    /// Attained log-likelihood.
    pub log_likelihood: f64,
    /// Number of IRLS iterations performed.
    pub iterations: usize,
    /// Number of observations.
    pub n: usize,
    /// Whether any coefficient hit the divergence guard (quasi-separation);
    /// such coefficients have unreliable standard errors.
    pub separation_suspected: bool,
}

/// Fit configuration.
#[derive(Debug, Clone, Copy)]
pub struct LogitOptions {
    /// Convergence tolerance on the max absolute coefficient change.
    pub tol: f64,
    /// Maximum IRLS iterations.
    pub max_iter: usize,
    /// Tiny ridge penalty added to the information matrix for stability.
    pub ridge: f64,
    /// Coefficient magnitude beyond which separation is suspected.
    pub divergence_guard: f64,
}

impl Default for LogitOptions {
    fn default() -> Self {
        LogitOptions {
            tol: 1e-10,
            max_iter: 60,
            ridge: 1e-9,
            divergence_guard: 30.0,
        }
    }
}

/// Numerically-stable logistic function.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Fits `logit P(y=1) = X·β` by IRLS.
///
/// `x` is the design matrix (include an intercept column of ones yourself, or
/// use [`fit_with_intercept`]); `y` holds 0/1 outcomes.
pub fn fit(x: &Matrix, y: &[f64], opts: LogitOptions) -> Result<LogitFit> {
    let n = x.rows();
    let p = x.cols();
    if n != y.len() {
        return Err(StatsError::LengthMismatch {
            left: n,
            right: y.len(),
        });
    }
    if n < p + 1 {
        return Err(StatsError::TooFewObservations { n, required: p + 1 });
    }
    // topple-lint: allow(float-eq): outcome labels must be exactly the values 0.0 or 1.0
    if y.iter().any(|&v| v != 0.0 && v != 1.0) {
        return Err(StatsError::DegenerateDesign("outcomes must be 0 or 1"));
    }
    // topple-lint: allow(float-eq): labels validated to be exact 0.0/1.0 above
    let ones = y.iter().filter(|&&v| v == 1.0).count();
    if ones == 0 || ones == n {
        return Err(StatsError::DegenerateDesign("outcomes are all one class"));
    }

    let mut beta = vec![0.0; p];
    let mut iterations = 0;
    let mut converged = false;
    let mut w = vec![0.0; n];
    let mut z = vec![0.0; n];
    while iterations < opts.max_iter {
        iterations += 1;
        let eta = x.mat_vec(&beta);
        for i in 0..n {
            let mu = sigmoid(eta[i]);
            // Clamp weights away from zero so the working response stays finite.
            let wi = (mu * (1.0 - mu)).max(1e-10);
            w[i] = wi;
            z[i] = eta[i] + (y[i] - mu) / wi;
        }
        let mut info = x.xtwx(&w);
        for j in 0..p {
            info[(j, j)] += opts.ridge;
        }
        let rhs = x.xtwz(&w, &z);
        let ch = Cholesky::new(&info)?;
        let new_beta = ch.solve(&rhs);
        let delta = new_beta
            .iter()
            .zip(&beta)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        beta = new_beta;
        if delta < opts.tol {
            converged = true;
            break;
        }
    }
    if !converged {
        // A fit that stopped on max_iter with small-but-not-tiny steps is still
        // usable when separation pushed a coefficient to the guard; flag it.
        let diverged = beta.iter().any(|b| b.abs() > opts.divergence_guard);
        if !diverged {
            return Err(StatsError::DidNotConverge { iterations });
        }
    }

    // Final information matrix at the optimum for standard errors.
    let eta = x.mat_vec(&beta);
    for i in 0..n {
        let mu = sigmoid(eta[i]);
        w[i] = (mu * (1.0 - mu)).max(1e-10);
    }
    let mut info = x.xtwx(&w);
    for j in 0..p {
        info[(j, j)] += opts.ridge;
    }
    let cov = Cholesky::new(&info)?.inverse();

    let separation_suspected = beta.iter().any(|b| b.abs() > opts.divergence_guard);
    let coefficients = beta
        .iter()
        .enumerate()
        .map(|(j, &b)| {
            let se = cov[(j, j)].max(0.0).sqrt();
            let zstat = if se > 0.0 { b / se } else { f64::INFINITY };
            Coefficient {
                estimate: b,
                std_error: se,
                z: zstat,
                p_value: StandardNormal::two_sided_p(zstat),
            }
        })
        .collect();

    let mut ll = 0.0;
    for i in 0..n {
        let mu = sigmoid(eta[i]).clamp(1e-12, 1.0 - 1e-12);
        ll += y[i] * mu.ln() + (1.0 - y[i]) * (1.0 - mu).ln();
    }

    Ok(LogitFit {
        coefficients,
        log_likelihood: ll,
        iterations,
        n,
        separation_suspected,
    })
}

/// Convenience: prepends an intercept column of ones to `predictors` and fits.
///
/// The returned coefficient 0 is the intercept; coefficient `j+1` corresponds
/// to `predictors[j]`.
pub fn fit_with_intercept(
    predictors: &[Vec<f64>],
    y: &[f64],
    opts: LogitOptions,
) -> Result<LogitFit> {
    let n = y.len();
    for col in predictors {
        if col.len() != n {
            return Err(StatsError::LengthMismatch {
                left: col.len(),
                right: n,
            });
        }
    }
    let p = predictors.len() + 1;
    let mut x = Matrix::zeros(n, p);
    for i in 0..n {
        x[(i, 0)] = 1.0;
        for (j, col) in predictors.iter().enumerate() {
            x[(i, j + 1)] = col[i];
        }
    }
    fit(&x, y, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a single binary-predictor dataset from a 2×2 contingency table.
    fn from_table(n00: usize, n01: usize, n10: usize, n11: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // nXY: predictor = X, outcome = Y.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (x, y, n) in [
            (0.0, 0.0, n00),
            (0.0, 1.0, n01),
            (1.0, 0.0, n10),
            (1.0, 1.0, n11),
        ] {
            for _ in 0..n {
                xs.push(x);
                ys.push(y);
            }
        }
        (vec![xs], ys)
    }

    #[test]
    fn recovers_odds_ratio_from_contingency_table() {
        // OR = (n11·n00)/(n10·n01) = (30·60)/(20·40) = 2.25.
        let (x, y) = from_table(60, 40, 20, 30);
        let fit = fit_with_intercept(&x, &y, LogitOptions::default()).unwrap();
        let or = fit.coefficients[1].odds_ratio();
        assert!((or - 2.25).abs() < 1e-6, "odds ratio {or}");
        // Intercept: log odds of outcome at x=0 -> ln(40/60).
        assert!((fit.coefficients[0].estimate - (40.0f64 / 60.0).ln()).abs() < 1e-6);
        assert!(!fit.separation_suspected);
    }

    #[test]
    fn wald_se_matches_contingency_formula() {
        // For a 2x2 table, se(log OR) = sqrt(1/a + 1/b + 1/c + 1/d).
        let (x, y) = from_table(50, 35, 25, 40);
        let fit = fit_with_intercept(&x, &y, LogitOptions::default()).unwrap();
        let se_expected = (1.0f64 / 50.0 + 1.0 / 35.0 + 1.0 / 25.0 + 1.0 / 40.0).sqrt();
        assert!((fit.coefficients[1].std_error - se_expected).abs() < 1e-6);
    }

    #[test]
    fn null_effect_is_insignificant() {
        // Balanced table: OR = 1, p should be large.
        let (x, y) = from_table(50, 50, 50, 50);
        let fit = fit_with_intercept(&x, &y, LogitOptions::default()).unwrap();
        assert!(fit.coefficients[1].estimate.abs() < 1e-8);
        assert!(fit.coefficients[1].p_value > 0.99);
    }

    #[test]
    fn strong_effect_is_significant() {
        let (x, y) = from_table(90, 10, 10, 90);
        let fit = fit_with_intercept(&x, &y, LogitOptions::default()).unwrap();
        assert!(fit.coefficients[1].p_value < 1e-6);
        assert!(fit.coefficients[1].odds_ratio() > 50.0);
    }

    #[test]
    fn two_predictor_recovery() {
        // Simulate from known betas with a deterministic LCG and check recovery.
        let mut state = 7u64;
        let mut unif = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 20_000;
        let beta = [-0.5, 1.2, -0.8];
        let mut x1 = Vec::with_capacity(n);
        let mut x2 = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = if unif() < 0.4 { 1.0 } else { 0.0 };
            let b = unif() * 2.0 - 1.0;
            let p = sigmoid(beta[0] + beta[1] * a + beta[2] * b);
            y.push(if unif() < p { 1.0 } else { 0.0 });
            x1.push(a);
            x2.push(b);
        }
        let fit = fit_with_intercept(&[x1, x2], &y, LogitOptions::default()).unwrap();
        for (j, b) in beta.iter().enumerate() {
            let est = fit.coefficients[j].estimate;
            assert!((est - b).abs() < 0.12, "coef {j}: {est} vs {b}");
        }
    }

    #[test]
    fn detects_degenerate_outcomes() {
        let x = vec![vec![0.0, 1.0, 0.0, 1.0]];
        assert!(matches!(
            fit_with_intercept(&x, &[1.0, 1.0, 1.0, 1.0], LogitOptions::default()),
            Err(StatsError::DegenerateDesign(_))
        ));
        assert!(matches!(
            fit_with_intercept(&x, &[0.0, 1.0, 2.0, 1.0], LogitOptions::default()),
            Err(StatsError::DegenerateDesign(_))
        ));
    }

    #[test]
    fn flags_complete_separation() {
        // Predictor perfectly separates outcomes.
        let (x, y) = from_table(50, 0, 0, 50);
        let fit = fit_with_intercept(&x, &y, LogitOptions::default()).unwrap();
        assert!(fit.separation_suspected);
    }

    #[test]
    fn sigmoid_stability() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(800.0) <= 1.0 && sigmoid(800.0) > 0.999);
        assert!(sigmoid(-800.0) >= 0.0 && sigmoid(-800.0) < 1e-10);
    }

    #[test]
    fn odds_ratio_ci_contains_estimate() {
        let (x, y) = from_table(60, 40, 20, 30);
        let fit = fit_with_intercept(&x, &y, LogitOptions::default()).unwrap();
        let c = &fit.coefficients[1];
        let (lo, hi) = c.odds_ratio_ci(0.05);
        assert!(lo < c.odds_ratio() && c.odds_ratio() < hi);
        assert!(
            lo > 1.0,
            "effect should be significantly positive at 5%: lo={lo}"
        );
    }
}
