//! Checked numeric casts.
//!
//! Bare `as` casts to integer types silently truncate or wrap; in the
//! statistics kernels that is exactly where a rank or an index diverges
//! without a test noticing. Every cast in this crate goes through one of
//! these helpers, which either saturate explicitly or clamp against a known
//! bound — the only `as` casts live here, each individually justified.

/// `usize` → `u64`. Lossless on every supported platform (usize ≤ 64 bits),
/// expressed as a saturating conversion so no platform assumption is silent.
#[inline]
pub fn u64_from_usize(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// `u64` → `usize`, saturating at `usize::MAX`. Callers reduce the value
/// below a `usize` bound first (e.g. `x % u64_from_usize(n)`), making the
/// saturation unreachable in practice but explicit in form.
#[inline]
pub fn usize_from_u64(x: u64) -> usize {
    usize::try_from(x).unwrap_or(usize::MAX)
}

/// `usize` → `u32`, saturating. Ranks beyond `u32::MAX` cannot occur (list
/// lengths are bounded by the simulated site count) but are pinned rather
/// than wrapped if they ever do.
#[inline]
pub fn u32_from_usize(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// `usize` → `i32`, saturating (for `f64::powi` exponents and the like).
#[inline]
pub fn i32_from_usize(n: usize) -> i32 {
    i32::try_from(n).unwrap_or(i32::MAX)
}

/// `u32` → `usize`. Lossless on every supported platform (usize ≥ 32 bits),
/// expressed as a saturating conversion so no platform assumption is silent.
#[inline]
pub fn usize_from_u32(x: u32) -> usize {
    usize::try_from(x).unwrap_or(usize::MAX)
}

/// `u32` → `i32`, saturating (calendar components and other small fields).
#[inline]
pub fn i32_from_u32(x: u32) -> i32 {
    i32::try_from(x).unwrap_or(i32::MAX)
}

/// `u64` → `u16`, saturating. Callers bound the value structurally (a
/// `.min(..)` cap or a modulus below 2^16); saturation pins the impossible
/// tail instead of wrapping it.
#[inline]
pub fn u16_from_u64(x: u64) -> u16 {
    u16::try_from(x).unwrap_or(u16::MAX)
}

/// `usize` → `u8`, saturating (per-site host indices and similar tiny
/// cardinalities).
#[inline]
pub fn u8_from_usize(n: usize) -> u8 {
    u8::try_from(n).unwrap_or(u8::MAX)
}

/// `f64` → `u16`, truncating toward zero and clamping to the type's range
/// (NaN → 0). Matches Rust's saturating float-to-int `as` semantics, but
/// spells the edge handling out.
#[inline]
pub fn u16_from_f64(x: f64) -> u16 {
    if x.is_nan() || x <= 0.0 {
        return 0;
    }
    if x >= f64::from(u16::MAX) {
        return u16::MAX;
    }
    // topple-lint: allow(lossy-cast): range-checked above; truncation toward zero is the intent
    x as u16
}

/// Floors a non-negative float to an index clamped into `0..len`.
///
/// NaN and negative inputs clamp to 0; anything at or beyond `len - 1`
/// clamps to the last index. `len` must be non-zero.
#[inline]
pub fn floor_index(x: f64, len: usize) -> usize {
    debug_assert!(len > 0, "floor_index on an empty slice");
    let last = len.saturating_sub(1);
    if x.is_nan() || x <= 0.0 {
        return 0;
    }
    let f = x.floor();
    if f >= last as f64 {
        return last;
    }
    // topple-lint: allow(lossy-cast): f is floored, non-negative and range-checked against len above
    f as usize
}

/// Ceils a non-negative float to an index clamped into `0..len`.
#[inline]
pub fn ceil_index(x: f64, len: usize) -> usize {
    debug_assert!(len > 0, "ceil_index on an empty slice");
    let last = len.saturating_sub(1);
    if x.is_nan() || x <= 0.0 {
        return 0;
    }
    let c = x.ceil();
    if c >= last as f64 {
        return last;
    }
    // topple-lint: allow(lossy-cast): c is a non-negative whole number range-checked against len above
    c as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_roundtrips() {
        assert_eq!(u64_from_usize(0), 0);
        assert_eq!(u64_from_usize(usize::MAX) as u128, usize::MAX as u128);
        assert_eq!(usize_from_u64(17), 17);
        assert_eq!(u32_from_usize(9), 9);
        assert_eq!(u32_from_usize(usize::MAX), u32::MAX);
        assert_eq!(i32_from_usize(3), 3);
        assert_eq!(i32_from_usize(usize::MAX), i32::MAX);
        assert_eq!(usize_from_u32(u32::MAX), u32::MAX as usize);
        assert_eq!(i32_from_u32(12), 12);
        assert_eq!(i32_from_u32(u32::MAX), i32::MAX);
        assert_eq!(u16_from_u64(3600), 3600);
        assert_eq!(u16_from_u64(1 << 20), u16::MAX);
        assert_eq!(u8_from_usize(3), 3);
        assert_eq!(u8_from_usize(999), u8::MAX);
        assert_eq!(u16_from_f64(3599.9), 3599);
        assert_eq!(u16_from_f64(-1.0), 0);
        assert_eq!(u16_from_f64(f64::NAN), 0);
        assert_eq!(u16_from_f64(1e9), u16::MAX);
    }

    #[test]
    fn float_indexing_clamps() {
        assert_eq!(floor_index(2.9, 10), 2);
        assert_eq!(floor_index(-1.0, 10), 0);
        assert_eq!(floor_index(f64::NAN, 10), 0);
        assert_eq!(floor_index(99.0, 10), 9);
        assert_eq!(floor_index(9.0, 10), 9);
        assert_eq!(ceil_index(2.1, 10), 3);
        assert_eq!(ceil_index(0.0, 10), 0);
        assert_eq!(ceil_index(12.0, 4), 3);
    }
}
