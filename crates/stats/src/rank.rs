//! Rank transformation with average-rank tie handling.

use crate::{ensure_finite, Result};

/// Assigns 1-based ranks to `values`, giving tied values the average of the
/// rank positions they span (the "fractional ranking" used by Spearman's ρ).
///
/// ```
/// use topple_stats::rank::average_ranks;
///
/// let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]).unwrap();
/// assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn average_ranks(values: &[f64]) -> Result<Vec<f64>> {
    ensure_finite(values)?;
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        // Find the extent of the tie group.
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average of 1-based positions i+1 ..= j+1.
        let avg = (i + j + 2) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    Ok(ranks)
}

/// Counts, for each tie group, the number of tied values `t`, returning the
/// tie-correction terms `Σ t³ - t` used by tie-adjusted Spearman formulas.
pub fn tie_correction(values: &[f64]) -> Result<f64> {
    ensure_finite(values)?;
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mut total = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        total += t * t * t - t;
        i = j + 1;
    }
    Ok(total)
}

/// Ranks where the *smallest* value receives rank 1 and ties share the
/// *minimum* rank of their group ("competition ranking", `1224` style).
///
/// This is how list publishers assign ranks after sorting by a score, and is
/// used when reconstructing top lists from vantage counters.
pub fn competition_ranks(values: &[f64]) -> Result<Vec<u32>> {
    ensure_finite(values)?;
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0u32; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        for &k in &idx[i..=j] {
            ranks[k] = crate::cast::u32_from_usize(i + 1);
        }
        i = j + 1;
    }
    Ok(ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StatsError;

    #[test]
    fn no_ties() {
        let r = average_ranks(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn all_tied() {
        let r = average_ranks(&[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn mixed_ties() {
        let r = average_ranks(&[1.0, 2.0, 2.0, 2.0, 7.0]).unwrap();
        assert_eq!(r, vec![1.0, 3.0, 3.0, 3.0, 5.0]);
    }

    #[test]
    fn rank_sum_invariant() {
        // Σ ranks = n(n+1)/2 regardless of ties.
        let v = [4.0, 4.0, 1.0, 9.0, 9.0, 9.0, 2.0];
        let r = average_ranks(&v).unwrap();
        let n = v.len() as f64;
        assert!((r.iter().sum::<f64>() - n * (n + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_nan() {
        assert_eq!(average_ranks(&[1.0, f64::NAN]), Err(StatsError::NonFinite));
        assert_eq!(tie_correction(&[f64::INFINITY]), Err(StatsError::NonFinite));
    }

    #[test]
    fn tie_correction_values() {
        // One group of 3 ties: 3³-3 = 24; one group of 2: 2³-2 = 6.
        assert_eq!(
            tie_correction(&[1.0, 2.0, 2.0, 2.0, 3.0, 3.0]).unwrap(),
            30.0
        );
        assert_eq!(tie_correction(&[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn competition_rank_style() {
        let r = competition_ranks(&[10.0, 20.0, 20.0, 30.0]).unwrap();
        assert_eq!(r, vec![1, 2, 2, 4]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(average_ranks(&[]).unwrap(), Vec::<f64>::new());
        assert_eq!(competition_ranks(&[]).unwrap(), Vec::<u32>::new());
        assert_eq!(tie_correction(&[]).unwrap(), 0.0);
    }
}
