//! Time-series helpers for the temporal-stability analysis (Figure 3).
//!
//! The paper observes that list/metric correlations are "somewhat periodic,
//! with Jaccard indices best on weekdays and Spearman correlations best on
//! weekends". These helpers quantify that: lag autocorrelation picks out the
//! weekly cycle, and the weekday/weekend contrast measures its direction.

use crate::{ensure_finite, Result, StatsError};

/// Sample autocorrelation of `xs` at `lag`, normalized by the lag-0 variance.
pub fn autocorrelation(xs: &[f64], lag: usize) -> Result<f64> {
    ensure_finite(xs)?;
    let n = xs.len();
    if n < lag + 2 {
        return Err(StatsError::TooFewObservations {
            n,
            required: lag + 2,
        });
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let denom: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
    // A sum of squares: zero exactly when the series is constant.
    if denom <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let num: f64 = (0..n - lag)
        .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
        .sum();
    Ok(num / denom)
}

/// Detects the dominant period in `xs` by scanning lags `2..=max_lag` for the
/// largest autocorrelation; returns `(lag, autocorrelation)`.
pub fn dominant_period(xs: &[f64], max_lag: usize) -> Result<(usize, f64)> {
    let mut best = (0usize, f64::NEG_INFINITY);
    for lag in 2..=max_lag {
        let ac = autocorrelation(xs, lag)?;
        if ac > best.1 {
            best = (lag, ac);
        }
    }
    if best.0 == 0 {
        return Err(StatsError::TooFewObservations {
            n: xs.len(),
            required: 4,
        });
    }
    Ok(best)
}

/// Summary of a weekday/weekend split of a daily series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeekdaySplit {
    /// Mean over weekday samples.
    pub weekday_mean: f64,
    /// Mean over weekend samples.
    pub weekend_mean: f64,
}

impl WeekdaySplit {
    /// Positive when the series is higher on weekdays.
    pub fn weekday_advantage(&self) -> f64 {
        self.weekday_mean - self.weekend_mean
    }
}

/// Splits a daily series by a weekday predicate (`is_weekend[i]` marks day `i`).
pub fn weekday_split(xs: &[f64], is_weekend: &[bool]) -> Result<WeekdaySplit> {
    ensure_finite(xs)?;
    if xs.len() != is_weekend.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: is_weekend.len(),
        });
    }
    let (mut wd_sum, mut wd_n, mut we_sum, mut we_n) = (0.0, 0usize, 0.0, 0usize);
    for (&x, &we) in xs.iter().zip(is_weekend) {
        if we {
            we_sum += x;
            we_n += 1;
        } else {
            wd_sum += x;
            wd_n += 1;
        }
    }
    if wd_n == 0 || we_n == 0 {
        return Err(StatsError::TooFewObservations {
            n: xs.len(),
            required: 2,
        });
    }
    Ok(WeekdaySplit {
        weekday_mean: wd_sum / wd_n as f64,
        weekend_mean: we_sum / we_n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autocorrelation_of_periodic_signal() {
        // Period-7 square-ish wave over 28 days.
        let xs: Vec<f64> = (0..28).map(|i| if i % 7 < 5 { 1.0 } else { 0.0 }).collect();
        let ac7 = autocorrelation(&xs, 7).unwrap();
        let ac3 = autocorrelation(&xs, 3).unwrap();
        assert!(ac7 > 0.5, "lag-7 should dominate: {ac7}");
        assert!(ac7 > ac3);
        let (lag, _) = dominant_period(&xs, 10).unwrap();
        assert_eq!(lag, 7);
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert!((autocorrelation(&xs, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_series_has_zero_variance() {
        let xs = [2.0; 10];
        assert_eq!(autocorrelation(&xs, 1), Err(StatsError::ZeroVariance));
    }

    #[test]
    fn weekday_split_directions() {
        let xs = [1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0]; // Mon..Fri=1, Sat/Sun=0
        let we = [false, false, false, false, false, true, true];
        let split = weekday_split(&xs, &we).unwrap();
        assert_eq!(split.weekday_mean, 1.0);
        assert_eq!(split.weekend_mean, 0.0);
        assert_eq!(split.weekday_advantage(), 1.0);
    }

    #[test]
    fn weekday_split_needs_both_classes() {
        assert!(weekday_split(&[1.0, 2.0], &[false, false]).is_err());
    }
}
