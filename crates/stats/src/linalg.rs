//! Minimal dense linear algebra: just enough for IRLS logistic regression.
//!
//! Matrices are small (p × p where p is the number of regression predictors,
//! ~23 for the paper's category model), so a simple row-major `Vec<f64>` with
//! Cholesky factorization is both sufficient and cache-friendly.

use crate::{Result, StatsError};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from rows; panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.concat(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A·x`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Transposed matrix-vector product `Aᵀ·x`.
    pub fn t_mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, x.len(), "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * xi;
            }
        }
        out
    }

    /// Computes `AᵀWA` where `W = diag(w)`; the IRLS normal-equation matrix.
    pub fn xtwx(&self, w: &[f64]) -> Matrix {
        assert_eq!(self.rows, w.len(), "dimension mismatch");
        let p = self.cols;
        let mut out = Matrix::zeros(p, p);
        for (i, &wi) in w.iter().enumerate() {
            let row = &self.data[i * p..(i + 1) * p];
            // Skip-zero fast paths: exact IEEE zero contributes nothing.
            if wi.abs() <= 0.0 {
                continue;
            }
            for a in 0..p {
                let wa = wi * row[a];
                if wa.abs() <= 0.0 {
                    continue;
                }
                for b in a..p {
                    out[(a, b)] += wa * row[b];
                }
            }
        }
        // Mirror the upper triangle.
        for a in 0..p {
            for b in 0..a {
                out[(a, b)] = out[(b, a)];
            }
        }
        out
    }

    /// Computes `AᵀWz` where `W = diag(w)`; the IRLS normal-equation vector.
    pub fn xtwz(&self, w: &[f64], z: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, w.len());
        assert_eq!(self.rows, z.len());
        let p = self.cols;
        let mut out = vec![0.0; p];
        for i in 0..self.rows {
            let row = &self.data[i * p..(i + 1) * p];
            let wz = w[i] * z[i];
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * wz;
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Cholesky factorization `A = LLᵀ` of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes `a`; errors when `a` is not (numerically) positive definite.
    pub fn new(a: &Matrix) -> Result<Self> {
        assert_eq!(a.rows, a.cols, "matrix must be square");
        let n = a.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(StatsError::SingularMatrix);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A·x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows;
        assert_eq!(b.len(), n);
        // Forward substitution: L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l[(i, k)] * yk;
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back substitution: Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[(k, i)] * xk;
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Computes `A⁻¹` by solving against the identity columns.
    pub fn inverse(&self) -> Matrix {
        let n = self.l.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn mat_vec_products() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(a.mat_vec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.t_mat_vec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn xtwx_matches_manual() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0, -1.0]]);
        let w = [2.0, 3.0];
        let m = x.xtwx(&w);
        // XtWX = [[2+3, 4-3], [4-3, 8+3]] = [[5, 1], [1, 11]]
        close(m[(0, 0)], 5.0);
        close(m[(0, 1)], 1.0);
        close(m[(1, 0)], 1.0);
        close(m[(1, 1)], 11.0);
        let z = [1.0, 2.0];
        let v = x.xtwz(&w, &z);
        // XtWz = [2*1 + 3*2, 2*2*1 + 3*(-1)*2] = [8, -2]
        close(v[0], 8.0);
        close(v[1], -2.0);
    }

    #[test]
    fn cholesky_solve_known_system() {
        // A = [[4, 2], [2, 3]], b = [6, 5] -> x = [1, 1].
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&[6.0, 5.0]);
        close(x[0], 1.0);
        close(x[1], 1.0);
    }

    #[test]
    fn cholesky_inverse_roundtrip() {
        let a = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ]);
        let inv = Cholesky::new(&a).unwrap().inverse();
        // A · A⁻¹ = I.
        for i in 0..3 {
            let col: Vec<f64> = (0..3).map(|j| inv[(j, i)]).collect();
            let prod = a.mat_vec(&col);
            for (j, v) in prod.iter().enumerate() {
                close(*v, if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(Cholesky::new(&a), Err(StatsError::SingularMatrix)));
    }

    #[test]
    fn identity_matrix() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3.mat_vec(&[4.0, 5.0, 6.0]), vec![4.0, 5.0, 6.0]);
    }
}
