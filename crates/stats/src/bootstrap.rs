//! Nonparametric bootstrap confidence intervals.
//!
//! The paper reports point estimates of Jaccard and Spearman without
//! uncertainty; with a simulator we can afford resampling. This module
//! implements the percentile bootstrap over a caller-supplied statistic,
//! plus a convenience resampler for paired data. Used by the framework's
//! uncertainty extension (and handy on its own).

use crate::{Result, StatsError};

/// A deterministic SplitMix64 stream — the bootstrap must not depend on the
/// simulation's RNG crates, and reproducibility matters more than quality
/// here.
#[derive(Debug, Clone)]
pub struct BootstrapRng {
    state: u64,
}

impl BootstrapRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        BootstrapRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        crate::cast::usize_from_u64(self.next_u64() % crate::cast::u64_from_usize(n))
    }
}

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Number of bootstrap replicates that produced a finite statistic.
    pub replicates: usize,
}

/// Percentile bootstrap of a statistic over index resamples.
///
/// `statistic` receives a resampled index multiset of `0..n` and returns the
/// statistic value (or `None` when undefined on that resample, e.g. zero
/// variance); undefined replicates are skipped.
pub fn bootstrap_ci<F>(
    n: usize,
    replicates: usize,
    alpha: f64,
    seed: u64,
    mut statistic: F,
) -> Result<BootstrapCi>
where
    F: FnMut(&[usize]) -> Option<f64>,
{
    if n < 2 {
        return Err(StatsError::TooFewObservations { n, required: 2 });
    }
    assert!((0.0..1.0).contains(&alpha), "alpha must be in (0,1)");
    let identity: Vec<usize> = (0..n).collect();
    let estimate = statistic(&identity).ok_or(StatsError::ZeroVariance)?;

    let mut rng = BootstrapRng::new(seed);
    let mut values = Vec::with_capacity(replicates);
    let mut idx = vec![0usize; n];
    for _ in 0..replicates {
        for v in idx.iter_mut() {
            *v = rng.index(n);
        }
        if let Some(v) = statistic(&idx) {
            if v.is_finite() {
                values.push(v);
            }
        }
    }
    if values.len() < replicates / 2 {
        return Err(StatsError::DidNotConverge {
            iterations: values.len(),
        });
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let lo_idx = crate::cast::floor_index((alpha / 2.0) * values.len() as f64, values.len());
    let hi_idx = crate::cast::floor_index((1.0 - alpha / 2.0) * values.len() as f64, values.len());
    Ok(BootstrapCi {
        estimate,
        lo: values[lo_idx],
        hi: values[hi_idx],
        replicates: values.len(),
    })
}

/// Bootstrap CI for the mean — the simplest useful instantiation and the
/// reference case for tests.
pub fn mean_ci(xs: &[f64], replicates: usize, alpha: f64, seed: u64) -> Result<BootstrapCi> {
    crate::ensure_finite(xs)?;
    bootstrap_ci(xs.len(), replicates, alpha, seed, |idx| {
        Some(idx.iter().map(|&i| xs[i]).sum::<f64>() / idx.len() as f64)
    })
}

/// Bootstrap CI for Spearman's ρ over paired observations.
pub fn spearman_ci(
    x: &[f64],
    y: &[f64],
    replicates: usize,
    alpha: f64,
    seed: u64,
) -> Result<BootstrapCi> {
    crate::ensure_same_len(x, y)?;
    bootstrap_ci(x.len(), replicates, alpha, seed, |idx| {
        let xs: Vec<f64> = idx.iter().map(|&i| x[i]).collect();
        let ys: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
        crate::corr::spearman(&xs, &ys).ok().map(|s| s.rho)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_covers_the_mean() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 13) as f64).collect();
        let true_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let ci = mean_ci(&xs, 500, 0.05, 42).unwrap();
        assert!((ci.estimate - true_mean).abs() < 1e-12);
        assert!(ci.lo <= true_mean && true_mean <= ci.hi);
        assert!(ci.hi - ci.lo < 2.0, "CI too wide: [{}, {}]", ci.lo, ci.hi);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
        let large: Vec<f64> = (0..3000).map(|i| (i % 7) as f64).collect();
        let ci_small = mean_ci(&small, 400, 0.05, 1).unwrap();
        let ci_large = mean_ci(&large, 400, 0.05, 1).unwrap();
        assert!(ci_large.hi - ci_large.lo < ci_small.hi - ci_small.lo);
    }

    #[test]
    fn deterministic_in_seed() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let a = mean_ci(&xs, 300, 0.05, 7).unwrap();
        let b = mean_ci(&xs, 300, 0.05, 7).unwrap();
        assert_eq!(a, b);
        let c = mean_ci(&xs, 300, 0.05, 8).unwrap();
        assert!(
            a.lo != c.lo || a.hi != c.hi,
            "different seeds should differ"
        );
    }

    #[test]
    fn spearman_ci_brackets_strong_correlation() {
        let x: Vec<f64> = (0..150).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v + ((v * 7919.0) % 13.0)).collect();
        let ci = spearman_ci(&x, &y, 400, 0.05, 3).unwrap();
        assert!(ci.estimate > 0.9);
        assert!(ci.lo > 0.8 && ci.hi <= 1.0 + 1e-12);
    }

    #[test]
    fn rejects_tiny_samples() {
        assert!(mean_ci(&[1.0], 100, 0.05, 1).is_err());
    }
}
