//! Descriptive statistics.

use crate::{ensure_finite, Result, StatsError};

/// Arithmetic mean; errors on empty or non-finite input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    ensure_finite(xs)?;
    if xs.is_empty() {
        return Err(StatsError::TooFewObservations { n: 0, required: 1 });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (n-1 denominator).
pub fn variance(xs: &[f64]) -> Result<f64> {
    ensure_finite(xs)?;
    let n = xs.len();
    if n < 2 {
        return Err(StatsError::TooFewObservations { n, required: 2 });
    }
    let m = xs.iter().sum::<f64>() / n as f64;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n as f64 - 1.0))
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    variance(xs).map(f64::sqrt)
}

/// Linear-interpolated quantile `q ∈ \[0, 1\]` (type-7, the R/NumPy default).
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    ensure_finite(xs)?;
    if xs.is_empty() {
        return Err(StatsError::TooFewObservations { n: 0, required: 1 });
    }
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let h = q * (sorted.len() as f64 - 1.0);
    let lo = crate::cast::floor_index(h, sorted.len());
    let hi = crate::cast::ceil_index(h, sorted.len());
    // topple-lint: allow(float-eq): lo and hi are usize indices, not floats
    if lo == hi {
        return Ok(sorted[lo]);
    }
    let frac = h - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Minimum and maximum of a non-empty sample.
pub fn min_max(xs: &[f64]) -> Result<(f64, f64)> {
    ensure_finite(xs)?;
    if xs.is_empty() {
        return Err(StatsError::TooFewObservations { n: 0, required: 1 });
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Ok((lo, hi))
}

/// Geometric mean of strictly positive values.
pub fn geometric_mean(xs: &[f64]) -> Result<f64> {
    ensure_finite(xs)?;
    if xs.is_empty() {
        return Err(StatsError::TooFewObservations { n: 0, required: 1 });
    }
    if xs.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::DegenerateDesign(
            "geometric mean requires positive values",
        ));
    }
    Ok((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < 1e-12);
        // Sample variance with n-1: Σ(x-5)² = 32; 32/7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_type7() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
    }

    #[test]
    fn min_max_works() {
        assert_eq!(min_max(&[3.0, -1.0, 7.0]).unwrap(), (-1.0, 7.0));
    }

    #[test]
    fn geometric_mean_reference() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
    }

    #[test]
    fn empty_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(quantile(&[], 0.5).is_err());
        assert!(min_max(&[]).is_err());
    }
}
