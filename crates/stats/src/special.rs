//! Special functions: log-gamma, regularized incomplete beta and gamma, erf.
//!
//! Implementations follow the classical series/continued-fraction forms
//! (Lanczos for `ln_gamma`, modified Lentz for the beta continued fraction),
//! giving ~1e-13 relative accuracy over the parameter ranges exercised by the
//! distributions in [`crate::dist`].

/// Natural log of the gamma function for `x > 0` (Lanczos approximation, g=7).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9 (Godfrey / Numerical Recipes style).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)` for `a > 0`, `x ≥ 0`.
pub fn reg_inc_gamma(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation converges quickly here.
        gamma_series(a, x)
    } else {
        // Continued fraction for the upper function, complemented.
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Series expansion of P(a, x).
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction for Q(a, x) = 1 - P(a, x), via modified Lentz.
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`, `0 ≤ x ≤ 1`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0 && (0.0..=1.0).contains(&x));
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cont_frac(a, b, x) / a
    } else {
        1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Error function, via the regularized incomplete gamma: `erf(x) = P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x.abs() <= 0.0 {
        // Exactly zero (covers -0.0).
        return 0.0;
    }
    let v = reg_inc_gamma(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// Complementary error function `1 - erf(x)` with better accuracy in the tail.
pub fn erfc(x: f64) -> f64 {
    if x <= 0.0 {
        return 1.0 + erf(-x);
    }
    // For positive x, use the upper incomplete gamma directly.
    if x * x < 1.5 {
        1.0 - erf(x)
    } else {
        gamma_cont_frac(0.5, x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-12);
        close(ln_gamma(11.0), 3_628_800f64.ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(3/2) = sqrt(π)/2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn inc_gamma_reference_values() {
        // P(1, x) = 1 - e^{-x}
        for x in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            close(reg_inc_gamma(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        // P(a, 0) = 0, P(a, inf) -> 1
        assert_eq!(reg_inc_gamma(3.0, 0.0), 0.0);
        close(reg_inc_gamma(3.0, 100.0), 1.0, 1e-12);
    }

    #[test]
    fn inc_beta_reference_values() {
        // I_x(1, 1) = x
        for x in [0.0, 0.25, 0.5, 0.75, 1.0] {
            close(reg_inc_beta(1.0, 1.0, x), x, 1e-12);
        }
        // I_x(2, 2) = x^2 (3 - 2x)
        for x in [0.1, 0.3, 0.6, 0.9] {
            close(reg_inc_beta(2.0, 2.0, x), x * x * (3.0 - 2.0 * x), 1e-12);
        }
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a)
        close(
            reg_inc_beta(2.5, 3.5, 0.3),
            1.0 - reg_inc_beta(3.5, 2.5, 0.7),
            1e-12,
        );
    }

    #[test]
    fn erf_reference_values() {
        // Values from Abramowitz & Stegun table 7.1.
        close(erf(0.5), 0.520_499_877_8, 1e-9);
        close(erf(1.0), 0.842_700_792_9, 1e-9);
        close(erf(2.0), 0.995_322_265_0, 1e-9);
        close(erf(-1.0), -0.842_700_792_9, 1e-9);
        assert_eq!(erf(0.0), 0.0);
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) ≈ 2.209e-5; the complemented series would lose precision.
        close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-9);
        close(erfc(1.0), 1.0 - 0.842_700_792_9, 1e-9);
        close(erfc(-1.0), 1.0 + 0.842_700_792_9, 1e-9);
    }
}
