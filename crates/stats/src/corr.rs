//! Correlation coefficients: Pearson, Spearman (with p-values), Kendall τ-b.

use crate::dist::StudentsT;
use crate::rank::average_ranks;
use crate::{ensure_finite, ensure_same_len, Result, StatsError};

/// Result of a Spearman rank-correlation test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spearman {
    /// The correlation coefficient ρ ∈ [-1, 1].
    pub rho: f64,
    /// Two-sided p-value from the t-approximation (exact only asymptotically).
    pub p_value: f64,
    /// Number of paired observations.
    pub n: usize,
}

/// Pearson product-moment correlation of two equal-length samples.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    ensure_same_len(x, y)?;
    ensure_finite(x)?;
    ensure_finite(y)?;
    let n = x.len();
    if n < 2 {
        return Err(StatsError::TooFewObservations { n, required: 2 });
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    // Sums of squares are non-negative, so `<= 0.0` is exactly the
    // zero-variance case without an exact float equality.
    if sxx <= 0.0 || syy <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Spearman's rank correlation: Pearson correlation of the average ranks, with
/// a two-sided p-value from `t = ρ √((n-2)/(1-ρ²))` on `n-2` degrees of freedom.
///
/// This is the tie-correct formulation (ranking first, then Pearson) rather
/// than the no-ties shortcut `1 - 6Σd²/(n(n²-1))`.
pub fn spearman(x: &[f64], y: &[f64]) -> Result<Spearman> {
    ensure_same_len(x, y)?;
    let n = x.len();
    if n < 3 {
        return Err(StatsError::TooFewObservations { n, required: 3 });
    }
    let rx = average_ranks(x)?;
    let ry = average_ranks(y)?;
    let rho = pearson(&rx, &ry)?;
    let p_value = if rho.abs() >= 1.0 {
        0.0
    } else {
        let t = rho * ((n as f64 - 2.0) / (1.0 - rho * rho)).sqrt();
        StudentsT::new(n as f64 - 2.0).two_sided_p(t)
    };
    Ok(Spearman { rho, p_value, n })
}

/// Kendall's τ-b rank correlation with tie correction, computed in
/// O(n log n) using Knight's algorithm (merge-sort inversion counting).
pub fn kendall_tau_b(x: &[f64], y: &[f64]) -> Result<f64> {
    ensure_same_len(x, y)?;
    ensure_finite(x)?;
    ensure_finite(y)?;
    let n = x.len();
    if n < 2 {
        return Err(StatsError::TooFewObservations { n, required: 2 });
    }
    // Sort indices by x, breaking ties by y.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| x[a].total_cmp(&x[b]).then(y[a].total_cmp(&y[b])));
    let ys: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
    let xs: Vec<f64> = idx.iter().map(|&i| x[i]).collect();

    // Joint ties (pairs tied in both x and y).
    let mut t_xy: f64 = 0.0;
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && xs[j + 1] == xs[i] && ys[j + 1] == ys[i] {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            t_xy += t * (t - 1.0) / 2.0;
            i = j + 1;
        }
    }
    // Ties in x.
    let mut t_x: f64 = 0.0;
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && xs[j + 1] == xs[i] {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            t_x += t * (t - 1.0) / 2.0;
            i = j + 1;
        }
    }
    // Discordant pairs = inversions of ys (after the x-major sort).
    let mut buf = ys.clone();
    let mut tmp = vec![0.0; n];
    let discordant = merge_count(&mut buf, &mut tmp) as f64;
    // Ties in y (count on the now-sorted buffer).
    let mut t_y: f64 = 0.0;
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && buf[j + 1] == buf[i] {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            t_y += t * (t - 1.0) / 2.0;
            i = j + 1;
        }
    }
    let n0 = n as f64 * (n as f64 - 1.0) / 2.0;
    let denom = ((n0 - t_x) * (n0 - t_y)).sqrt();
    // Both factors are non-negative tie-corrected pair counts.
    if denom <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    // concordant - discordant = n0 - t_x - t_y + t_xy - 2*discordant
    let num = n0 - t_x - t_y + t_xy - 2.0 * discordant;
    Ok((num / denom).clamp(-1.0, 1.0))
}

/// Counts inversions in `a` (strictly decreasing pairs) while merge-sorting it.
fn merge_count(a: &mut [f64], tmp: &mut [f64]) -> u64 {
    let n = a.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = a.split_at_mut(mid);
    let mut inv = merge_count(left, &mut tmp[..mid]) + merge_count(right, &mut tmp[mid..]);
    // Merge, counting strict inversions (left value > right value).
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            tmp[k] = left[i];
            i += 1;
        } else {
            tmp[k] = right[j];
            j += 1;
            inv += crate::cast::u64_from_usize(left.len() - i);
        }
        k += 1;
    }
    while i < left.len() {
        tmp[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        tmp[k] = right[j];
        j += 1;
        k += 1;
    }
    a.copy_from_slice(&tmp[..n]);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn pearson_perfect() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        close(pearson(&x, &y).unwrap(), 1.0, 1e-12);
        let ny: Vec<f64> = y.iter().map(|v| -v).collect();
        close(pearson(&x, &ny).unwrap(), -1.0, 1e-12);
    }

    #[test]
    fn pearson_reference() {
        // Anscombe's quartet I: r ≈ 0.81642.
        let x = [10.0, 8.0, 13.0, 9.0, 11.0, 14.0, 6.0, 4.0, 12.0, 7.0, 5.0];
        let y = [
            8.04, 6.95, 7.58, 8.81, 8.33, 9.96, 7.24, 4.26, 10.84, 4.82, 5.68,
        ];
        close(pearson(&x, &y).unwrap(), 0.816_420_516_3, 1e-9);
    }

    #[test]
    fn pearson_errors() {
        assert!(matches!(
            pearson(&[1.0], &[1.0]),
            Err(StatsError::TooFewObservations { .. })
        ));
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            pearson(&[1.0, 1.0], &[1.0, 2.0]),
            Err(StatsError::ZeroVariance)
        ));
    }

    #[test]
    fn spearman_monotone_is_one() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| v * v * v + 7.0).collect(); // monotone transform
        let s = spearman(&x, &y).unwrap();
        close(s.rho, 1.0, 1e-12);
        assert!(s.p_value < 1e-20);
    }

    #[test]
    fn spearman_with_ties_reference() {
        // Hand-computed: ranks of y are [1, 2.5, 2.5, 4, 5.5, 5.5];
        // Pearson of ranks = 16.5 / sqrt(17.5 * 16.5) = 0.97100831...
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [1.0, 2.0, 2.0, 4.0, 5.0, 5.0];
        let s = spearman(&x, &y).unwrap();
        close(s.rho, 16.5 / (17.5f64 * 16.5).sqrt(), 1e-12);
        // t = rho sqrt(4 / (1 - rho^2)) ~ 8.12, df = 4 -> p ~ 0.00125.
        assert!(s.p_value > 0.0005 && s.p_value < 0.003);
    }

    #[test]
    fn spearman_anticorrelated() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        let s = spearman(&x, &y).unwrap();
        close(s.rho, -1.0, 1e-12);
    }

    #[test]
    fn spearman_p_value_scales_with_n() {
        // Same weak correlation, more data -> smaller p.
        let make = |n: usize| -> (Vec<f64>, Vec<f64>) {
            let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let y: Vec<f64> = (0..n)
                .map(|i| (i as f64) + ((i * 7919) % 13) as f64 * 2.0)
                .collect();
            (x, y)
        };
        let (x1, y1) = make(12);
        let (x2, y2) = make(120);
        let s1 = spearman(&x1, &y1).unwrap();
        let s2 = spearman(&x2, &y2).unwrap();
        assert!(s2.p_value < s1.p_value);
    }

    #[test]
    fn kendall_reference() {
        // scipy.stats.kendalltau([1,2,3,4,5], [1,3,2,4,5]) -> 0.8
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 3.0, 2.0, 4.0, 5.0];
        close(kendall_tau_b(&x, &y).unwrap(), 0.8, 1e-12);
        // Perfect agreement and disagreement.
        close(kendall_tau_b(&x, &x).unwrap(), 1.0, 1e-12);
        let rev = [5.0, 4.0, 3.0, 2.0, 1.0];
        close(kendall_tau_b(&x, &rev).unwrap(), -1.0, 1e-12);
    }

    #[test]
    fn kendall_with_ties_reference() {
        // Hand-computed: c = 4, d = 0, one x-tied pair, one y-tied pair;
        // tau_b = 4 / sqrt((6-1)(6-1)) = 0.8.
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        close(kendall_tau_b(&x, &y).unwrap(), 0.8, 1e-12);
    }

    #[test]
    fn kendall_matches_naive_on_random_data() {
        // O(n²) reference implementation.
        fn naive(x: &[f64], y: &[f64]) -> f64 {
            let n = x.len();
            let (mut c, mut d, mut tx, mut ty) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for i in 0..n {
                for j in i + 1..n {
                    // NOTE: f64::signum(0.0) is 1.0, so compare explicitly.
                    let sgn = |a: f64, b: f64| {
                        if a == b {
                            0.0
                        } else if a > b {
                            1.0
                        } else {
                            -1.0
                        }
                    };
                    let sx = sgn(x[i], x[j]);
                    let sy = sgn(y[i], y[j]);
                    if sx == 0.0 && sy == 0.0 {
                        continue;
                    } else if sx == 0.0 {
                        tx += 1.0;
                    } else if sy == 0.0 {
                        ty += 1.0;
                    } else if sx == sy {
                        c += 1.0;
                    } else {
                        d += 1.0;
                    }
                }
            }
            (c - d) / ((c + d + tx) * (c + d + ty)).sqrt()
        }
        // Deterministic pseudo-random data with ties.
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 17) as f64
        };
        let x: Vec<f64> = (0..200).map(|_| next()).collect();
        let y: Vec<f64> = (0..200).map(|_| next()).collect();
        close(kendall_tau_b(&x, &y).unwrap(), naive(&x, &y), 1e-12);
    }
}
