//! Probability distributions used by the hypothesis tests.

use crate::special::{erf, erfc, reg_inc_beta, reg_inc_gamma};

/// The standard normal distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl StandardNormal {
    /// Cumulative distribution function Φ(x).
    pub fn cdf(x: f64) -> f64 {
        0.5 * erfc(-x / std::f64::consts::SQRT_2)
    }

    /// Two-sided tail probability `P(|Z| ≥ |z|)`.
    pub fn two_sided_p(z: f64) -> f64 {
        (erfc(z.abs() / std::f64::consts::SQRT_2)).min(1.0)
    }

    /// Probability density function φ(x).
    pub fn pdf(x: f64) -> f64 {
        (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
    }

    /// Inverse CDF (quantile) via Acklam's rational approximation refined by
    /// one Halley step; accurate to ~1e-12 over (0, 1).
    pub fn inv_cdf(p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // The assert bounds p to [0, 1], so the boundary checks reduce to
        // inequalities rather than exact float equalities.
        if p <= 0.0 {
            return f64::NEG_INFINITY;
        }
        if p >= 1.0 {
            return f64::INFINITY;
        }
        // Acklam coefficients.
        const A: [f64; 6] = [
            -3.969_683_028_665_376e1,
            2.209_460_984_245_205e2,
            -2.759_285_104_469_687e2,
            1.383_577_518_672_69e2,
            -3.066_479_806_614_716e1,
            2.506_628_277_459_239,
        ];
        const B: [f64; 5] = [
            -5.447_609_879_822_406e1,
            1.615_858_368_580_409e2,
            -1.556_989_798_598_866e2,
            6.680_131_188_771_972e1,
            -1.328_068_155_288_572e1,
        ];
        const C: [f64; 6] = [
            -7.784_894_002_430_293e-3,
            -3.223_964_580_411_365e-1,
            -2.400_758_277_161_838,
            -2.549_732_539_343_734,
            4.374_664_141_464_968,
            2.938_163_982_698_783,
        ];
        const D: [f64; 4] = [
            7.784_695_709_041_462e-3,
            3.224_671_290_700_398e-1,
            2.445_134_137_142_996,
            3.754_408_661_907_416,
        ];
        const P_LOW: f64 = 0.024_25;
        let x = if p < P_LOW {
            let q = (-2.0 * p.ln()).sqrt();
            (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        } else if p <= 1.0 - P_LOW {
            let q = p - 0.5;
            let r = q * q;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        } else {
            let q = (-2.0 * (1.0 - p).ln()).sqrt();
            -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        };
        // One Halley refinement step.
        let e = Self::cdf(x) - p;
        let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
        x - u / (1.0 + x * u / 2.0)
    }
}

/// Student's t distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy)]
pub struct StudentsT {
    /// Degrees of freedom (> 0).
    pub df: f64,
}

impl StudentsT {
    /// Creates the distribution; panics if `df ≤ 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
        StudentsT { df }
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, t: f64) -> f64 {
        if t.abs() <= 0.0 {
            // Exactly zero (covers -0.0): the symmetric midpoint.
            return 0.5;
        }
        let x = self.df / (self.df + t * t);
        let tail = 0.5 * reg_inc_beta(self.df / 2.0, 0.5, x);
        if t > 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    /// Two-sided p-value `P(|T| ≥ |t|)`.
    pub fn two_sided_p(&self, t: f64) -> f64 {
        let x = self.df / (self.df + t * t);
        reg_inc_beta(self.df / 2.0, 0.5, x).min(1.0)
    }
}

/// The χ² distribution with `k` degrees of freedom.
#[derive(Debug, Clone, Copy)]
pub struct ChiSquared {
    /// Degrees of freedom (> 0).
    pub df: f64,
}

impl ChiSquared {
    /// Creates the distribution; panics if `df ≤ 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
        ChiSquared { df }
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        reg_inc_gamma(self.df / 2.0, x / 2.0)
    }

    /// Upper-tail probability `P(X ≥ x)`, used for likelihood-ratio tests.
    pub fn sf(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).max(0.0)
    }
}

/// Convenience re-export of `erf` for callers of the distribution module.
pub fn erf_fn(x: f64) -> f64 {
    erf(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn normal_cdf_reference() {
        close(StandardNormal::cdf(0.0), 0.5, 1e-12);
        close(StandardNormal::cdf(1.0), 0.841_344_746_068_543, 1e-10);
        close(StandardNormal::cdf(-1.96), 0.024_997_895_148_220, 1e-9);
        close(StandardNormal::cdf(3.0), 0.998_650_101_968_37, 1e-10);
    }

    #[test]
    fn normal_two_sided() {
        close(StandardNormal::two_sided_p(1.96), 0.05, 1e-3);
        close(StandardNormal::two_sided_p(0.0), 1.0, 1e-12);
        close(StandardNormal::two_sided_p(-2.575_8), 0.01, 1e-4);
    }

    #[test]
    fn normal_inverse_roundtrip() {
        for p in [0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999] {
            let x = StandardNormal::inv_cdf(p);
            close(StandardNormal::cdf(x), p, 1e-10);
        }
        close(StandardNormal::inv_cdf(0.975), 1.959_963_984_540_054, 1e-8);
    }

    #[test]
    fn t_cdf_reference() {
        // t distribution with df=1 is Cauchy: CDF(1) = 0.75.
        let t1 = StudentsT::new(1.0);
        close(t1.cdf(1.0), 0.75, 1e-10);
        close(t1.cdf(0.0), 0.5, 1e-12);
        // df=10, t=2.228 is the 97.5th percentile.
        let t10 = StudentsT::new(10.0);
        close(t10.cdf(2.228_138_851_986_273), 0.975, 1e-9);
        close(t10.two_sided_p(2.228_138_851_986_273), 0.05, 1e-9);
    }

    #[test]
    fn t_converges_to_normal() {
        let t = StudentsT::new(1e6);
        for x in [-2.0, -0.5, 0.0, 1.0, 2.5] {
            close(t.cdf(x), StandardNormal::cdf(x), 1e-5);
        }
    }

    #[test]
    fn chi2_reference() {
        // χ²(1): CDF(3.841) ≈ 0.95.
        let c1 = ChiSquared::new(1.0);
        close(c1.cdf(3.841_458_820_694_124), 0.95, 1e-9);
        // χ²(2): CDF(x) = 1 - e^{-x/2}.
        let c2 = ChiSquared::new(2.0);
        for x in [0.5, 1.0, 3.0, 8.0] {
            close(c2.cdf(x), 1.0 - (-x / 2.0f64).exp(), 1e-12);
        }
        assert_eq!(c2.cdf(-1.0), 0.0);
        close(c2.sf(2.0), (-1.0f64).exp(), 1e-12);
    }
}
