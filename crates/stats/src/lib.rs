//! Self-contained statistics toolkit for the top-list evaluation framework.
//!
//! The paper's analysis pipeline needs a handful of classical statistics that
//! have no canonical pure-Rust home: tie-aware ranking, Spearman's rank
//! correlation with significance tests, Jaccard set similarity, and logistic
//! regression with Wald tests and Bonferroni correction (Table 3). This crate
//! implements all of them from first principles, with property tests pinning
//! their invariants and unit tests pinning reference values computed with
//! standard scientific software.
//!
//! # Modules
//!
//! * [`rank`] — average-rank transformation with ties.
//! * [`bootstrap`] — percentile bootstrap confidence intervals.
//! * [`corr`] — Pearson, Spearman (ρ + p-value), Kendall τ-b in O(n log n).
//! * [`sets`] — Jaccard index, overlap coefficient, rank-biased overlap.
//! * [`special`] — log-gamma, regularized incomplete beta/gamma, erf.
//! * [`dist`] — Normal, Student's t, and χ² distributions.
//! * [`linalg`] — small dense matrices with Cholesky solve/inverse.
//! * [`logit`] — logistic regression via iteratively reweighted least squares.
//! * [`desc`] — descriptive statistics (mean, variance, quantiles).
//! * [`mtc`] — multiple-testing corrections (Bonferroni, Holm).
//! * [`timeseries`] — autocorrelation and weekly-periodicity detection.
//!
//! # Example
//!
//! ```
//! use topple_stats::corr::spearman;
//!
//! let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
//! let y = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 8.0, 7.0];
//! let r = spearman(&x, &y).unwrap();
//! assert!(r.rho > 0.9 && r.p_value < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod cast;
pub mod corr;
pub mod desc;
pub mod dist;
pub mod linalg;
pub mod logit;
pub mod mtc;
pub mod rank;
pub mod sets;
pub mod special;
pub mod timeseries;

use std::fmt;

/// Errors surfaced by statistical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Input slices had different lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// Too few observations for the requested statistic.
    TooFewObservations {
        /// Observations provided.
        n: usize,
        /// Minimum required.
        required: usize,
    },
    /// An input contained NaN or infinity.
    NonFinite,
    /// An input was constant where variation is required (e.g. correlation).
    ZeroVariance,
    /// The iterative fit failed to converge.
    DidNotConverge {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A matrix operation failed (singular / not positive definite).
    SingularMatrix,
    /// The model design was degenerate (e.g. a predictor column is constant
    /// and collinear with the intercept, or outcomes are all one class).
    DegenerateDesign(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::LengthMismatch { left, right } => {
                write!(f, "input length mismatch: {left} vs {right}")
            }
            StatsError::TooFewObservations { n, required } => {
                write!(f, "need at least {required} observations, got {n}")
            }
            StatsError::NonFinite => write!(f, "input contains NaN or infinite values"),
            StatsError::ZeroVariance => write!(f, "input has zero variance"),
            StatsError::DidNotConverge { iterations } => {
                write!(f, "iteration failed to converge after {iterations} steps")
            }
            StatsError::SingularMatrix => write!(f, "matrix is singular or not positive definite"),
            StatsError::DegenerateDesign(why) => write!(f, "degenerate model design: {why}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;

pub(crate) fn ensure_finite(xs: &[f64]) -> Result<()> {
    if xs.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(StatsError::NonFinite)
    }
}

pub(crate) fn ensure_same_len(x: &[f64], y: &[f64]) -> Result<()> {
    if x.len() == y.len() {
        Ok(())
    } else {
        Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        })
    }
}
