//! Multiple-testing corrections.
//!
//! Table 3 of the paper reports logistic-regression odds ratios "statistically
//! significant at p < 0.01 with Bonferroni correction of 22 (the number of
//! website categories)". These helpers implement that correction plus the
//! uniformly-more-powerful Holm step-down procedure as an extension.

/// Bonferroni-adjusts raw p-values for `m` comparisons: `min(1, p·m)`.
///
/// `m` defaults to the number of p-values when callers pass the whole family.
pub fn bonferroni(p_values: &[f64], m: usize) -> Vec<f64> {
    let m = m.max(1) as f64;
    p_values.iter().map(|&p| (p * m).min(1.0)).collect()
}

/// Tests each hypothesis at family-wise level `alpha` under Bonferroni with
/// `m` comparisons, returning a significance flag per input.
pub fn bonferroni_significant(p_values: &[f64], m: usize, alpha: f64) -> Vec<bool> {
    let threshold = alpha / m.max(1) as f64;
    p_values.iter().map(|&p| p < threshold).collect()
}

/// Holm's step-down adjustment (controls FWER, dominates Bonferroni).
pub fn holm(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len();
    if p_values.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| p_values[a].total_cmp(&p_values[b]));
    let mut adjusted = vec![0.0; m];
    let mut running_max: f64 = 0.0;
    for (k, &i) in order.iter().enumerate() {
        let factor = (m - k) as f64;
        running_max = running_max.max((p_values[i] * factor).min(1.0));
        adjusted[i] = running_max;
    }
    adjusted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonferroni_scales_and_caps() {
        let adj = bonferroni(&[0.001, 0.01, 0.2], 22);
        assert!((adj[0] - 0.022).abs() < 1e-12);
        assert!((adj[1] - 0.22).abs() < 1e-12);
        assert_eq!(adj[2], 1.0);
    }

    #[test]
    fn bonferroni_significance_threshold() {
        // Paper setting: alpha = 0.01, m = 22 -> threshold ≈ 0.000454.
        let flags = bonferroni_significant(&[0.0001, 0.0005, 0.009], 22, 0.01);
        assert_eq!(flags, vec![true, false, false]);
    }

    #[test]
    fn holm_monotone_and_dominates() {
        let p = [0.01, 0.04, 0.03, 0.005];
        let h = holm(&p);
        let b = bonferroni(&p, p.len());
        for i in 0..p.len() {
            assert!(h[i] <= b[i] + 1e-15, "holm should dominate bonferroni");
            assert!(h[i] >= p[i]);
        }
        // Step-down monotonicity: adjusted order respects raw order.
        assert!(h[3] <= h[0] && h[0] <= h[2] && h[2] <= h[1]);
    }

    #[test]
    fn holm_known_example() {
        // Classic example: p = [0.01, 0.02, 0.03], m=3.
        // sorted: 0.01*3=0.03, 0.02*2=0.04, 0.03*1=0.03 -> cummax: 0.03, 0.04, 0.04
        let h = holm(&[0.01, 0.02, 0.03]);
        assert!((h[0] - 0.03).abs() < 1e-12);
        assert!((h[1] - 0.04).abs() < 1e-12);
        assert!((h[2] - 0.04).abs() < 1e-12);
    }

    #[test]
    fn empty_families() {
        assert!(bonferroni(&[], 5).is_empty());
        assert!(holm(&[]).is_empty());
    }
}
