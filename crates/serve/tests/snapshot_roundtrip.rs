//! Property tests for the snapshot format: write → read → rewrite is
//! byte-identical, and *any* single-byte corruption or truncation fails
//! closed with a typed error — never a panic, never a silently-wrong load.

// Test harness: aborting on a broken fixture is the correct failure mode
// (clippy.toml's allow-*-in-tests covers `#[test]` fns but not helpers).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::sync::OnceLock;

use proptest::{proptest, ProptestConfig};
use topple_core::Study;
use topple_serve::snapshot::{encode_study, HEADER_LEN};
use topple_serve::{Snapshot, SnapshotError};
use topple_sim::WorldConfig;

/// One tiny study's snapshot bytes, built once and shared by every case.
fn baseline() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let study = Study::run(WorldConfig::tiny(20220201)).expect("tiny study");
        encode_study(
            &study,
            "tiny",
            &[("report".to_owned(), "rendered text\nline two".to_owned())],
        )
    })
}

#[test]
fn write_read_rewrite_is_byte_identical() {
    for seed in [1u64, 99, 20220201] {
        let study = Study::run(WorldConfig::tiny(seed)).expect("tiny study");
        let bytes = encode_study(&study, "tiny", &[]);
        let snap = Snapshot::from_bytes(&bytes).expect("decodes");
        assert_eq!(
            snap.to_bytes(),
            bytes,
            "decode→encode drifted for seed {seed}"
        );
        assert_eq!(snap.identity.seed, seed);
    }
}

#[test]
fn reserved_header_bytes_are_ignored() {
    // Offsets 6..8 are the reserved u16: the one region a flip may not fail,
    // by design — forward-compatible writers may set it.
    let mut bytes = baseline().to_vec();
    bytes[6] ^= 0xFF;
    assert!(Snapshot::from_bytes(&bytes).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any non-reserved byte must yield a typed error.
    #[test]
    fn corruption_fails_closed(offset in 0usize..48_000usize, flip in 1u8..=255u8) {
        let mut bytes = baseline().to_vec();
        let at = offset % bytes.len();
        if (6..8).contains(&at) {
            // Reserved bytes: covered by `reserved_header_bytes_are_ignored`.
            return Ok(());
        }
        bytes[at] ^= flip;
        let err = match Snapshot::from_bytes(&bytes) {
            Err(e) => e,
            Ok(_) => panic!("byte {at} ^ {flip:#04x} decoded successfully"),
        };
        // Every corruption maps to one of the structured variants; rendering
        // exercises the Display impls too.
        let text = err.to_string();
        assert!(!text.is_empty());
    }

    /// Every truncation point must yield a typed error (a short read can
    /// never masquerade as a smaller valid snapshot).
    #[test]
    fn truncation_fails_closed(keep in 0usize..48_000usize) {
        let bytes = baseline();
        let keep = keep % bytes.len(); // strictly less than full length
        let err = match Snapshot::from_bytes(&bytes[..keep]) {
            Err(e) => e,
            Ok(_) => panic!("{keep}-byte prefix decoded successfully"),
        };
        if keep >= HEADER_LEN {
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "prefix {keep}: expected Truncated, got {err}"
            );
        }
    }

    /// Appending garbage must be rejected, not ignored.
    #[test]
    fn trailing_bytes_fail_closed(extra in 1usize..64usize) {
        let mut bytes = baseline().to_vec();
        let grown = bytes.len() + extra;
        bytes.resize(grown, 0xAA);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::TrailingBytes { .. })
        ));
    }
}

#[test]
fn header_errors_are_specific() {
    let bytes = baseline();
    let mut bad_magic = bytes.to_vec();
    bad_magic[0] = b'Z';
    assert!(matches!(
        Snapshot::from_bytes(&bad_magic),
        Err(SnapshotError::BadMagic { .. })
    ));
    let mut bad_version = bytes.to_vec();
    bad_version[4] = 0x7F;
    assert!(matches!(
        Snapshot::from_bytes(&bad_version),
        Err(SnapshotError::UnsupportedVersion { .. })
    ));
    let mut bad_payload = bytes.to_vec();
    let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
    bad_payload[mid] ^= 0x01;
    assert!(matches!(
        Snapshot::from_bytes(&bad_payload),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
}

#[test]
fn file_roundtrip_through_disk() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("topple-roundtrip-{}.tpls", std::process::id()));
    let study = Study::run(WorldConfig::tiny(42)).expect("tiny study");
    let id = topple_serve::write_study(&study, "tiny", &[], &path).expect("writes");
    let snap = Snapshot::read_from(&path).expect("reads");
    assert_eq!(snap.id(), id);
    assert_eq!(snap.to_bytes(), encode_study(&study, "tiny", &[]));
    let _ = std::fs::remove_file(&path);
}
