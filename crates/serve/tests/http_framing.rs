//! Framing properties of the incremental HTTP parser.
//!
//! The reactor feeds [`parse_request`] whatever byte prefixes the kernel
//! happens to deliver, so the parser's one structural obligation is split
//! independence: parsing a request stream incrementally — any number of
//! requests, cut at any byte boundaries — must yield exactly the frames
//! (method, path, query, keep-alive, consumed length) that parsing the
//! whole stream at once yields, with `Partial` and only `Partial` in
//! between. The proptest drives random streams through random splits; the
//! deterministic cases pin the edges named in DESIGN.md §16: pipelined
//! back-to-back requests in one buffer, request lines fragmented across
//! reads, and oversized lines failing closed as 400 material.

// Test harness: aborting on a broken fixture is the correct failure mode
// (clippy.toml's allow-*-in-tests covers `#[test]` fns but not helpers).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use proptest::prelude::*;
use topple_serve::http::{parse_request, Parse, MAX_LINE};

/// A parsed frame, owned so results from different buffers can be compared.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    method: String,
    path: String,
    query: String,
    keep_alive: bool,
    consumed: usize,
}

/// Drains every complete frame from the front of `buf`, stopping at
/// `Partial`; panics on `Bad` (callers feed well-formed streams).
fn drain_frames(buf: &mut Vec<u8>) -> Vec<Frame> {
    let mut frames = Vec::new();
    loop {
        match parse_request(buf) {
            Parse::Complete(req, n) => {
                frames.push(Frame {
                    method: req.method.to_owned(),
                    path: req.path.to_owned(),
                    query: req.query.to_owned(),
                    keep_alive: req.keep_alive,
                    consumed: n,
                });
                buf.drain(..n);
            }
            Parse::Partial => return frames,
            Parse::Bad(e) => panic!("well-formed stream parsed as Bad: {e}"),
        }
    }
}

/// Renders one well-formed request from generated parts.
fn render_request(path: &str, query: &str, close: bool, lf_only: bool) -> String {
    let eol = if lf_only { "\n" } else { "\r\n" };
    let target = if query.is_empty() {
        format!("/{path}")
    } else {
        format!("/{path}?{query}")
    };
    let connection = if close {
        format!("Connection: close{eol}")
    } else {
        String::new()
    };
    format!("GET {target} HTTP/1.1{eol}Host: x{eol}{connection}{eol}")
}

/// Deterministically expands one seed into request parts (path, query,
/// close, lf-only): an xorshift walk picking from URL-safe alphabets.
fn request_parts(seed: u64) -> (String, String, bool, bool) {
    const PATH_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/._-";
    const QUERY_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789=&";
    let mut rng = seed | 1;
    let mut step = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let path: String = (0..step() % 25)
        .map(|_| PATH_CHARS[step() as usize % PATH_CHARS.len()] as char)
        .collect();
    let query: String = (0..step() % 13)
        .map(|_| QUERY_CHARS[step() as usize % QUERY_CHARS.len()] as char)
        .collect();
    (path, query, step() % 2 == 0, step() % 2 == 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any byte-split of a valid request stream parses identically to the
    /// unsplit stream.
    #[test]
    fn byte_splits_parse_identically(
        seeds in proptest::collection::vec(any::<u64>(), 1..6),
        cut_seed in any::<u64>(),
    ) {
        let requests: Vec<(String, String, bool, bool)> =
            seeds.iter().map(|&s| request_parts(s)).collect();
        let stream: String = requests
            .iter()
            .map(|(p, q, close, lf)| render_request(p, q, *close, *lf))
            .collect();
        let bytes = stream.as_bytes();

        // Ground truth: the whole stream in one buffer.
        let mut whole = bytes.to_vec();
        let expected = drain_frames(&mut whole);
        prop_assert_eq!(expected.len(), requests.len());
        prop_assert!(whole.is_empty(), "unconsumed tail: {:?}", whole);

        // Incremental: deliver the same bytes in chunks cut at positions
        // derived from the seed (an xorshift walk covers 1-byte dribbles
        // through large chunks as the seed varies).
        let mut incremental: Vec<Frame> = Vec::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut at = 0usize;
        let mut rng = cut_seed | 1;
        while at < bytes.len() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let chunk = 1 + (rng as usize) % 19;
            let end = (at + chunk).min(bytes.len());
            buf.extend_from_slice(&bytes[at..end]);
            at = end;
            incremental.extend(drain_frames(&mut buf));
        }
        prop_assert!(buf.is_empty(), "unconsumed tail after final chunk: {:?}", buf);
        prop_assert_eq!(incremental, expected);
    }
}

#[test]
fn pipelined_requests_in_one_buffer_frame_exactly() {
    let mut buf =
        b"GET /a HTTP/1.1\r\n\r\nGET /b?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec();
    let frames = drain_frames(&mut buf);
    assert!(buf.is_empty());
    assert_eq!(frames.len(), 2);
    assert_eq!(
        (frames[0].path.as_str(), frames[0].keep_alive),
        ("/a", true)
    );
    assert_eq!(
        (
            frames[1].path.as_str(),
            frames[1].query.as_str(),
            frames[1].keep_alive
        ),
        ("/b", "x=1", false)
    );
}

#[test]
fn request_line_split_across_reads_stays_partial_until_complete() {
    let full = b"GET /v1/rank/tranco/example.org HTTP/1.1\r\n\r\n";
    for cut in 1..full.len() {
        assert!(
            matches!(parse_request(&full[..cut]), Parse::Partial),
            "prefix of {cut} bytes should be Partial"
        );
    }
    let Parse::Complete(req, n) = parse_request(full) else {
        panic!("full request should be Complete");
    };
    assert_eq!(req.path, "/v1/rank/tranco/example.org");
    assert_eq!(n, full.len());
}

#[test]
fn oversized_request_line_fails_closed_not_partial() {
    // No newline within the parser's window: this can never become a valid
    // request, so waiting for more bytes would hang the connection open.
    let flood = vec![b'a'; MAX_LINE + 3];
    assert!(matches!(parse_request(&flood), Parse::Bad(_)));

    // An oversized header line after a valid request line fails the same way.
    let mut huge_header = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
    huge_header.extend(std::iter::repeat_n(b'x', MAX_LINE + 3));
    assert!(matches!(parse_request(&huge_header), Parse::Bad(_)));
}

#[test]
fn a_line_of_exactly_max_line_bytes_is_accepted() {
    // "GET /xxx...x HTTP/1.1" padded to exactly MAX_LINE content bytes: the
    // boundary the length check must not reject.
    let fixed = "GET / HTTP/1.1";
    let line = format!("GET /{} HTTP/1.1", "x".repeat(MAX_LINE - fixed.len()));
    assert_eq!(line.len(), MAX_LINE);
    let buf = format!("{line}\r\n\r\n");
    let Parse::Complete(req, _) = parse_request(buf.as_bytes()) else {
        panic!("MAX_LINE-byte request line should parse");
    };
    assert_eq!(req.path.len(), MAX_LINE - fixed.len() + 1);
}
