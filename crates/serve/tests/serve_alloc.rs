//! Allocation audit for the serving hot path.
//!
//! The reactor's pitch (DESIGN.md §16) is that a warmed keep-alive
//! connection is served with zero heap traffic: connection buffers are
//! reused at their high-water capacity, hot responses come pre-rendered
//! from the snapshot's arena, compare hits clone an `Arc<str>` refcount,
//! and header formatting goes through stack buffers. This test pins that
//! with a counting global allocator, the same way `tests/ingest_alloc.rs`
//! pins the ingestion path: warm one pipelined keep-alive connection over
//! every hot endpoint, then re-send the identical batch with the counter
//! armed and require zero allocations — on the server side *and* in the
//! measuring client, whose request bytes and read buffers are prebuilt.
//!
//! The file holds exactly one `#[test]`: the allocator counter is global,
//! and a concurrently running test would pollute the measurement.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use topple_core::Study;
use topple_lists::ListSource;
use topple_serve::query::list_url_name;
use topple_serve::snapshot::encode_study;
use topple_serve::{QuerySnapshot, Server, Snapshot};
use topple_sim::WorldConfig;

/// Passes through to the system allocator, counting allocations (and
/// reallocations — buffer growth is what warm reuse must avoid) while
/// armed. The counter is process-global, so it sees the reactor shard
/// thread too — exactly the point.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn warmed_keep_alive_connection_serves_without_allocating() {
    let study = Study::run(WorldConfig::tiny(31337)).expect("tiny study");
    let bytes = encode_study(&study, "tiny", &[]);
    let qs = QuerySnapshot::new(Snapshot::from_bytes(&bytes).expect("decodes"));

    // Build the pipelined batch before anything is measured: health, hot
    // ranks and movements for in-list domains, and one compare cell (whose
    // body lands in the LRU during warm-up, so the armed round is a pure
    // cache hit).
    let mut batch: Vec<u8> = Vec::new();
    let mut expected_responses = 0usize;
    let mut push = |path: &str, batch: &mut Vec<u8>| {
        batch.extend_from_slice(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes());
        expected_responses += 1;
    };
    push("/health", &mut batch);
    push("/v1/compare?a=alexa&b=tranco&k=40", &mut batch);
    {
        let table = qs.snapshot().index.table();
        for source in [ListSource::Tranco, ListSource::Alexa, ListSource::Umbrella] {
            let cols = qs.snapshot().index.monthly(source);
            for &id in cols.ids.iter().take(2) {
                let name = table.name(id).as_str().to_owned();
                push(
                    &format!("/v1/rank/{}/{name}", list_url_name(source)),
                    &mut batch,
                );
                push(&format!("/v1/movement/{name}"), &mut batch);
            }
        }
    }

    let server = Arc::new(Server::bind("127.0.0.1:0", qs, 1).expect("binds"));
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };

    // Warm-up rounds on one keep-alive connection: connection buffers grow
    // to the batch's working set, the compare body enters the LRU, and we
    // learn the batch's exact response byte count (responses are
    // byte-identical round to round, so the armed round reads the same
    // total).
    let mut conn = TcpStream::connect(addr).expect("connects");
    let mut scratch = [0u8; 16 * 1024];
    // Allocation-free reader for the armed round: fixed stack buffer,
    // stop at the exact byte count the learning pass established.
    let mut read_exactly = |conn: &mut TcpStream, total: usize| -> usize {
        let mut got = 0usize;
        while got < total {
            let n = conn.read(&mut scratch).expect("reads");
            assert!(n > 0, "connection closed mid-round");
            got += n;
        }
        assert_eq!(got, total, "response stream length drifted");
        got
    };

    // Learning pass: read whole frames (header + Content-Length body) until
    // the batch's response count is reached, totalling the bytes.
    let expected_total = {
        let learn = |conn: &mut TcpStream| -> usize {
            let mut carry: Vec<u8> = Vec::new();
            let mut buf = [0u8; 16 * 1024];
            let mut frames = 0usize;
            let mut total = 0usize;
            while frames < expected_responses {
                if let Some(head_end) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
                    let head = std::str::from_utf8(&carry[..head_end]).expect("ascii head");
                    let content_len: usize = head
                        .lines()
                        .find_map(|l| l.strip_prefix("Content-Length: "))
                        .and_then(|v| v.trim().parse().ok())
                        .expect("content-length");
                    let frame_len = head_end + 4 + content_len;
                    if carry.len() >= frame_len {
                        carry.drain(..frame_len);
                        frames += 1;
                        total += frame_len;
                        continue;
                    }
                }
                let n = conn.read(&mut buf).expect("reads");
                assert!(n > 0, "connection closed mid-learning");
                carry.extend_from_slice(&buf[..n]);
            }
            assert!(carry.is_empty(), "stray bytes after final frame");
            total
        };
        conn.write_all(&batch).expect("writes warm round 1");
        let first = learn(&mut conn);
        conn.write_all(&batch).expect("writes warm round 2");
        let second = learn(&mut conn);
        assert_eq!(first, second, "responses not byte-stable across rounds");
        first
    };

    // The measured round: identical batch, identical responses, armed
    // counter. Nothing in this block may allocate — not the client (fixed
    // buffers, prebuilt batch) and, the actual assertion, not the server.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    conn.write_all(&batch).expect("writes armed round");
    let got = read_exactly(&mut conn, expected_total);
    ARMED.store(false, Ordering::SeqCst);
    assert_eq!(got, expected_total);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "warmed keep-alive serving allocated {allocs} times"
    );

    drop(conn);
    handle.store(true, Ordering::SeqCst);
    runner.join().expect("joins").expect("drains cleanly");
}
