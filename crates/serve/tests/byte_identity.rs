//! The event-loop rewrite's contract: bytes on the wire are exactly the
//! query layer's renders.
//!
//! The thread-pool server the reactor replaced wrote `Reply.body` strings
//! straight from [`QuerySnapshot`]'s formatting functions, so "byte-identical
//! to the old implementation" and "byte-identical to the query layer" are
//! the same statement. This file pins it from every angle the rewrite
//! touched: shard counts 1 and 4, sequential clients (one request per
//! connection) and pipelined clients (every request in one write, responses
//! coalesced), plus the two behavioral guarantees that are new with the
//! reactor — burst accepts without a poll-interval stall, and a graceful
//! drain that serves and exactly counts requests that were pipelined but
//! not yet answered when shutdown began.

// Test harness: aborting on a broken fixture is the correct failure mode
// (clippy.toml's allow-*-in-tests covers `#[test]` fns but not helpers).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use topple_core::Study;
use topple_lists::ListSource;
use topple_serve::query::list_url_name;
use topple_serve::snapshot::encode_study;
use topple_serve::{DrainStats, QuerySnapshot, Server, Snapshot};
use topple_sim::WorldConfig;

fn query_snapshot() -> QuerySnapshot {
    let study = Study::run(WorldConfig::tiny(4099)).expect("tiny study");
    let bytes = encode_study(&study, "tiny", &[("note".to_owned(), "n".to_owned())]);
    QuerySnapshot::new(Snapshot::from_bytes(&bytes).expect("decodes"))
}

/// Probe paths paired with the body the query layer renders for each —
/// the ground truth the wire must reproduce byte for byte.
fn probes(qs: &QuerySnapshot) -> Vec<(String, u16, String)> {
    let table = qs.snapshot().index.table();
    let mut out = Vec::new();
    out.push(("/health".to_owned(), qs.health().status, qs.health().body));
    for source in ListSource::ALL {
        let cols = qs.snapshot().index.monthly(source);
        for &id in cols.ids.iter().take(3) {
            let name = table.name(id).as_str().to_owned();
            let list = list_url_name(source);
            let reply = qs.rank(list, &name);
            out.push((format!("/v1/rank/{list}/{name}"), reply.status, reply.body));
            let reply = qs.movement(&name);
            out.push((format!("/v1/movement/{name}"), reply.status, reply.body));
        }
    }
    let miss = qs.rank("tranco", "absent-domain.example");
    out.push((
        "/v1/rank/tranco/absent-domain.example".to_owned(),
        miss.status,
        miss.body,
    ));
    for (a, b, k) in [("alexa", "tranco", "40"), ("crux", "umbrella", "100")] {
        let reply = qs.compare(a, b, k);
        out.push((
            format!("/v1/compare?a={a}&b={b}&k={k}"),
            reply.status,
            reply.body,
        ));
    }
    let reply = qs.artifact("note");
    out.push(("/v1/artifact/note".to_owned(), reply.status, reply.body));
    out
}

fn with_server<T>(qs: QuerySnapshot, shards: usize, f: impl FnOnce(SocketAddr) -> T) -> T {
    let server = Arc::new(Server::bind("127.0.0.1:0", qs, shards).expect("binds"));
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let out = f(addr);
    handle.store(true, Ordering::SeqCst);
    runner.join().expect("joins").expect("drains cleanly");
    out
}

/// Splits one complete response frame off the front of `carry`, reading
/// more bytes as needed; returns (status, body).
fn next_response(s: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, Vec<u8>) {
    let mut buf = [0u8; 4096];
    loop {
        if let Some(head_end) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&carry[..head_end]).into_owned();
            let status: u16 = head
                .split_whitespace()
                .nth(1)
                .and_then(|c| c.parse().ok())
                .expect("status code");
            let content_len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.trim().parse().ok())
                .expect("content-length");
            let frame_len = head_end + 4 + content_len;
            if carry.len() >= frame_len {
                let body = carry[head_end + 4..frame_len].to_vec();
                carry.drain(..frame_len);
                return (status, body);
            }
        }
        let n = s.read(&mut buf).expect("reads");
        assert!(n > 0, "connection closed mid-response");
        carry.extend_from_slice(&buf[..n]);
    }
}

/// One request per connection (`Connection: close`), like the old pool's
/// simplest client.
fn fetch_sequential(addr: SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connects");
    write!(s, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").expect("writes");
    let mut carry = Vec::new();
    next_response(&mut s, &mut carry)
}

/// Every request in one write over one keep-alive connection; responses
/// read back in order.
fn fetch_pipelined(addr: SocketAddr, paths: &[&str]) -> Vec<(u16, Vec<u8>)> {
    let mut s = TcpStream::connect(addr).expect("connects");
    let mut burst = Vec::new();
    for path in paths {
        burst.extend_from_slice(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes());
    }
    s.write_all(&burst).expect("writes");
    let mut carry = Vec::new();
    paths
        .iter()
        .map(|_| next_response(&mut s, &mut carry))
        .collect()
}

#[test]
fn wire_bodies_match_query_layer_across_shards_and_client_modes() {
    let reference = probes(&query_snapshot());
    let paths: Vec<&str> = reference.iter().map(|(p, _, _)| p.as_str()).collect();
    for shards in [1usize, 4] {
        let (sequential, pipelined) = with_server(query_snapshot(), shards, |addr| {
            let sequential: Vec<(u16, Vec<u8>)> =
                paths.iter().map(|p| fetch_sequential(addr, p)).collect();
            let pipelined = fetch_pipelined(addr, &paths);
            (sequential, pipelined)
        });
        for (i, (path, status, body)) in reference.iter().enumerate() {
            assert_eq!(
                (sequential[i].0, sequential[i].1.as_slice()),
                (*status, body.as_bytes()),
                "{shards} shards, sequential: `{path}` diverged from query layer"
            );
            assert_eq!(
                (pipelined[i].0, pipelined[i].1.as_slice()),
                (*status, body.as_bytes()),
                "{shards} shards, pipelined: `{path}` diverged from query layer"
            );
        }
    }
}

#[test]
fn connection_burst_is_accepted_without_poll_stall() {
    const BURST: usize = 50;
    with_server(query_snapshot(), 1, |addr| {
        // Open the whole burst before sending a single request: the old
        // accept loop parked in a 10ms poll-sleep would stretch this out;
        // the reactor accepts the backlog on one listener-readable edge.
        let mut conns: Vec<TcpStream> = (0..BURST)
            .map(|_| TcpStream::connect(addr).expect("connects"))
            .collect();
        let begun = Instant::now();
        for s in &mut conns {
            write!(s, "GET /health HTTP/1.1\r\nConnection: close\r\n\r\n").expect("writes");
        }
        for s in &mut conns {
            let mut carry = Vec::new();
            let (status, _) = next_response(s, &mut carry);
            assert_eq!(status, 200);
        }
        let elapsed = begun.elapsed();
        // One poll interval per accept would cost BURST * 10ms = 500ms on
        // the old server; the reactor finishes the lot in a few ms. The
        // bound leaves slack for a loaded CI core.
        assert!(
            elapsed < Duration::from_millis(450),
            "burst of {BURST} took {elapsed:?}: accept path is stalling"
        );
    });
}

#[test]
fn drain_serves_and_counts_pipelined_but_unanswered_requests() {
    const CLIENTS: usize = 4;
    const DEPTH: usize = 8;
    let server = Arc::new(Server::bind("127.0.0.1:0", query_snapshot(), 2).expect("binds"));
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };

    // Each client pipelines DEPTH requests in one write, then stops sending.
    let mut conns: Vec<TcpStream> = (0..CLIENTS)
        .map(|_| {
            let mut s = TcpStream::connect(addr).expect("connects");
            let burst = "GET /health HTTP/1.1\r\n\r\n".repeat(DEPTH);
            s.write_all(burst.as_bytes()).expect("writes");
            s
        })
        .collect();
    // Give the shards a moment to accept every connection (drain does not
    // accept), then pull the plug with requests still in flight.
    std::thread::sleep(Duration::from_millis(150));
    handle.store(true, Ordering::SeqCst);
    let stats: DrainStats = runner.join().expect("joins").expect("drains cleanly");

    // Exact accounting: every pipelined request — answered before or during
    // the drain — is served and counted, none double-counted.
    assert_eq!(stats.connections, CLIENTS as u64);
    assert_eq!(stats.requests, (CLIENTS * DEPTH) as u64);

    // And every client can actually read all DEPTH responses — whether they
    // were answered before the flag flipped or served by the drain itself —
    // followed by a clean close (EOF, not a reset, nothing truncated).
    for s in &mut conns {
        let mut carry = Vec::new();
        for _ in 0..DEPTH {
            let (status, _) = next_response(s, &mut carry);
            assert_eq!(status, 200);
        }
        assert!(carry.is_empty(), "bytes past the final response: {carry:?}");
        let mut rest = [0u8; 64];
        assert_eq!(
            s.read(&mut rest).expect("reads"),
            0,
            "expected EOF after drain"
        );
    }
}
