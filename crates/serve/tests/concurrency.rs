//! The daemon's determinism guarantee under fire: eight client threads
//! hammering a multi-worker server over loopback must receive, for every
//! request, bytes identical to what a single-worker server returns — and a
//! restarted server (fresh process state, same snapshot bytes) must agree
//! too.

// Test harness: aborting on a broken fixture is the correct failure mode
// (clippy.toml's allow-*-in-tests covers `#[test]` fns but not helpers).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use topple_core::Study;
use topple_lists::ListSource;
use topple_serve::snapshot::encode_study;
use topple_serve::{QuerySnapshot, Server, Snapshot};
use topple_sim::WorldConfig;

const CLIENT_THREADS: usize = 8;
const ROUNDS_PER_CLIENT: usize = 5;

fn snapshot_bytes() -> Vec<u8> {
    let study = Study::run(WorldConfig::tiny(777)).expect("tiny study");
    encode_study(&study, "tiny", &[("note".to_owned(), "hi".to_owned())])
}

fn query_snapshot(bytes: &[u8]) -> QuerySnapshot {
    QuerySnapshot::new(Snapshot::from_bytes(bytes).expect("decodes"))
}

/// The probe set: every deterministic endpoint, hit/miss/error paths alike.
fn probe_paths(qs: &QuerySnapshot) -> Vec<String> {
    let table = qs.snapshot().index.table();
    let mut paths = vec![
        "/health".to_owned(),
        "/v1/rank/tranco/absent-domain.example".to_owned(),
        "/v1/compare?a=alexa&b=tranco&k=40".to_owned(),
        "/v1/compare?a=umbrella&b=majestic&k=100".to_owned(),
        "/v1/compare?a=crux&b=trexa&k=400".to_owned(),
        "/v1/artifact/note".to_owned(),
        "/v1/artifact/missing".to_owned(),
        "/no/such/route".to_owned(),
    ];
    for source in [ListSource::Tranco, ListSource::Alexa, ListSource::Crux] {
        let cols = qs.snapshot().index.monthly(source);
        for &id in cols.ids.iter().take(4) {
            let name = table.name(id);
            paths.push(format!(
                "/v1/rank/{}/{}",
                topple_serve::query::list_url_name(source),
                name.as_str()
            ));
            paths.push(format!("/v1/movement/{}", name.as_str()));
        }
    }
    paths
}

/// One request over its own connection; returns status line + body bytes.
fn fetch(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connects");
    write!(s, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").expect("writes");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("reads");
    let status = raw.lines().next().unwrap_or("").to_owned();
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
    format!("{status}\n{body}")
}

/// Runs a server for the duration of `f`.
fn with_server<T>(
    qs: QuerySnapshot,
    workers: usize,
    f: impl FnOnce(std::net::SocketAddr) -> T,
) -> T {
    let server = Arc::new(Server::bind("127.0.0.1:0", qs, workers).expect("binds"));
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let out = f(addr);
    handle.store(true, Ordering::SeqCst);
    runner.join().expect("joins").expect("drains cleanly");
    out
}

#[test]
fn eight_threads_match_single_worker_byte_for_byte() {
    let bytes = snapshot_bytes();
    let reference_qs = query_snapshot(&bytes);
    let paths = probe_paths(&reference_qs);

    // Reference pass: one worker, sequential requests.
    let reference: Vec<String> = with_server(reference_qs, 1, |addr| {
        paths.iter().map(|p| fetch(addr, p)).collect()
    });

    // Restarted server (same bytes, fresh state), eight workers, eight
    // client threads, each walking the probe set from a different offset so
    // requests interleave differently every run.
    let paths_arc = Arc::new(paths);
    let reference_arc = Arc::new(reference);
    with_server(query_snapshot(&bytes), 8, |addr| {
        std::thread::scope(|scope| {
            for t in 0..CLIENT_THREADS {
                let paths = Arc::clone(&paths_arc);
                let reference = Arc::clone(&reference_arc);
                scope.spawn(move || {
                    for round in 0..ROUNDS_PER_CLIENT {
                        for i in 0..paths.len() {
                            let at = (i + t * 3 + round) % paths.len();
                            let got = fetch(addr, &paths[at]);
                            assert_eq!(
                                got, reference[at],
                                "thread {t} round {round}: `{}` diverged",
                                paths[at]
                            );
                        }
                    }
                });
            }
        });
    });
}

#[test]
fn responses_survive_snapshot_rewrite() {
    // Decode → re-encode → serve: the re-encoded snapshot is byte-identical,
    // so its responses (which embed the CRC-derived id) must be too.
    let bytes = snapshot_bytes();
    let rewritten = Snapshot::from_bytes(&bytes).expect("decodes").to_bytes();
    assert_eq!(bytes, rewritten);
    let qs = query_snapshot(&bytes);
    let paths = probe_paths(&qs);
    let first: Vec<String> =
        with_server(qs, 2, |addr| paths.iter().map(|p| fetch(addr, p)).collect());
    let second: Vec<String> = with_server(query_snapshot(&rewritten), 4, |addr| {
        paths.iter().map(|p| fetch(addr, p)).collect()
    });
    assert_eq!(first, second);
}
