//! Request counters and latency histogram for `/v1/metrics`.
//!
//! This is the one deliberately nondeterministic surface of the daemon:
//! counters reflect whatever traffic actually arrived, and latencies read
//! the wall clock. Everything else the server emits is a pure function of
//! the snapshot; the metrics endpoint is documented as exempt from the
//! byte-identical guarantee and the wall-clock reads below carry lint
//! directives saying so.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The routed endpoint classes we count separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /health`.
    Health,
    /// `GET /v1/rank/{list}/{domain}`.
    Rank,
    /// `GET /v1/compare`.
    Compare,
    /// `GET /v1/movement/{domain}`.
    Movement,
    /// `GET /v1/metrics`.
    Metrics,
    /// `GET /v1/artifact/{name}`.
    Artifact,
    /// Anything that did not route (404/405/400 before routing).
    Other,
}

/// All endpoint classes in report order.
const ENDPOINTS: [(Endpoint, &str); 7] = [
    (Endpoint::Health, "health"),
    (Endpoint::Rank, "rank"),
    (Endpoint::Compare, "compare"),
    (Endpoint::Movement, "movement"),
    (Endpoint::Metrics, "metrics"),
    (Endpoint::Artifact, "artifact"),
    (Endpoint::Other, "other"),
];

fn endpoint_slot(e: Endpoint) -> usize {
    match e {
        Endpoint::Health => 0,
        Endpoint::Rank => 1,
        Endpoint::Compare => 2,
        Endpoint::Movement => 3,
        Endpoint::Metrics => 4,
        Endpoint::Artifact => 5,
        Endpoint::Other => 6,
    }
}

/// Upper bounds (µs) of the latency histogram buckets; the last bucket is
/// open-ended. Powers of four from 1µs to ~16ms.
const BUCKET_BOUNDS_US: [u64; 8] = [1, 4, 16, 64, 256, 1_024, 4_096, 16_384];

/// Upper bounds of the pipelined-responses-per-flush histogram buckets; the
/// last bucket is open-ended. Powers of two from 1 to 64.
const FLUSH_BOUNDS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Lock-free request metrics, shared by every reactor shard.
#[derive(Default)]
pub struct Metrics {
    by_endpoint: [AtomicU64; ENDPOINTS.len()],
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
    latency_buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    latency_total_us: AtomicU64,
    cache_hits: AtomicU64,
    // Event-loop counters (DESIGN.md §16): how the reactor earned its
    // throughput, so the loadgen study can attribute wins.
    epoll_wakeups: AtomicU64,
    conns_accepted: AtomicU64,
    conns_reused: AtomicU64,
    flush_buckets: [AtomicU64; FLUSH_BOUNDS.len() + 1],
    hot_hits: AtomicU64,
    hot_misses: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Starts a latency measurement for one request.
    pub fn start(&self) -> RequestTimer {
        RequestTimer {
            // topple-lint: allow(wall-clock): request latency metric; /v1/metrics is exempt from the byte-identical guarantee
            begun: Instant::now(),
        }
    }

    /// Records one routed request: endpoint class, response status, and the
    /// timer started before routing.
    pub fn record(&self, endpoint: Endpoint, status: u16, timer: RequestTimer) {
        self.by_endpoint[endpoint_slot(endpoint)].fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
        let micros = timer.begun.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_total_us.fetch_add(micros, Ordering::Relaxed);
    }

    /// Notes a compare-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes one `epoll_wait` return that delivered at least one event.
    pub fn record_wakeup(&self) {
        self.epoll_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes an accepted connection.
    pub fn record_accept(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a connection reuse: the moment a connection serves its second
    /// request (so `reused` counts keep-alive connections, once each).
    pub fn record_reuse(&self) {
        self.conns_reused.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes one write-buffer flush that coalesced `responses` pipelined
    /// responses.
    pub fn record_flush(&self, responses: u64) {
        let bucket = FLUSH_BOUNDS
            .iter()
            .position(|&bound| responses <= bound)
            .unwrap_or(FLUSH_BOUNDS.len());
        self.flush_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a hot-response-cache lookup outcome on `/health`, `/v1/rank`,
    /// or `/v1/movement`.
    pub fn record_hot(&self, hit: bool) {
        if hit {
            self.hot_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hot_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Renders the `/v1/metrics` JSON body.
    pub fn render(&self, snapshot_id: &str) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"snapshot\":\"");
        out.push_str(snapshot_id);
        out.push_str("\",\"requests\":{");
        for (i, &(e, name)) in ENDPOINTS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(
                &self.by_endpoint[endpoint_slot(e)]
                    .load(Ordering::Relaxed)
                    .to_string(),
            );
        }
        out.push_str("},\"status\":{\"2xx\":");
        out.push_str(&self.status_2xx.load(Ordering::Relaxed).to_string());
        out.push_str(",\"4xx\":");
        out.push_str(&self.status_4xx.load(Ordering::Relaxed).to_string());
        out.push_str(",\"5xx\":");
        out.push_str(&self.status_5xx.load(Ordering::Relaxed).to_string());
        out.push_str("},\"compare_cache_hits\":");
        out.push_str(&self.cache_hits.load(Ordering::Relaxed).to_string());
        out.push_str(",\"event_loop\":{\"epoll_wakeups\":");
        out.push_str(&self.epoll_wakeups.load(Ordering::Relaxed).to_string());
        out.push_str(",\"accepted\":");
        out.push_str(&self.conns_accepted.load(Ordering::Relaxed).to_string());
        out.push_str(",\"reused\":");
        out.push_str(&self.conns_reused.load(Ordering::Relaxed).to_string());
        out.push_str(",\"pipelined_per_flush\":[");
        for (i, bucket) in self.flush_buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&bucket.load(Ordering::Relaxed).to_string());
        }
        out.push_str("]},\"hot_cache\":{\"hits\":");
        out.push_str(&self.hot_hits.load(Ordering::Relaxed).to_string());
        out.push_str(",\"misses\":");
        out.push_str(&self.hot_misses.load(Ordering::Relaxed).to_string());
        out.push_str("},\"latency_us\":{\"total\":");
        out.push_str(&self.latency_total_us.load(Ordering::Relaxed).to_string());
        out.push_str(",\"buckets\":[");
        for (i, bucket) in self.latency_buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&bucket.load(Ordering::Relaxed).to_string());
        }
        out.push_str("]}}");
        out
    }
}

/// An in-flight request's start time (opaque; consumed by [`Metrics::record`]).
pub struct RequestTimer {
    begun: Instant,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let m = Metrics::new();
        let t = m.start();
        m.record(Endpoint::Rank, 200, t);
        let t = m.start();
        m.record(Endpoint::Other, 404, t);
        m.record_cache_hit();
        m.record_wakeup();
        m.record_accept();
        m.record_reuse();
        m.record_flush(3);
        m.record_hot(true);
        m.record_hot(false);
        let body = m.render("tpls-v1-deadbeef-s1");
        assert!(body.contains("\"rank\":1"));
        assert!(body.contains("\"other\":1"));
        assert!(body.contains("\"2xx\":1"));
        assert!(body.contains("\"4xx\":1"));
        assert!(body.contains("\"compare_cache_hits\":1"));
        assert!(body.contains("\"event_loop\":{\"epoll_wakeups\":1,\"accepted\":1,\"reused\":1"));
        // 3 responses/flush lands in the `<=4` bucket (bounds 1,2,4,...).
        assert!(body.contains("\"pipelined_per_flush\":[0,0,1,0,0,0,0,0]"));
        assert!(body.contains("\"hot_cache\":{\"hits\":1,\"misses\":1}"));
        assert!(body.contains("tpls-v1-deadbeef-s1"));
    }

    #[test]
    fn flush_histogram_covers_all_batch_sizes() {
        let m = Metrics::new();
        for n in [1u64, 2, 5, 64, 65, 10_000] {
            m.record_flush(n);
        }
        let total: u64 = m
            .flush_buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        assert_eq!(total, 6);
        // 65 and 10_000 both land in the open-ended last bucket.
        assert_eq!(
            m.flush_buckets[FLUSH_BOUNDS.len()].load(Ordering::Relaxed),
            2
        );
    }

    #[test]
    fn buckets_cover_all_latencies() {
        let m = Metrics::new();
        for _ in 0..50 {
            let t = m.start();
            m.record(Endpoint::Health, 200, t);
        }
        let total: u64 = m
            .latency_buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        assert_eq!(total, 50);
    }
}
