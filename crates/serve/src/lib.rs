//! Snapshot store and HTTP query daemon over the columnar study index.
//!
//! A completed [`Study`](topple_core::Study) is expensive — minutes at paper
//! scale — but the questions asked of it afterwards ("where does this domain
//! rank on Tranco?", "how similar are Alexa and Umbrella at 10K?") are
//! point-lookups over the already-built columnar index. This crate splits
//! the two: [`snapshot`] persists a study's [`StudyIndex`], magnitudes, and
//! rendered report artifacts into one versioned, CRC-checksummed binary file,
//! and [`server`] serves rank/compare/movement queries from a loaded snapshot
//! over plain HTTP/1.1 — a readiness-based event loop ([`reactor`]: a thin
//! dependency-free epoll wrapper) with keep-alive pipelining and a
//! pre-rendered hot-response cache; no async runtime, no new dependencies.
//!
//! The determinism doctrine extends over the wire: for a given snapshot,
//! every response body except `/v1/metrics` is byte-for-byte identical
//! regardless of worker count, request interleaving, or process restarts.
//! Workers share the snapshot as an immutable `Arc` — reads take no locks —
//! and the compare cache is keyed purely by request parameters, so a cache
//! hit returns the same bytes a miss would have computed.
//!
//! [`StudyIndex`]: topple_core::StudyIndex

#![deny(unsafe_code)]

pub mod error;
pub mod http;
pub mod lru;
pub mod metrics;
pub mod query;
pub mod reactor;
pub mod server;
pub mod signal;
pub mod snapshot;

pub use error::{ServeError, SnapshotError};
pub use query::QuerySnapshot;
pub use server::{DrainStats, Server};
pub use snapshot::{encode_study, write_study, Snapshot, SnapshotIdentity};
