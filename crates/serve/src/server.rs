//! The daemon: a std-only HTTP/1.1 server with a bounded worker pool and
//! graceful drain.
//!
//! Architecture: the calling thread accepts connections (non-blocking, so it
//! can watch the shutdown flag) and feeds them into a bounded channel; a
//! fixed pool of workers pulls connections and serves keep-alive request
//! loops off the shared immutable [`QuerySnapshot`] — an `Arc`, so reads
//! take no locks and the hot path allocates only the response string.
//!
//! Shutdown is cooperative: flip the [`Server::handle`] flag (the CLI wires
//! it to SIGINT/SIGTERM via [`crate::signal`]), and the server stops
//! accepting, closes the channel, lets workers finish their in-flight
//! requests (socket timeouts bound how long a stalled client can hold a
//! worker), and reports drain statistics — or a typed
//! [`ServeError::DrainTimeout`] when the deadline passes with workers still
//! busy.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::ServeError;
use crate::http::{read_request, route, write_response};
use crate::lru::Lru;
use crate::metrics::Metrics;
use crate::query::QuerySnapshot;

/// Per-socket read/write timeout: bounds how long a stalled client can hold
/// a worker, which in turn bounds the drain tail.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);
/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// How long drain waits for busy workers before reporting them stuck.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);
/// Compare-cache capacity (response bodies; a few hundred bytes each).
const CACHE_CAPACITY: usize = 256;

/// What a graceful drain accomplished.
#[derive(Debug, Clone, Copy)]
pub struct DrainStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests served over the server's lifetime.
    pub requests: u64,
}

/// The query daemon, bound and ready to run.
pub struct Server {
    listener: TcpListener,
    snapshot: Arc<QuerySnapshot>,
    metrics: Arc<Metrics>,
    cache: Arc<Lru>,
    workers: usize,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with a pool
    /// of `workers` threads (clamped to at least 1).
    pub fn bind(addr: &str, snapshot: QuerySnapshot, workers: usize) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Bind {
            addr: addr.to_owned(),
            source,
        })?;
        Ok(Server {
            listener,
            snapshot: Arc::new(snapshot),
            metrics: Arc::new(Metrics::new()),
            cache: Arc::new(Lru::new(CACHE_CAPACITY)),
            workers: workers.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(ServeError::Listener)
    }

    /// The shared shutdown flag: store `true` (from any thread or a signal
    /// handler) and the accept loop begins a graceful drain.
    pub fn handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The snapshot being served.
    pub fn snapshot(&self) -> &QuerySnapshot {
        &self.snapshot
    }

    /// Accepts and serves until the shutdown flag flips, then drains.
    /// Blocks the calling thread for the server's whole life.
    pub fn run(&self) -> Result<DrainStats, ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(ServeError::Listener)?;
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(self.workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        let connections = AtomicU64::new(0);
        let requests = AtomicU64::new(0);
        let busy = AtomicUsize::new(0);
        let alive = AtomicUsize::new(self.workers);
        let mut stuck_workers = 0usize;

        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let rx = Arc::clone(&rx);
                let snapshot = Arc::clone(&self.snapshot);
                let metrics = Arc::clone(&self.metrics);
                let cache = Arc::clone(&self.cache);
                let shutdown = &self.shutdown;
                let (busy, alive, requests) = (&busy, &alive, &requests);
                scope.spawn(move || {
                    loop {
                        // Take the receiver lock only to pull the next
                        // connection; serving happens lock-free.
                        let next = {
                            let guard = match rx.lock() {
                                Ok(g) => g,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            guard.recv()
                        };
                        let Ok(stream) = next else {
                            break; // channel closed and drained: shutdown
                        };
                        busy.fetch_add(1, Ordering::SeqCst);
                        let served =
                            serve_connection(stream, &snapshot, &metrics, &cache, shutdown);
                        requests.fetch_add(served, Ordering::Relaxed);
                        busy.fetch_sub(1, Ordering::SeqCst);
                    }
                    alive.fetch_sub(1, Ordering::SeqCst);
                });
            }

            // Accept loop: non-blocking so the shutdown flag is observed
            // within one poll interval.
            while !self.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
                        let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
                        let _ = stream.set_nodelay(true);
                        connections.fetch_add(1, Ordering::Relaxed);
                        if tx.send(stream).is_err() {
                            break; // all workers gone; nothing can serve
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => {
                        // Transient accept failure (e.g. aborted handshake):
                        // back off briefly and keep accepting.
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }

            // Drain: close the channel (workers exit once it is empty) and
            // wait for in-flight requests up to the deadline.
            drop(tx);
            // topple-lint: allow(wall-clock): graceful-drain deadline; timing only, results unaffected
            let drain_begun = Instant::now();
            while alive.load(Ordering::SeqCst) > 0 {
                if drain_begun.elapsed() > DRAIN_DEADLINE {
                    stuck_workers = busy.load(Ordering::SeqCst);
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            // Falling out of the scope joins the workers; socket timeouts
            // guarantee that join terminates even for the stuck ones.
        });

        if stuck_workers > 0 {
            return Err(ServeError::DrainTimeout { stuck_workers });
        }
        Ok(DrainStats {
            connections: connections.load(Ordering::Relaxed),
            requests: requests.load(Ordering::Relaxed),
        })
    }
}

/// Serves one connection's keep-alive loop; returns requests served.
fn serve_connection(
    stream: TcpStream,
    snapshot: &QuerySnapshot,
    metrics: &Metrics,
    cache: &Lru,
    shutdown: &AtomicBool,
) -> u64 {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return 0,
    });
    let mut writer = stream;
    let mut served = 0u64;
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => break, // clean close
            Err(_) => break,   // malformed, timed out, or reset: drop it
        };
        let timer = metrics.start();
        let (endpoint, reply) = route(snapshot, metrics, cache, &request);
        // Draining: finish this response, then close so the client re-resolves.
        let keep = request.keep_alive && !shutdown.load(Ordering::SeqCst);
        let wrote = write_response(&mut writer, reply.status, &reply.body, keep);
        metrics.record(endpoint, reply.status, timer);
        served += 1;
        if wrote.is_err() || !keep {
            break;
        }
    }
    served
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{encode_study, Snapshot};
    use std::io::{Read, Write};
    use topple_core::Study;
    use topple_sim::WorldConfig;

    fn tiny_server(workers: usize) -> Server {
        let study = Study::run(WorldConfig::tiny(3)).expect("tiny study");
        let bytes = encode_study(&study, "tiny", &[]);
        let qs = QuerySnapshot::new(Snapshot::from_bytes(&bytes).expect("decodes"));
        Server::bind("127.0.0.1:0", qs, workers).expect("binds")
    }

    /// Accumulates exactly one response (headers + Content-Length body) off
    /// a keep-alive connection; a single `read` may return a partial frame.
    fn read_one_response(s: &mut TcpStream) -> String {
        let mut raw = Vec::new();
        let mut buf = [0u8; 2048];
        loop {
            let text = String::from_utf8_lossy(&raw).into_owned();
            if let Some(head_end) = text.find("\r\n\r\n") {
                let content_len: usize = text
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .and_then(|v| v.trim().parse().ok())
                    .expect("content-length");
                if raw.len() >= head_end + 4 + content_len {
                    return text;
                }
            }
            let n = s.read(&mut buf).expect("reads");
            assert!(n > 0, "connection closed mid-response");
            raw.extend_from_slice(&buf[..n]);
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).expect("connects");
        write!(s, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").expect("writes");
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("reads");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status");
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
        (status, body)
    }

    #[test]
    fn serves_and_drains_gracefully() {
        let server = Arc::new(tiny_server(2));
        let addr = server.local_addr().expect("addr");
        let handle = server.handle();
        let runner = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run())
        };
        let (status, body) = get(addr, "/health");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
        let (status, _) = get(addr, "/v1/metrics");
        assert_eq!(status, 200);
        handle.store(true, Ordering::SeqCst);
        let stats = runner.join().expect("joins").expect("drains");
        assert!(stats.connections >= 2);
        assert!(stats.requests >= 2);
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = Arc::new(tiny_server(1));
        let addr = server.local_addr().expect("addr");
        let handle = server.handle();
        let runner = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run())
        };
        let mut s = TcpStream::connect(addr).expect("connects");
        for _ in 0..3 {
            write!(s, "GET /health HTTP/1.1\r\n\r\n").expect("writes");
            let text = read_one_response(&mut s);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
            assert!(text.contains("keep-alive"), "{text}");
        }
        drop(s);
        handle.store(true, Ordering::SeqCst);
        let stats = runner.join().expect("joins").expect("drains");
        assert_eq!(stats.requests, 3);
    }
}
