//! The daemon: a readiness-based HTTP/1.1 event loop with keep-alive
//! pipelining and graceful drain.
//!
//! Architecture (DESIGN.md §16): [`Server::run`] spawns N shard threads.
//! Each shard owns one [`Epoll`] instance and a slab of edge-triggered
//! non-blocking connections; every shard also registers the shared listener,
//! so whichever shard wakes first accepts — in a loop, until `EWOULDBLOCK`,
//! which is what removes the old accept-poll latency (a burst of connections
//! is drained the moment the backlog becomes readable, not one per poll
//! tick). Accepted connections stay on the accepting shard for life.
//!
//! Per connection the shard runs a small state machine: read until
//! `WouldBlock`, parse every complete pipelined request out of the read
//! buffer in place ([`parse_request`]), append each response to the write
//! buffer ([`write_response_into`]), then flush the whole batch with as few
//! `write` calls as the socket accepts. Responses to N pipelined requests
//! coalesce into one flush. The buffers are reused for the connection's
//! lifetime, response bodies for hot endpoints come pre-rendered from the
//! snapshot's [`HotCache`], and header formatting is heap-free — a warmed
//! keep-alive connection serves requests with zero allocations (pinned by
//! `tests/serve_alloc.rs`).
//!
//! Shutdown is cooperative: flip the [`Server::handle`] flag (the CLI wires
//! it to SIGINT/SIGTERM via [`crate::signal`]) and every shard stops
//! accepting, then drains: requests already pipelined into a read buffer —
//! even ones the client wrote but the server had not yet parsed — are
//! served and counted, the final response on each connection carries
//! `Connection: close`, and buffered bytes are flushed until written or the
//! deadline passes ([`ServeError::DrainTimeout`] reports connections still
//! unflushed).
//!
//! [`Epoll`]: crate::reactor::Epoll
//! [`HotCache`]: crate::query::QuerySnapshot
//! [`parse_request`]: crate::http::parse_request
//! [`write_response_into`]: crate::http::write_response_into

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::ServeError;
use crate::http::{parse_request, route, write_error_into, write_response_into, Parse};
use crate::lru::Lru;
use crate::metrics::Metrics;
use crate::query::QuerySnapshot;
use crate::reactor::{Epoll, EventBuffer, Readiness};

/// Upper bound on descriptors delivered per `epoll_wait`.
const EVENT_CAPACITY: usize = 1_024;
/// `epoll_wait` timeout: bounds how long a parked shard takes to notice the
/// shutdown flag.
const WAIT_TIMEOUT_MS: i32 = 20;
/// Bytes read per `read` call on the stack before landing in the
/// connection's buffer.
const READ_CHUNK: usize = 16 * 1024;
/// Stop parsing further pipelined requests once this many response bytes
/// are buffered; flushing first bounds memory under deep pipelines.
const WBUF_SOFT_LIMIT: usize = 256 * 1024;
/// A connection whose unparsed input exceeds this is flooding without
/// reading responses; fail it closed.
const RBUF_LIMIT: usize = 2 * 1024 * 1024;
/// How long drain retries flushing buffered responses before reporting the
/// connection stuck.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);
/// Compare-cache capacity (response bodies; a few hundred bytes each).
const CACHE_CAPACITY: usize = 256;
/// Slab capacity reserved per shard at startup.
const SLAB_RESERVE: usize = 64;
/// Token under which every shard registers the shared listener.
const LISTENER_TOKEN: u64 = u64::MAX;

/// What a graceful drain accomplished.
#[derive(Debug, Clone, Copy)]
pub struct DrainStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests served over the server's lifetime.
    pub requests: u64,
}

/// The query daemon, bound and ready to run.
pub struct Server {
    listener: TcpListener,
    snapshot: Arc<QuerySnapshot>,
    metrics: Arc<Metrics>,
    cache: Arc<Lru>,
    shards: usize,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with `shards`
    /// reactor threads (clamped to at least 1).
    pub fn bind(addr: &str, snapshot: QuerySnapshot, shards: usize) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Bind {
            addr: addr.to_owned(),
            source,
        })?;
        Ok(Server {
            listener,
            snapshot: Arc::new(snapshot),
            metrics: Arc::new(Metrics::new()),
            cache: Arc::new(Lru::new(CACHE_CAPACITY)),
            shards: shards.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(ServeError::Listener)
    }

    /// The shared shutdown flag: store `true` (from any thread or a signal
    /// handler) and every shard begins a graceful drain.
    pub fn handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The snapshot being served.
    pub fn snapshot(&self) -> &QuerySnapshot {
        &self.snapshot
    }

    /// Runs the shard event loops until the shutdown flag flips, then
    /// drains. Blocks the calling thread for the server's whole life.
    pub fn run(&self) -> Result<DrainStats, ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(ServeError::Listener)?;
        let connections = AtomicU64::new(0);
        let requests = AtomicU64::new(0);

        let shard_results: Vec<Result<usize, ServeError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards)
                .map(|_| scope.spawn(|| self.shard_loop(&connections, &requests)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(ServeError::Reactor(io::Error::other("shard panicked")))
                    })
                })
                .collect()
        });

        let mut stuck_connections = 0usize;
        for result in shard_results {
            stuck_connections += result?;
        }
        if stuck_connections > 0 {
            return Err(ServeError::DrainTimeout { stuck_connections });
        }
        Ok(DrainStats {
            connections: connections.load(Ordering::Relaxed),
            requests: requests.load(Ordering::Relaxed),
        })
    }

    /// One shard: an epoll instance, a connection slab, and the event loop.
    /// Returns the number of connections left unflushed at drain deadline.
    fn shard_loop(
        &self,
        connections: &AtomicU64,
        requests: &AtomicU64,
    ) -> Result<usize, ServeError> {
        let epoll = Epoll::new().map_err(ServeError::Reactor)?;
        epoll
            .register_read(self.listener.as_raw_fd(), LISTENER_TOKEN)
            .map_err(ServeError::Reactor)?;
        let mut events = EventBuffer::with_capacity(EVENT_CAPACITY);
        let mut shard = Shard {
            server: self,
            epoll,
            slab: Vec::with_capacity(SLAB_RESERVE),
            free: Vec::with_capacity(SLAB_RESERVE),
            connections,
            requests,
        };

        while !self.shutdown.load(Ordering::SeqCst) {
            let n = shard
                .server
                .wait(&shard.epoll, &mut events)
                .map_err(ServeError::Reactor)?;
            if n == 0 {
                continue;
            }
            self.metrics.record_wakeup();
            for ev in events.iter() {
                shard.dispatch(ev);
            }
        }

        Ok(shard.drain())
    }

    fn wait(&self, epoll: &Epoll, events: &mut EventBuffer) -> io::Result<usize> {
        epoll.wait(events, WAIT_TIMEOUT_MS)
    }
}

/// One connection's state: the socket plus its reusable buffers.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet parsed into requests.
    rbuf: Vec<u8>,
    /// Response bytes not yet written; `wpos` marks the written prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Close once `wbuf` is fully flushed (Connection: close, a 400, drain).
    close_after_flush: bool,
    /// The peer will send no more bytes (EOF observed).
    peer_eof: bool,
    /// Requests served on this connection (feeds the reuse metric).
    served: u64,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::with_capacity(4 * 1024),
            wbuf: Vec::with_capacity(16 * 1024),
            wpos: 0,
            close_after_flush: false,
            peer_eof: false,
            served: 0,
        }
    }

    fn has_pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// What a read pass learned about the connection.
enum Fill {
    /// Socket drained to `WouldBlock` (possibly after an EOF).
    Drained,
    /// Unrecoverable socket error (reset, torn connection): close it.
    Broken,
}

/// Per-thread reactor state: the epoll instance plus the connection slab.
struct Shard<'a> {
    server: &'a Server,
    epoll: Epoll,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    connections: &'a AtomicU64,
    requests: &'a AtomicU64,
}

impl Shard<'_> {
    /// Routes one readiness event to its handler.
    fn dispatch(&mut self, ev: Readiness) {
        if ev.token == LISTENER_TOKEN {
            self.accept_burst();
            return;
        }
        let slot = ev.token as usize;
        // Stale tokens (connection closed earlier in this batch) miss here.
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if ev.closed {
            self.close(slot);
            return;
        }
        if ev.readable {
            if let Fill::Broken = fill(conn) {
                self.close(slot);
                return;
            }
        }
        self.pump(slot);
    }

    /// Accepts until the backlog is empty — never one-per-wakeup, so a
    /// connection burst incurs no poll-interval queueing.
    fn accept_burst(&mut self) {
        loop {
            match self.server.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue; // dead on arrival; drop it
                    }
                    let _ = stream.set_nodelay(true);
                    self.connections.fetch_add(1, Ordering::Relaxed);
                    self.server.metrics.record_accept();
                    let fd = stream.as_raw_fd();
                    let slot = match self.free.pop() {
                        Some(s) => s,
                        None => {
                            self.slab.push(None);
                            self.slab.len() - 1
                        }
                    };
                    if self.epoll.register(fd, slot as u64).is_err() {
                        self.free.push(slot);
                        continue; // conn dropped; client sees a reset
                    }
                    self.slab[slot] = Some(Conn::new(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failure (e.g. aborted handshake): the
                // listener stays registered; the next readiness retries.
                Err(_) => break,
            }
        }
    }

    /// Parses and responds to buffered requests, flushing between batches,
    /// until no further progress is possible; closes the connection when
    /// its protocol life is over.
    fn pump(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let responses = self.server.process_buffered(conn, self.requests);
            let flushed_clean = match flush(conn) {
                Ok(()) => !conn.has_pending_write(),
                Err(_) => {
                    self.close(slot);
                    return;
                }
            };
            if conn.close_after_flush && flushed_clean {
                self.close(slot);
                return;
            }
            if conn.peer_eof && flushed_clean && !has_complete_request(&conn.rbuf) {
                // Peer is done sending, everything owed is written: the
                // keep-alive conversation is over.
                self.close(slot);
                return;
            }
            // Another round only if this one both produced responses and
            // fully flushed them (i.e. the soft limit interrupted parsing).
            if responses == 0 || !flushed_clean {
                return;
            }
            if !has_complete_request(self.slab[slot].as_ref().map_or(&[][..], |c| &c.rbuf)) {
                return;
            }
        }
    }

    /// Releases a connection: the socket drop closes the fd, which also
    /// removes it from the epoll interest set.
    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.slab.get_mut(slot).and_then(Option::take) {
            drop(conn);
            self.free.push(slot);
        }
    }

    /// Graceful drain: serve every request already pipelined into a read
    /// buffer (clients that wrote before the signal landed get all their
    /// responses, the last marked `Connection: close`), then flush until
    /// done or deadline. Returns connections still unflushed.
    fn drain(&mut self) -> usize {
        // topple-lint: allow(wall-clock): graceful-drain deadline; timing only, results unaffected
        let deadline = Instant::now() + DRAIN_DEADLINE;
        let mut stuck = 0usize;
        for slot in 0..self.slab.len() {
            let Some(conn) = self.slab[slot].as_mut() else {
                continue;
            };
            // Pick up bytes that arrived since the last readiness event:
            // they may hold complete, unserved pipelined requests.
            let _ = fill(conn);
            loop {
                let responses = self.server.process_buffered(conn, self.requests);
                flush_blocking(conn, deadline);
                if responses == 0 || conn.has_pending_write() {
                    break;
                }
            }
            if conn.has_pending_write() {
                stuck += 1;
            }
            self.slab[slot] = None;
        }
        stuck
    }
}

impl Server {
    /// Parses every complete request at the front of `conn.rbuf` (up to the
    /// write-buffer soft limit), appends the responses to `conn.wbuf`, and
    /// compacts the read buffer. Returns responses appended.
    fn process_buffered(&self, conn: &mut Conn, requests: &AtomicU64) -> u64 {
        // topple-lint: hot-path-begin
        // Draining: serve everything already buffered, then close. The
        // *last* buffered response carries `Connection: close`; earlier
        // pipelined ones keep their requested semantics so the client reads
        // a well-formed sequence.
        let draining = self.shutdown.load(Ordering::SeqCst);
        let remaining = if draining {
            count_complete_requests(&conn.rbuf)
        } else {
            0
        };
        let mut consumed = 0usize;
        let mut responses = 0u64;
        while !conn.close_after_flush {
            match parse_request(&conn.rbuf[consumed..]) {
                Parse::Complete(request, n) => {
                    let timer = self.metrics.start();
                    let last_of_drain = draining && responses + 1 >= remaining;
                    let keep = request.keep_alive && !last_of_drain;
                    let routed = route(&self.snapshot, &self.metrics, &self.cache, &request);
                    write_response_into(
                        &mut conn.wbuf,
                        routed.status,
                        routed.body.as_bytes(),
                        keep,
                    );
                    self.metrics.record(routed.endpoint, routed.status, timer);
                    requests.fetch_add(1, Ordering::Relaxed);
                    conn.served += 1;
                    if conn.served == 2 {
                        self.metrics.record_reuse();
                    }
                    responses += 1;
                    consumed += n;
                    if !keep {
                        // Pipelined bytes after a `Connection: close` request
                        // are a protocol error; discard them.
                        consumed = conn.rbuf.len();
                        conn.close_after_flush = true;
                        break;
                    }
                    if conn.wbuf.len() - conn.wpos >= WBUF_SOFT_LIMIT {
                        break; // flush before parsing deeper
                    }
                }
                Parse::Partial => {
                    if conn.rbuf.len() - consumed > RBUF_LIMIT {
                        let timer = self.metrics.start();
                        write_error_into(&mut conn.wbuf, 400, "request too large", false);
                        self.metrics
                            .record(crate::metrics::Endpoint::Other, 400, timer);
                        responses += 1;
                        consumed = conn.rbuf.len();
                        conn.close_after_flush = true;
                    }
                    break;
                }
                Parse::Bad(message) => {
                    // Fail closed: one 400 naming the violation, then close.
                    let timer = self.metrics.start();
                    write_error_into(&mut conn.wbuf, 400, message, false);
                    self.metrics
                        .record(crate::metrics::Endpoint::Other, 400, timer);
                    responses += 1;
                    consumed = conn.rbuf.len();
                    conn.close_after_flush = true;
                    break;
                }
            }
        }
        if consumed > 0 {
            let len = conn.rbuf.len();
            conn.rbuf.copy_within(consumed.., 0);
            conn.rbuf.truncate(len - consumed);
        }
        if responses > 0 {
            self.metrics.record_flush(responses);
        }
        responses
        // topple-lint: hot-path-end
    }
}

/// Reads until `WouldBlock`/EOF, appending to the connection's read buffer.
fn fill(conn: &mut Conn) -> Fill {
    // topple-lint: hot-path-begin
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_eof = true;
                return Fill::Drained;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                if conn.rbuf.len() > RBUF_LIMIT + READ_CHUNK {
                    // Flooding past every processing bound: stop reading;
                    // process_buffered fails the connection closed.
                    return Fill::Drained;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Fill::Drained,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Fill::Broken,
        }
    }
    // topple-lint: hot-path-end
}

/// Writes pending response bytes until done or `WouldBlock` (the next
/// writable edge resumes). `Err` means the connection is broken.
fn flush(conn: &mut Conn) -> io::Result<()> {
    // topple-lint: hot-path-begin
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(io::Error::from(io::ErrorKind::WriteZero)),
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    conn.wbuf.clear();
    conn.wpos = 0;
    Ok(())
    // topple-lint: hot-path-end
}

/// Drain-time flush: retry `WouldBlock` with short sleeps until the bytes
/// are out or the deadline passes.
fn flush_blocking(conn: &mut Conn, deadline: Instant) {
    loop {
        match flush(conn) {
            Ok(()) if !conn.has_pending_write() => return,
            Ok(()) => {
                // topple-lint: allow(wall-clock): graceful-drain deadline; timing only, results unaffected
                if Instant::now() >= deadline {
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // Peer gone: nothing left to deliver.
                conn.wbuf.clear();
                conn.wpos = 0;
                return;
            }
        }
    }
}

/// True when the buffer's front holds at least one complete request.
fn has_complete_request(buf: &[u8]) -> bool {
    matches!(parse_request(buf), Parse::Complete(..) | Parse::Bad(_))
}

/// How many complete requests sit back-to-back at the buffer's front.
fn count_complete_requests(buf: &[u8]) -> u64 {
    let mut at = 0usize;
    let mut count = 0u64;
    while let Parse::Complete(_, n) = parse_request(&buf[at..]) {
        at += n;
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{encode_study, Snapshot};
    use topple_core::Study;
    use topple_sim::WorldConfig;

    fn tiny_server(shards: usize) -> Server {
        let study = Study::run(WorldConfig::tiny(3)).expect("tiny study");
        let bytes = encode_study(&study, "tiny", &[]);
        let qs = QuerySnapshot::new(Snapshot::from_bytes(&bytes).expect("decodes"));
        Server::bind("127.0.0.1:0", qs, shards).expect("binds")
    }

    /// Consumes exactly one response (headers + Content-Length body) off a
    /// keep-alive connection. `carry` holds bytes read past the frame (a
    /// pipelined server coalesces responses, so one `read` may return
    /// several) and must be reused across calls on the same stream.
    fn read_one_response(s: &mut TcpStream, carry: &mut Vec<u8>) -> String {
        let mut buf = [0u8; 2048];
        loop {
            let text = String::from_utf8_lossy(carry).into_owned();
            if let Some(head_end) = text.find("\r\n\r\n") {
                let content_len: usize = text
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .and_then(|v| v.trim().parse().ok())
                    .expect("content-length");
                let frame_len = head_end + 4 + content_len;
                if carry.len() >= frame_len {
                    let response = String::from_utf8_lossy(&carry[..frame_len]).into_owned();
                    carry.drain(..frame_len);
                    return response;
                }
            }
            let n = s.read(&mut buf).expect("reads");
            assert!(n > 0, "connection closed mid-response");
            carry.extend_from_slice(&buf[..n]);
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).expect("connects");
        write!(s, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").expect("writes");
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("reads");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status");
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
        (status, body)
    }

    #[test]
    fn serves_and_drains_gracefully() {
        let server = Arc::new(tiny_server(2));
        let addr = server.local_addr().expect("addr");
        let handle = server.handle();
        let runner = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run())
        };
        let (status, body) = get(addr, "/health");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
        let (status, _) = get(addr, "/v1/metrics");
        assert_eq!(status, 200);
        handle.store(true, Ordering::SeqCst);
        let stats = runner.join().expect("joins").expect("drains");
        assert!(stats.connections >= 2);
        assert!(stats.requests >= 2);
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = Arc::new(tiny_server(1));
        let addr = server.local_addr().expect("addr");
        let handle = server.handle();
        let runner = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run())
        };
        let mut s = TcpStream::connect(addr).expect("connects");
        let mut carry = Vec::new();
        for _ in 0..3 {
            write!(s, "GET /health HTTP/1.1\r\n\r\n").expect("writes");
            let text = read_one_response(&mut s, &mut carry);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
            assert!(text.contains("keep-alive"), "{text}");
        }
        drop(s);
        handle.store(true, Ordering::SeqCst);
        let stats = runner.join().expect("joins").expect("drains");
        assert_eq!(stats.requests, 3);
    }

    #[test]
    fn pipelined_requests_coalesce_into_ordered_responses() {
        let server = Arc::new(tiny_server(1));
        let addr = server.local_addr().expect("addr");
        let handle = server.handle();
        let runner = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run())
        };
        let mut s = TcpStream::connect(addr).expect("connects");
        // Three requests in one write; responses must come back in order.
        let burst = "GET /health HTTP/1.1\r\n\r\n\
                     GET /nope HTTP/1.1\r\n\r\n\
                     GET /health HTTP/1.1\r\n\r\n";
        s.write_all(burst.as_bytes()).expect("writes");
        let mut carry = Vec::new();
        let first = read_one_response(&mut s, &mut carry);
        let second = read_one_response(&mut s, &mut carry);
        let third = read_one_response(&mut s, &mut carry);
        assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
        assert!(second.starts_with("HTTP/1.1 404 Not Found"), "{second}");
        assert!(third.starts_with("HTTP/1.1 200 OK"), "{third}");
        drop(s);
        handle.store(true, Ordering::SeqCst);
        let stats = runner.join().expect("joins").expect("drains");
        assert_eq!(stats.requests, 3);
    }

    #[test]
    fn oversized_request_line_is_rejected_with_400() {
        let server = Arc::new(tiny_server(1));
        let addr = server.local_addr().expect("addr");
        let handle = server.handle();
        let runner = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run())
        };
        let mut s = TcpStream::connect(addr).expect("connects");
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(32 * 1024));
        s.write_all(long.as_bytes()).expect("writes");
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("reads");
        assert!(raw.starts_with("HTTP/1.1 400 Bad Request"), "{raw}");
        assert!(raw.contains("Connection: close"), "{raw}");
        handle.store(true, Ordering::SeqCst);
        runner.join().expect("joins").expect("drains");
    }
}
