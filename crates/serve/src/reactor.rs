//! A thin, dependency-free `epoll` wrapper: the readiness core of the
//! event-loop server.
//!
//! The daemon's worker model (DESIGN.md §16) is N shard threads, each owning
//! one epoll instance and a slab of non-blocking connections. This module is
//! the only place that talks to the kernel's readiness API, and it does so
//! the same way [`crate::signal`] talks to `signal(2)`: direct `extern "C"`
//! declarations against the platform's own symbols — no `libc` crate, no
//! async runtime, just the four calls the loop needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `close`).
//!
//! Everything is sized for the hot path: [`EventBuffer`] is allocated once
//! per shard and refilled in place by every [`Epoll::wait`], so a server
//! parked on readiness performs zero heap allocations per wakeup.
//!
//! Linux-only by construction (epoll is a Linux API); the crate's CI and
//! deployment targets are Linux. The `unsafe` here is confined to the FFI
//! calls themselves and carries the crate-level `deny(unsafe_code)`
//! carve-out, mirroring `signal.rs`.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel declares
/// it `__attribute__((packed))` there and only there); natural layout on
/// every other architecture.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    /// `epoll_create1(2)`.
    fn epoll_create1(flags: i32) -> i32;
    /// `epoll_ctl(2)`.
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    /// `epoll_wait(2)`.
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    /// `close(2)` — for the epoll fd itself on drop.
    fn close(fd: i32) -> i32;
}

/// One readiness fact delivered by [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Readiness {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// Data can be read (or a peer hangup made the stream readable).
    pub readable: bool,
    /// The socket's send buffer has room again.
    pub writable: bool,
    /// Error or hangup: the connection is over, whatever else is set.
    pub closed: bool,
}

/// A reusable `epoll_wait` output buffer; allocate once per shard.
pub struct EventBuffer {
    raw: Vec<EpollEvent>,
    filled: usize,
}

impl EventBuffer {
    /// A buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Self {
        EventBuffer {
            raw: vec![EpollEvent { events: 0, data: 0 }; capacity.clamp(1, i32::MAX as usize)],
            filled: 0,
        }
    }

    /// Readiness facts from the most recent [`Epoll::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Readiness> + '_ {
        self.raw[..self.filled].iter().map(|e| {
            let bits = e.events;
            Readiness {
                token: e.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP) != 0,
            }
        })
    }

    /// Events delivered by the most recent wait.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True when the most recent wait timed out with nothing ready.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }
}

/// One epoll instance: register descriptors with a token, wait for
/// readiness.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a fresh (close-on-exec) epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers; a negative return is reported
        // through errno, which `last_os_error` reads.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    /// Registers `fd` for edge-triggered read+write readiness under `token`.
    ///
    /// Edge-triggered is the contract the shard loop is written against:
    /// after a wakeup it must read/accept/write until `WouldBlock`, and in
    /// exchange never re-arms interest on the hot path.
    pub fn register(&self, fd: RawFd, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` for edge-triggered *read-only* readiness (the
    /// listener: it is never written to).
    pub fn register_read(&self, fd: RawFd, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: EPOLLIN | EPOLLET,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Removes `fd` from the interest set. Dropping a registered socket
    /// also removes it implicitly; this exists for the explicit paths.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: the event argument is ignored for DEL on any kernel this
        // code runs on (it is only required to be non-null pre-2.6.9).
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Waits up to `timeout_ms` (−1 blocks indefinitely) and fills `buf`.
    /// Returns the number of descriptors with events; zero is a timeout.
    /// Allocation-free: events land in `buf`'s fixed storage.
    pub fn wait(&self, buf: &mut EventBuffer, timeout_ms: i32) -> io::Result<usize> {
        buf.filled = 0;
        // SAFETY: the buffer pointer is valid for `capacity` events for the
        // duration of the call, and the kernel writes at most that many.
        let rc = unsafe {
            epoll_wait(
                self.fd,
                buf.raw.as_mut_ptr(),
                buf.raw.len() as i32,
                timeout_ms,
            )
        };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                // A signal landed mid-wait (SIGTERM starting a drain does
                // exactly this); report an empty batch so the caller's loop
                // re-checks its shutdown flag.
                return Ok(0);
            }
            return Err(e);
        }
        buf.filled = rc as usize;
        Ok(buf.filled)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: closing an fd we exclusively own.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn wait_times_out_empty() {
        let ep = Epoll::new().expect("epoll");
        let mut buf = EventBuffer::with_capacity(8);
        let n = ep.wait(&mut buf, 0).expect("waits");
        assert_eq!(n, 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn listener_readiness_fires_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        listener.set_nonblocking(true).expect("nonblocking");
        let ep = Epoll::new().expect("epoll");
        ep.register_read(listener.as_raw_fd(), 7).expect("register");
        let mut buf = EventBuffer::with_capacity(8);
        assert_eq!(ep.wait(&mut buf, 0).expect("waits"), 0, "idle at first");

        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connects");
        let n = ep.wait(&mut buf, 1_000).expect("waits");
        assert_eq!(n, 1);
        let ev = buf.iter().next().expect("one event");
        assert_eq!(ev.token, 7);
        assert!(ev.readable);
    }

    #[test]
    fn edge_triggered_stream_reports_read_and_write() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connects");
        let (server_side, _) = listener.accept().expect("accepts");
        server_side.set_nonblocking(true).expect("nonblocking");

        let ep = Epoll::new().expect("epoll");
        ep.register(server_side.as_raw_fd(), 42).expect("register");
        let mut buf = EventBuffer::with_capacity(8);

        // Fresh socket: writable edge arrives immediately.
        let n = ep.wait(&mut buf, 1_000).expect("waits");
        assert!(n >= 1);
        assert!(buf.iter().any(|e| e.token == 42 && e.writable));

        // Bytes from the peer: readable edge.
        client.write_all(b"ping").expect("writes");
        let n = ep.wait(&mut buf, 1_000).expect("waits");
        assert!(n >= 1);
        assert!(buf.iter().any(|e| e.token == 42 && e.readable));

        // Drain the bytes; no new edge without new bytes.
        let mut sink = [0u8; 16];
        let mut s = &server_side;
        assert_eq!(Read::read(&mut s, &mut sink).expect("reads"), 4);
        assert_eq!(ep.wait(&mut buf, 0).expect("waits"), 0);

        ep.deregister(server_side.as_raw_fd()).expect("deregister");
    }
}
