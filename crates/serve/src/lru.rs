//! A small sharded LRU for hot compare cells.
//!
//! `/v1/compare` recomputes a sorted top-k cut pair per request; repeated
//! queries for the same `(a, b, k)` cell — the common dashboard pattern —
//! hit this cache instead. Keys are the request parameters alone and values
//! are the full response bodies, so a hit returns exactly the bytes a miss
//! would have computed: the cache can change latency, never content.
//!
//! Sharding keeps the hot path to one short `Mutex` over a tiny `Vec` per
//! shard. Entries are scanned linearly (capacities are double-digit) and
//! moved to the front on hit; no hash map is ever iterated, so determinism
//! is structural, not incidental.

use std::sync::{Arc, Mutex};

/// Shards in the cache. A power of two so shard selection is a mask.
const SHARDS: usize = 8;

/// One shard: most-recently-used first.
struct Shard {
    entries: Vec<(u64, Arc<str>)>,
}

/// Sharded LRU from a `u64` key to a shared response body. Values are
/// `Arc<str>` so a hit hands back the cached bytes with a reference-count
/// bump — no clone of the body, no heap allocation on the serve hot path.
pub struct Lru {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
}

impl Lru {
    /// A cache holding at most `capacity` entries across all shards
    /// (rounded up to a multiple of the shard count).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        Lru {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: Vec::with_capacity(per_shard),
                    })
                })
                .collect(),
            per_shard,
        }
    }

    /// Locks the shard for `key`, recovering from a poisoned mutex: the
    /// cached values are plain strings, always valid, so a panicked peer
    /// cannot have left a shard half-written in any way that matters.
    fn shard(&self, key: u64) -> std::sync::MutexGuard<'_, Shard> {
        let at = (key as usize) & (SHARDS - 1);
        match self.shards[at].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks `key` up, moving it to the front of its shard on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<str>> {
        let mut shard = self.shard(key);
        let at = shard.entries.iter().position(|(k, _)| *k == key)?;
        let entry = shard.entries.remove(at);
        let value = Arc::clone(&entry.1);
        shard.entries.insert(0, entry);
        Some(value)
    }

    /// Inserts at the front, evicting the least-recently-used entry when the
    /// shard is full. Racing inserts of the same key keep one copy.
    pub fn insert(&self, key: u64, value: Arc<str>) {
        let mut shard = self.shard(key);
        if let Some(at) = shard.entries.iter().position(|(k, _)| *k == key) {
            shard.entries.remove(at);
        }
        shard.entries.insert(0, (key, value));
        let cap = self.per_shard;
        shard.entries.truncate(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let lru = Lru::new(16);
        assert_eq!(lru.get(7), None);
        lru.insert(7, "seven".into());
        assert_eq!(lru.get(7).as_deref(), Some("seven"));
    }

    #[test]
    fn evicts_least_recent_within_a_shard() {
        let lru = Lru::new(SHARDS); // one entry per shard
                                    // Two keys in the same shard: the second insert evicts the first.
        let (a, b) = (8, 16);
        lru.insert(a, "a".into());
        lru.insert(b, "b".into());
        assert_eq!(lru.get(a), None);
        assert_eq!(lru.get(b).as_deref(), Some("b"));
    }

    #[test]
    fn reinsert_replaces() {
        let lru = Lru::new(16);
        lru.insert(3, "old".into());
        lru.insert(3, "new".into());
        assert_eq!(lru.get(3).as_deref(), Some("new"));
    }
}
