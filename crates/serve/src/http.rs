//! Minimal HTTP/1.1 parsing, routing, and response writing — incremental
//! and allocation-free on the hot path.
//!
//! The daemon speaks just enough HTTP for its GET endpoints: request line +
//! headers (bounded in count and length), keep-alive by HTTP/1.1 default,
//! `Connection: close` honored both ways, and full pipelining — a read
//! buffer may hold any number of back-to-back requests, each parsed in place
//! by [`parse_request`] without copying a byte. Anything outside that
//! envelope — an oversized line, a malformed request line, too many headers —
//! gets a `400` and a closed connection, never a panic: the socket is the
//! untrusted input here, exactly like snapshot bytes are for the store.
//!
//! Responses are appended to the connection's reusable write buffer by
//! [`write_response_into`]; header rendering formats integers into a stack
//! array, so a warmed keep-alive connection serves hot requests with zero
//! heap allocations (pinned by `crates/serve/tests/serve_alloc.rs`).

use std::io::{self, Write};
use std::sync::Arc;

use crate::lru::Lru;
use crate::metrics::{Endpoint, Metrics};
use crate::query::{parse_list, QuerySnapshot, MAX_K};

/// Longest accepted request or header line, bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Most headers read before the request is rejected.
pub const MAX_HEADERS: usize = 64;

/// One parsed request, borrowing the connection's read buffer.
#[derive(Debug, Clone, Copy)]
pub struct RequestRef<'a> {
    /// Request method, uppercase as sent.
    pub method: &'a str,
    /// Path portion of the target (before `?`).
    pub path: &'a str,
    /// Raw query string (after `?`, may be empty).
    pub query: &'a str,
    /// Whether the client allows the connection to stay open.
    pub keep_alive: bool,
}

impl<'a> RequestRef<'a> {
    /// The first value of query parameter `key`, unescaped as-is.
    pub fn param(&self, key: &str) -> Option<&'a str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// The outcome of parsing the front of a read buffer.
#[derive(Debug)]
pub enum Parse<'a> {
    /// One complete request; `.1` is the bytes it consumed (head + body).
    Complete(RequestRef<'a>, usize),
    /// No complete request yet — read more bytes and try again.
    Partial,
    /// The stream is unsalvageable; respond `400` with this message and
    /// close. Fail-closed: an oversized or malformed frame never silently
    /// desynchronizes the connection.
    Bad(&'static str),
}

/// Finds the end of the line starting at `from` (the index of its `\n`),
/// enforcing [`MAX_LINE`] on the line's length.
fn find_line_end(buf: &[u8], from: usize) -> Result<Option<usize>, &'static str> {
    // A valid line has content of at most MAX_LINE plus `\r\n`, so its `\n`
    // sits within the first MAX_LINE + 2 bytes; more buffered bytes than
    // that without a newline is fail-closed, even before the line ends.
    let window = &buf[from..];
    let searched = window.len().min(MAX_LINE + 2);
    match window[..searched].iter().position(|&b| b == b'\n') {
        Some(at) => Ok(Some(from + at)),
        None if window.len() > MAX_LINE + 2 => Err("request line too long"),
        None => Ok(None),
    }
}

/// The line's text with the terminating `\n` (and optional `\r`) stripped.
fn line_text(buf: &[u8], start: usize, newline: usize) -> Result<&str, &'static str> {
    let mut end = newline;
    if end > start && buf[end - 1] == b'\r' {
        end -= 1;
    }
    if end - start > MAX_LINE {
        return Err("request line too long");
    }
    std::str::from_utf8(&buf[start..end]).map_err(|_| "non-UTF-8 line")
}

/// Parses one request from the front of `buf`, incrementally: a buffer
/// holding half a request (split anywhere, even mid-line) is `Partial`, and
/// re-parsing after more bytes arrive yields exactly what a single-shot
/// parse of the whole stream would have (pinned by the byte-split proptest
/// in `crates/serve/tests/http_framing.rs`).
pub fn parse_request(buf: &[u8]) -> Parse<'_> {
    // Request line.
    let Some(line_end) = (match find_line_end(buf, 0) {
        Ok(v) => v,
        Err(m) => return Parse::Bad(m),
    }) else {
        return Parse::Partial;
    };
    let request_line = match line_text(buf, 0, line_end) {
        Ok(t) => t,
        Err(m) => return Parse::Bad(m),
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Parse::Bad("malformed request line");
    };

    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_len = 0usize;
    let mut at = line_end + 1;
    for _ in 0..MAX_HEADERS {
        let Some(line_end) = (match find_line_end(buf, at) {
            Ok(v) => v,
            Err(m) => return Parse::Bad(m),
        }) else {
            return Parse::Partial;
        };
        let line = match line_text(buf, at, line_end) {
            Ok(t) => t,
            Err(m) => return Parse::Bad(m),
        };
        at = line_end + 1;
        if line.is_empty() {
            // End of headers. Bodies on GETs are tolerated but bounded:
            // consume so the next pipelined request starts at the right byte.
            if content_len > MAX_LINE {
                return Parse::Bad("request body too large");
            }
            if buf.len() - at < content_len {
                return Parse::Partial;
            }
            let (path, query) = match target.split_once('?') {
                Some((p, q)) => (p, q),
                None => (target, ""),
            };
            return Parse::Complete(
                RequestRef {
                    method,
                    path,
                    query,
                    keep_alive,
                },
                at + content_len,
            );
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("content-length") {
                let Ok(parsed) = value.parse::<usize>() else {
                    return Parse::Bad("bad content-length");
                };
                content_len = parsed;
            }
        }
    }
    Parse::Bad("too many headers")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

/// Appends `value`'s decimal digits to `out` without allocating.
fn push_decimal(out: &mut Vec<u8>, value: u64) {
    let mut digits = [0u8; 20];
    let mut at = digits.len();
    let mut v = value;
    loop {
        at -= 1;
        digits[at] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[at..]);
}

/// Appends one complete response (status line, headers, body) to `out`.
/// Byte-for-byte the frame the original thread-pool daemon wrote; the only
/// difference is that nothing here touches the heap — the caller's buffer
/// absorbs the bytes and integer formatting uses a stack array.
pub fn write_response_into(out: &mut Vec<u8>, status: u16, body: &[u8], keep_alive: bool) {
    out.extend_from_slice(b"HTTP/1.1 ");
    push_decimal(out, u64::from(status));
    out.push(b' ');
    out.extend_from_slice(reason(status).as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: application/json\r\nContent-Length: ");
    push_decimal(out, body.len() as u64);
    out.extend_from_slice(b"\r\nConnection: ");
    out.extend_from_slice(if keep_alive {
        b"keep-alive".as_slice()
    } else {
        b"close".as_slice()
    });
    out.extend_from_slice(b"\r\n\r\n");
    out.extend_from_slice(body);
}

/// Appends a `{"error":"..."}` response for a static message. The message
/// must need no JSON escaping (all call sites pass fixed ASCII text).
pub fn write_error_into(out: &mut Vec<u8>, status: u16, message: &str, keep_alive: bool) {
    const PREFIX: &[u8] = b"{\"error\":\"";
    const SUFFIX: &[u8] = b"\"}";
    debug_assert!(!message.bytes().any(|b| b == b'"' || b == b'\\'));
    out.extend_from_slice(b"HTTP/1.1 ");
    push_decimal(out, u64::from(status));
    out.push(b' ');
    out.extend_from_slice(reason(status).as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: application/json\r\nContent-Length: ");
    push_decimal(out, (PREFIX.len() + message.len() + SUFFIX.len()) as u64);
    out.extend_from_slice(b"\r\nConnection: ");
    out.extend_from_slice(if keep_alive {
        b"keep-alive".as_slice()
    } else {
        b"close".as_slice()
    });
    out.extend_from_slice(b"\r\n\r\n");
    out.extend_from_slice(PREFIX);
    out.extend_from_slice(message.as_bytes());
    out.extend_from_slice(SUFFIX);
}

/// Writes one response to an [`io::Write`] — the convenience form for tests
/// and probes; the server proper appends to connection buffers instead.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let mut out = Vec::with_capacity(128 + body.len());
    write_response_into(&mut out, status, body.as_bytes(), keep_alive);
    writer.write_all(&out)?;
    writer.flush()
}

/// A routed response body. Hot paths borrow pre-rendered bytes (or clone an
/// `Arc`); only cold paths (cache misses, errors, unbounded inputs) build a
/// fresh `String`.
pub enum Body<'a> {
    /// Borrowed from the snapshot's hot-response cache — a pure memcpy.
    Cached(&'a [u8]),
    /// A shared compare-cache body (`Arc` clone, no heap traffic).
    Shared(Arc<str>),
    /// Rendered for this request (cold path).
    Owned(String),
    /// A fixed error body.
    Static(&'static str),
}

impl Body<'_> {
    /// The body bytes, whatever the storage.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Cached(b) => b,
            Body::Shared(s) => s.as_bytes(),
            Body::Owned(s) => s.as_bytes(),
            Body::Static(s) => s.as_bytes(),
        }
    }
}

/// One routed request: endpoint class (for metrics), status, body.
pub struct Routed<'a> {
    /// The endpoint class for metrics accounting.
    pub endpoint: Endpoint,
    /// HTTP status code.
    pub status: u16,
    /// The response body.
    pub body: Body<'a>,
}

fn routed(endpoint: Endpoint, status: u16, body: Body<'_>) -> Routed<'_> {
    Routed {
        endpoint,
        status,
        body,
    }
}

/// Routes one parsed request to its endpoint.
///
/// The hot endpoints (`/health`, `/v1/rank`, `/v1/movement` over top-K
/// domains, warmed `/v1/compare` cells) resolve to borrowed or shared bytes
/// without allocating; everything else falls back to the same pure renderers
/// in [`crate::query`] the thread-pool daemon used, so bodies are identical
/// either way.
pub fn route<'a>(
    snapshot: &'a QuerySnapshot,
    metrics: &Metrics,
    cache: &Lru,
    request: &RequestRef<'_>,
) -> Routed<'a> {
    // topple-lint: hot-path-begin
    if request.method != "GET" {
        return routed(
            Endpoint::Other,
            405,
            Body::Static("{\"error\":\"only GET is served\"}"),
        );
    }
    let path = request.path;
    if path == "/health" {
        return routed(Endpoint::Health, 200, Body::Cached(snapshot.health_bytes()));
    }
    if let Some(rest) = path.strip_prefix("/v1/rank/") {
        let Some((list, domain)) = rest.split_once('/') else {
            return routed(
                Endpoint::Rank,
                400,
                Body::Static("{\"error\":\"expected /v1/rank/{list}/{domain}\"}"),
            );
        };
        if let Some(source) = parse_list(list) {
            if let Some(body) = snapshot.hot_rank(source, domain) {
                metrics.record_hot(true);
                return routed(Endpoint::Rank, 200, Body::Cached(body));
            }
        }
        metrics.record_hot(false);
        let reply = snapshot.rank(list, domain);
        return routed(Endpoint::Rank, reply.status, Body::Owned(reply.body));
    }
    if path == "/v1/compare" {
        let (a, b, k) = (
            request.param("a").unwrap_or(""),
            request.param("b").unwrap_or(""),
            request.param("k").unwrap_or(""),
        );
        // Cache only well-formed cells; errors are cheap to recompute.
        if let (Some(sa), Some(sb), Ok(ki)) = (parse_list(a), parse_list(b), k.parse::<usize>()) {
            if (1..=MAX_K).contains(&ki) {
                let key = QuerySnapshot::compare_key(sa, sb, ki);
                if let Some(body) = cache.get(key) {
                    metrics.record_cache_hit();
                    return routed(Endpoint::Compare, 200, Body::Shared(body));
                }
                let body: Arc<str> = snapshot.compare_body(sa, sb, ki).into();
                cache.insert(key, Arc::clone(&body));
                return routed(Endpoint::Compare, 200, Body::Shared(body));
            }
        }
        let reply = snapshot.compare(a, b, k);
        return routed(Endpoint::Compare, reply.status, Body::Owned(reply.body));
    }
    if let Some(domain) = path.strip_prefix("/v1/movement/") {
        if let Some(body) = snapshot.hot_movement(domain) {
            metrics.record_hot(true);
            return routed(Endpoint::Movement, 200, Body::Cached(body));
        }
        metrics.record_hot(false);
        let reply = snapshot.movement(domain);
        return routed(Endpoint::Movement, reply.status, Body::Owned(reply.body));
    }
    // topple-lint: hot-path-end
    if path == "/v1/metrics" {
        return routed(
            Endpoint::Metrics,
            200,
            Body::Owned(metrics.render(snapshot.id())),
        );
    }
    if let Some(name) = path.strip_prefix("/v1/artifact/") {
        let reply = snapshot.artifact(name);
        return routed(Endpoint::Artifact, reply.status, Body::Owned(reply.body));
    }
    routed(
        Endpoint::Other,
        404,
        Body::Static(
            "{\"error\":\"no such endpoint; see /health /v1/rank /v1/compare /v1/movement /v1/metrics\"}",
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{encode_study, Snapshot};
    use topple_core::Study;
    use topple_sim::WorldConfig;

    fn query() -> QuerySnapshot {
        let study = Study::run(WorldConfig::tiny(5)).expect("tiny study");
        let bytes = encode_study(&study, "tiny", &[]);
        QuerySnapshot::new(Snapshot::from_bytes(&bytes).expect("decodes"))
    }

    fn parse(raw: &str) -> (RequestRef<'_>, usize) {
        match parse_request(raw.as_bytes()) {
            Parse::Complete(r, n) => (r, n),
            other => panic!("expected complete parse, got {other:?}"),
        }
    }

    #[test]
    fn parses_request_line_and_query() {
        let raw = "GET /v1/compare?a=alexa&b=tranco&k=100 HTTP/1.1\r\nHost: x\r\n\r\n";
        let (r, consumed) = parse(raw);
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/compare");
        assert_eq!(r.param("a"), Some("alexa"));
        assert_eq!(r.param("k"), Some("100"));
        assert!(r.keep_alive);
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn connection_close_is_honored() {
        let (r, _) = parse("GET /health HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r.keep_alive);
        let (r, _) = parse("GET /health HTTP/1.0\r\n\r\n");
        assert!(!r.keep_alive);
        let (r, _) = parse("GET /health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(r.keep_alive);
    }

    #[test]
    fn partial_until_blank_line() {
        assert!(matches!(parse_request(b""), Parse::Partial));
        assert!(matches!(parse_request(b"GET /heal"), Parse::Partial));
        assert!(matches!(
            parse_request(b"GET /health HTTP/1.1\r\n"),
            Parse::Partial
        ));
        assert!(matches!(
            parse_request(b"GET /health HTTP/1.1\r\nHost: x\r\n"),
            Parse::Partial
        ));
    }

    #[test]
    fn pipelined_requests_consume_exactly_one_frame() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let Parse::Complete(first, n) = parse_request(raw) else {
            panic!("first frame");
        };
        assert_eq!(first.path, "/a");
        let Parse::Complete(second, m) = parse_request(&raw[n..]) else {
            panic!("second frame");
        };
        assert_eq!(second.path, "/b");
        assert_eq!(n + m, raw.len());
    }

    #[test]
    fn body_bytes_are_consumed_with_the_frame() {
        let raw = b"GET /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyzGET /b HTTP/1.1\r\n\r\n";
        let Parse::Complete(first, n) = parse_request(raw) else {
            panic!("first frame");
        };
        assert_eq!(first.path, "/a");
        assert_eq!(&raw[n..n + 5], b"GET /");
        // A body split across reads is Partial until it arrives.
        assert!(matches!(
            parse_request(b"GET /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nxy"),
            Parse::Partial
        ));
    }

    #[test]
    fn oversized_line_is_bad_request() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE + 1));
        assert!(matches!(parse_request(raw.as_bytes()), Parse::Bad(_)));
        // ... even before the newline ever arrives (fail-closed, not stuck).
        let unterminated = vec![b'x'; MAX_LINE + 8];
        assert!(matches!(parse_request(&unterminated), Parse::Bad(_)));
    }

    #[test]
    fn malformed_inputs_are_bad_not_partial() {
        assert!(matches!(parse_request(b"GET\r\n\r\n"), Parse::Bad(_)));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Parse::Bad(_)
        ));
        assert!(matches!(
            parse_request(b"GET /\xff\xfe HTTP/1.1\r\n\r\n"),
            Parse::Bad(_)
        ));
        let mut many = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..MAX_HEADERS + 1 {
            many.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert!(matches!(parse_request(&many), Parse::Bad(_)));
        assert!(matches!(
            parse_request(
                format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_LINE + 1).as_bytes()
            ),
            Parse::Bad(_)
        ));
    }

    #[test]
    fn routes_every_endpoint() {
        let q = query();
        let m = Metrics::new();
        let c = Lru::new(8);
        for (path, want) in [
            ("/health", 200),
            ("/v1/rank/tranco/a.com", 200),
            ("/v1/compare?a=alexa&b=tranco&k=50", 200),
            ("/v1/movement/a.com", 200),
            ("/v1/metrics", 200),
            ("/nope", 404),
            ("/v1/rank/alexa", 400),
        ] {
            let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
            let (req, _) = parse(&raw);
            let r = route(&q, &m, &c, &req);
            assert_eq!(r.status, want, "{path}");
        }
        let (req, _) = parse("POST /health HTTP/1.1\r\n\r\n");
        assert_eq!(route(&q, &m, &c, &req).status, 405);
    }

    #[test]
    fn compare_cache_hit_returns_identical_bytes() {
        let q = query();
        let m = Metrics::new();
        let c = Lru::new(8);
        let raw = "GET /v1/compare?a=alexa&b=umbrella&k=40 HTTP/1.1\r\n\r\n";
        let (req, _) = parse(raw);
        let first = route(&q, &m, &c, &req).body.as_bytes().to_vec();
        let second = route(&q, &m, &c, &req).body.as_bytes().to_vec();
        assert_eq!(first, second);
    }

    #[test]
    fn response_carries_length_and_connection() {
        let mut out = Vec::new();
        write_response_into(&mut out, 200, b"{\"x\":1}", false);
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"x\":1}"));
    }

    #[test]
    fn error_response_matches_rendered_form() {
        let mut direct = Vec::new();
        write_error_into(&mut direct, 400, "request line too long", true);
        let mut via_body = Vec::new();
        write_response_into(
            &mut via_body,
            400,
            b"{\"error\":\"request line too long\"}",
            true,
        );
        assert_eq!(direct, via_body);
    }

    #[test]
    fn decimal_formatting_matches_display() {
        for v in [0u64, 7, 10, 99, 100, 8_192, u64::from(u16::MAX), u64::MAX] {
            let mut out = Vec::new();
            push_decimal(&mut out, v);
            assert_eq!(String::from_utf8(out).expect("utf8"), v.to_string());
        }
    }
}
