//! Minimal HTTP/1.1 request parsing, routing, and response writing.
//!
//! The daemon speaks just enough HTTP for its five GET endpoints: request
//! line + headers (bounded in count and length), keep-alive by HTTP/1.1
//! default, `Connection: close` honored both ways. Anything outside that
//! envelope — an oversized line, a verb other than GET, an unroutable path —
//! gets a correct error response, never a panic: the socket is the untrusted
//! input here, exactly like snapshot bytes are for the store.

use std::io::{self, BufRead, Write};

use crate::lru::Lru;
use crate::metrics::{Endpoint, Metrics};
use crate::query::{parse_list, QuerySnapshot, Reply};

/// Longest accepted request or header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers read before the request is rejected.
const MAX_HEADERS: usize = 64;

/// One parsed request, trimmed to what routing needs.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercase as sent.
    pub method: String,
    /// Path portion of the target (before `?`).
    pub path: String,
    /// Raw query string (after `?`, may be empty).
    pub query: String,
    /// Whether the client allows the connection to stay open.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of query parameter `key`, unescaped as-is.
    pub fn param<'a>(&'a self, key: &str) -> Option<&'a str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Reads one line (to CRLF or LF), bounded by [`MAX_LINE`]. `Ok(None)` means
/// a clean EOF before any byte — the peer closed an idle keep-alive.
fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        let n = io::Read::read(reader, &mut byte)?;
        if n == 0 {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ))
            };
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            let text = String::from_utf8(line)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 line"))?;
            return Ok(Some(text));
        }
        if line.len() >= MAX_LINE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request line too long",
            ));
        }
        line.push(byte[0]);
    }
}

/// Parses one request from the stream. `Ok(None)` is a clean close.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_owned(), t.to_owned(), v.to_owned()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_len = 0usize;
    for _ in 0..MAX_HEADERS {
        let Some(line) = read_line(reader)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed in headers",
            ));
        };
        if line.is_empty() {
            // Bodies on GETs are tolerated but bounded: skip so the next
            // request on the connection starts at the right byte.
            if content_len > MAX_LINE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request body too large",
                ));
            }
            let mut sink = vec![0u8; content_len];
            io::Read::read_exact(reader, &mut sink)?;
            let (path, query) = match target.split_once('?') {
                Some((p, q)) => (p.to_owned(), q.to_owned()),
                None => (target, String::new()),
            };
            return Ok(Some(Request {
                method,
                path,
                query,
                keep_alive,
            }));
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("content-length") {
                content_len = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        "too many headers",
    ))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

/// Writes one JSON response, with `Connection: close` when this is the
/// connection's last response.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// Routes one parsed request to its endpoint. Returns the reply plus the
/// endpoint class for metrics.
pub fn route(
    snapshot: &QuerySnapshot,
    metrics: &Metrics,
    cache: &Lru,
    request: &Request,
) -> (Endpoint, Reply) {
    if request.method != "GET" {
        return (
            Endpoint::Other,
            Reply {
                status: 405,
                body: "{\"error\":\"only GET is served\"}".to_owned(),
            },
        );
    }
    let path = request.path.as_str();
    if path == "/health" {
        return (Endpoint::Health, snapshot.health());
    }
    if path == "/v1/metrics" {
        return (
            Endpoint::Metrics,
            Reply {
                status: 200,
                body: metrics.render(snapshot.id()),
            },
        );
    }
    if let Some(rest) = path.strip_prefix("/v1/rank/") {
        let Some((list, domain)) = rest.split_once('/') else {
            return (
                Endpoint::Rank,
                Reply {
                    status: 400,
                    body: "{\"error\":\"expected /v1/rank/{list}/{domain}\"}".to_owned(),
                },
            );
        };
        return (Endpoint::Rank, snapshot.rank(list, domain));
    }
    if path == "/v1/compare" {
        let (a, b, k) = (
            request.param("a").unwrap_or(""),
            request.param("b").unwrap_or(""),
            request.param("k").unwrap_or(""),
        );
        // Cache only well-formed cells; errors are cheap to recompute.
        if let (Some(sa), Some(sb), Ok(ki)) = (parse_list(a), parse_list(b), k.parse::<usize>()) {
            if (1..=crate::query::MAX_K).contains(&ki) {
                let key = QuerySnapshot::compare_key(sa, sb, ki);
                if let Some(body) = cache.get(key) {
                    metrics.record_cache_hit();
                    return (Endpoint::Compare, Reply { status: 200, body });
                }
                let body = snapshot.compare_body(sa, sb, ki);
                cache.insert(key, body.clone());
                return (Endpoint::Compare, Reply { status: 200, body });
            }
        }
        return (Endpoint::Compare, snapshot.compare(a, b, k));
    }
    if let Some(domain) = path.strip_prefix("/v1/movement/") {
        return (Endpoint::Movement, snapshot.movement(domain));
    }
    if let Some(name) = path.strip_prefix("/v1/artifact/") {
        return (Endpoint::Artifact, snapshot.artifact(name));
    }
    (
        Endpoint::Other,
        Reply {
            status: 404,
            body: "{\"error\":\"no such endpoint; see /health /v1/rank /v1/compare /v1/movement /v1/metrics\"}"
                .to_owned(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{encode_study, Snapshot};
    use topple_core::Study;
    use topple_sim::WorldConfig;

    fn query() -> QuerySnapshot {
        let study = Study::run(WorldConfig::tiny(5)).expect("tiny study");
        let bytes = encode_study(&study, "tiny", &[]);
        QuerySnapshot::new(Snapshot::from_bytes(&bytes).expect("decodes"))
    }

    fn parse(raw: &str) -> Request {
        read_request(&mut raw.as_bytes())
            .expect("parses")
            .expect("not eof")
    }

    #[test]
    fn parses_request_line_and_query() {
        let r = parse("GET /v1/compare?a=alexa&b=tranco&k=100 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/compare");
        assert_eq!(r.param("a"), Some("alexa"));
        assert_eq!(r.param("k"), Some("100"));
        assert!(r.keep_alive);
    }

    #[test]
    fn connection_close_is_honored() {
        let r = parse("GET /health HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r.keep_alive);
        let r = parse("GET /health HTTP/1.0\r\n\r\n");
        assert!(!r.keep_alive);
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_request(&mut "".as_bytes()).expect("ok").is_none());
    }

    #[test]
    fn oversized_line_errors() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE + 1));
        assert!(read_request(&mut raw.as_bytes()).is_err());
    }

    #[test]
    fn routes_every_endpoint() {
        let q = query();
        let m = Metrics::new();
        let c = Lru::new(8);
        for (path, want) in [
            ("/health", 200),
            ("/v1/rank/tranco/a.com", 200),
            ("/v1/compare?a=alexa&b=tranco&k=50", 200),
            ("/v1/movement/a.com", 200),
            ("/v1/metrics", 200),
            ("/nope", 404),
            ("/v1/rank/alexa", 400),
        ] {
            let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
            let (_, reply) = route(&q, &m, &c, &parse(&raw));
            assert_eq!(reply.status, want, "{path}: {}", reply.body);
        }
        let (_, reply) = route(&q, &m, &c, &parse("POST /health HTTP/1.1\r\n\r\n"));
        assert_eq!(reply.status, 405);
    }

    #[test]
    fn compare_cache_hit_returns_identical_bytes() {
        let q = query();
        let m = Metrics::new();
        let c = Lru::new(8);
        let raw = "GET /v1/compare?a=alexa&b=umbrella&k=40 HTTP/1.1\r\n\r\n";
        let (_, first) = route(&q, &m, &c, &parse(raw));
        let (_, second) = route(&q, &m, &c, &parse(raw));
        assert_eq!(first.body, second.body);
    }

    #[test]
    fn response_carries_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"x\":1}", false).expect("writes");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"x\":1}"));
    }
}
