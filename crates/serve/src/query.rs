//! The query layer: a loaded snapshot plus the lookup structures and JSON
//! renderers behind each endpoint.
//!
//! Everything here is a pure function of the snapshot bytes: response bodies
//! are built with hand-rolled JSON in a fixed key order, floats are rendered
//! through `Display` (shortest round-trip form), and all lookups run over
//! sorted id columns ([`IdCut`] binary searches, merge-walk intersections).
//! That is what makes the daemon's byte-identical guarantee hold across
//! worker counts and restarts.

use std::path::Path;

use topple_core::compare::IdCut;
use topple_core::ListColumns;
use topple_lists::ListSource;
use topple_psl::DomainName;
use topple_stats::sets::jaccard_sorted;

use crate::error::SnapshotError;
use crate::snapshot::Snapshot;

/// Largest accepted `k` for `/v1/compare` (the paper's largest magnitude).
pub const MAX_K: usize = 1_000_000;

/// Positions per monthly list whose `/v1/rank` (and `/v1/movement`) bodies
/// are pre-rendered into the hot-response cache at snapshot load. Top-list
/// traffic is head-heavy by the paper's own premise, so a small K covers
/// nearly all of it; everything past K falls back to the identical cold
/// renderers.
pub const HOT_K: usize = 1_024;

/// Pre-rendered response bodies for the hottest point lookups, built once
/// at snapshot load (DESIGN.md §16).
///
/// All bodies live in one contiguous arena and are addressed by `(start,
/// end)` ranges: serving a hot request is a binary search (or direct index)
/// plus a memcpy into the connection's write buffer — zero formatting, zero
/// heap allocation, the same discipline as the ingest window's scratch
/// tables. Every body is produced by the *same* renderer the cold path
/// calls, so the cache can change latency, never content.
struct HotCache {
    arena: Box<[u8]>,
    /// `/health` body (snapshot-constant).
    health: (u32, u32),
    /// `rank[list][pos]` = body range for the domain at best-first position
    /// `pos` of that monthly list, `pos < HOT_K`. Indexed like
    /// [`ListSource::ALL`].
    rank: Vec<Vec<(u32, u32)>>,
    /// Sorted raw ids of the domains with a pre-rendered movement body
    /// (the union of every monthly list's top-K), parallel to
    /// `movement_ranges`.
    movement_ids: Vec<u32>,
    movement_ranges: Vec<(u32, u32)>,
}

impl HotCache {
    fn empty() -> Self {
        HotCache {
            arena: Box::default(),
            health: (0, 0),
            rank: Vec::new(),
            movement_ids: Vec::new(),
            movement_ranges: Vec::new(),
        }
    }

    /// Renders every hot body through `snapshot`'s public renderers.
    /// `snapshot.hot` must still be empty (bodies must come from the real
    /// formatting path, not the cache being built).
    fn build(snapshot: &QuerySnapshot) -> Self {
        let mut arena: Vec<u8> = Vec::new();
        let push = |arena: &mut Vec<u8>, body: &str| -> (u32, u32) {
            let start = arena.len() as u32;
            arena.extend_from_slice(body.as_bytes());
            (start, arena.len() as u32)
        };

        let health = push(&mut arena, &snapshot.health().body);

        let table = snapshot.snapshot.index.table();
        let mut rank = Vec::with_capacity(ListSource::ALL.len());
        let mut movement_id_set: std::collections::BTreeSet<u32> =
            std::collections::BTreeSet::new();
        for &source in ListSource::ALL.iter() {
            let cols = snapshot.snapshot.index.monthly(source);
            let k = cols.ids.len().min(HOT_K);
            let mut ranges = Vec::with_capacity(k);
            for &id in cols.ids.iter().take(k) {
                let name = table.name(id);
                let body = snapshot.rank(list_url_name(source), name.as_str()).body;
                ranges.push(push(&mut arena, &body));
                movement_id_set.insert(id.raw());
            }
            rank.push(ranges);
        }

        let mut movement_ids = Vec::with_capacity(movement_id_set.len());
        let mut movement_ranges = Vec::with_capacity(movement_id_set.len());
        for raw in movement_id_set {
            let name = table.name(topple_lists::DomainId::from_raw(raw));
            let body = snapshot.movement(name.as_str()).body;
            movement_ids.push(raw);
            movement_ranges.push(push(&mut arena, &body));
        }

        HotCache {
            arena: arena.into_boxed_slice(),
            health,
            rank,
            movement_ids,
            movement_ranges,
        }
    }

    fn slice(&self, range: (u32, u32)) -> &[u8] {
        &self.arena[range.0 as usize..range.1 as usize]
    }
}

/// A snapshot prepared for point queries: per-list [`IdCut`]s for O(log n)
/// rank lookups, the precomputed sorted id column of every monthly list,
/// and the [`HotCache`] of pre-rendered top-K response bodies.
pub struct QuerySnapshot {
    snapshot: Snapshot,
    id: String,
    /// One cut per monthly list, indexed like [`ListSource::ALL`].
    monthly_cuts: Vec<IdCut>,
    alexa_daily_cuts: Vec<IdCut>,
    umbrella_daily_cuts: Vec<IdCut>,
    hot: HotCache,
}

/// The result of routing one request: status code plus JSON body.
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// JSON body (always an object).
    pub body: String,
}

fn ok(body: String) -> Reply {
    Reply { status: 200, body }
}

fn err(status: u16, message: &str) -> Reply {
    Reply {
        status,
        body: format!("{{\"error\":\"{}\"}}", escape(message)),
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses the lowercase list name used in URLs.
pub fn parse_list(name: &str) -> Option<ListSource> {
    Some(match name {
        "alexa" => ListSource::Alexa,
        "umbrella" => ListSource::Umbrella,
        "majestic" => ListSource::Majestic,
        "secrank" => ListSource::Secrank,
        "tranco" => ListSource::Tranco,
        "trexa" => ListSource::Trexa,
        "crux" => ListSource::Crux,
        _ => return None,
    })
}

/// The URL name of a list source (lowercase, stable).
pub fn list_url_name(source: ListSource) -> &'static str {
    match source {
        ListSource::Alexa => "alexa",
        ListSource::Umbrella => "umbrella",
        ListSource::Majestic => "majestic",
        ListSource::Secrank => "secrank",
        ListSource::Tranco => "tranco",
        ListSource::Trexa => "trexa",
        ListSource::Crux => "crux",
    }
}

fn all_index(source: ListSource) -> usize {
    ListSource::ALL
        .iter()
        .position(|&s| s == source)
        .unwrap_or(0)
}

/// Count of common elements between two sorted slices (one merge-walk).
fn intersection_sorted(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

impl QuerySnapshot {
    /// Prepares a decoded snapshot for serving.
    pub fn new(snapshot: Snapshot) -> Self {
        let id = snapshot.id();
        let cut = |cols: &ListColumns| IdCut::new(&cols.ids);
        let monthly_cuts = ListSource::ALL
            .iter()
            .map(|&s| cut(snapshot.index.monthly(s)))
            .collect();
        let alexa_daily_cuts = snapshot.index.alexa_daily().iter().map(cut).collect();
        let umbrella_daily_cuts = snapshot.index.umbrella_daily().iter().map(cut).collect();
        let mut qs = QuerySnapshot {
            snapshot,
            id,
            monthly_cuts,
            alexa_daily_cuts,
            umbrella_daily_cuts,
            hot: HotCache::empty(),
        };
        // Two-phase: the cache renders through `qs`'s own (still cold)
        // renderers, so every hot body is byte-identical to what a cache
        // miss would produce.
        qs.hot = HotCache::build(&qs);
        qs
    }

    /// Reads, validates, and prepares a snapshot file.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        Ok(QuerySnapshot::new(Snapshot::read_from(path)?))
    }

    /// The snapshot's stable identity string.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The underlying snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The pre-rendered `/health` body (snapshot-constant).
    pub fn health_bytes(&self) -> &[u8] {
        self.hot.slice(self.hot.health)
    }

    /// The pre-rendered `/v1/rank` body for `domain` on `source`, if the
    /// domain sits in the list's top-[`HOT_K`]. Allocation-free: one hash
    /// probe, one binary search, one slice.
    ///
    /// A `Some` here is byte-identical to [`Self::rank`]'s body for the same
    /// inputs: an interned name round-trips through the table (the id it
    /// resolves to names exactly this domain), so the body pre-rendered for
    /// that position is the body this domain would render.
    pub fn hot_rank(&self, source: ListSource, domain: &str) -> Option<&[u8]> {
        // topple-lint: hot-path-begin
        let id = self.snapshot.index.table().id(domain)?;
        let pos = self
            .monthly_cuts
            .get(all_index(source))?
            .rank_of(id.raw())?;
        let range = *self.hot.rank.get(all_index(source))?.get(pos as usize)?;
        Some(self.hot.slice(range))
        // topple-lint: hot-path-end
    }

    /// The pre-rendered `/v1/movement` body for `domain`, if it is in any
    /// monthly list's top-[`HOT_K`]. Allocation-free, same argument as
    /// [`Self::hot_rank`].
    pub fn hot_movement(&self, domain: &str) -> Option<&[u8]> {
        // topple-lint: hot-path-begin
        let id = self.snapshot.index.table().id(domain)?;
        let at = self.hot.movement_ids.binary_search(&id.raw()).ok()?;
        Some(self.hot.slice(self.hot.movement_ranges[at]))
        // topple-lint: hot-path-end
    }

    /// `GET /health`.
    pub fn health(&self) -> Reply {
        ok(format!(
            "{{\"status\":\"ok\",\"snapshot\":\"{}\",\"scale\":\"{}\",\"domains\":{}}}",
            self.id,
            escape(&self.snapshot.identity.scale),
            self.snapshot.index.table().len()
        ))
    }

    /// The 0-based position of `domain` in a monthly list, if present.
    fn monthly_pos(&self, source: ListSource, domain: &str) -> Option<u32> {
        let id = self.snapshot.index.table().id(domain)?;
        self.monthly_cuts.get(all_index(source))?.rank_of(id.raw())
    }

    /// `GET /v1/rank/{list}/{domain}`.
    pub fn rank(&self, list: &str, domain: &str) -> Reply {
        let Some(source) = parse_list(list) else {
            return err(
                404,
                "unknown list; one of alexa umbrella majestic secrank tranco trexa crux",
            );
        };
        if domain.parse::<DomainName>().is_err() {
            return err(400, "invalid domain name");
        }
        let head = format!(
            "{{\"snapshot\":\"{}\",\"list\":\"{}\",\"domain\":\"{}\"",
            self.id,
            list_url_name(source),
            escape(domain)
        );
        match self.monthly_pos(source, domain) {
            None => ok(format!("{head},\"present\":false}}")),
            Some(pos) => {
                let cols = self.snapshot.index.monthly(source);
                if cols.ordered {
                    ok(format!("{head},\"present\":true,\"rank\":{}}}", pos + 1))
                } else {
                    let bucket = cols.values.get(pos as usize).copied().unwrap_or(0);
                    ok(format!("{head},\"present\":true,\"bucket\":{bucket}}}"))
                }
            }
        }
    }

    /// The compare-cache key for `(a, b, k)` — parameters only, so a cache
    /// hit is guaranteed to return the bytes a miss would compute.
    pub fn compare_key(a: ListSource, b: ListSource, k: usize) -> u64 {
        ((all_index(a) as u64) << 48) | ((all_index(b) as u64) << 40) | (k as u64)
    }

    /// `GET /v1/compare?a={list}&b={list}&k={magnitude}`.
    pub fn compare(&self, a: &str, b: &str, k: &str) -> Reply {
        let (Some(sa), Some(sb)) = (parse_list(a), parse_list(b)) else {
            return err(
                404,
                "unknown list; one of alexa umbrella majestic secrank tranco trexa crux",
            );
        };
        let Ok(k) = k.parse::<usize>() else {
            return err(400, "k must be a positive integer");
        };
        if k == 0 || k > MAX_K {
            return err(400, "k must be between 1 and 1000000");
        }
        ok(self.compare_body(sa, sb, k))
    }

    /// The compare response body (cache value) for parsed parameters.
    pub fn compare_body(&self, a: ListSource, b: ListSource, k: usize) -> String {
        let sorted_cut = |s: ListSource| {
            let cols = self.snapshot.index.monthly(s);
            let mut v: Vec<u32> = cols.top_ids(k).iter().map(|d| d.raw()).collect();
            v.sort_unstable();
            v
        };
        let ca = sorted_cut(a);
        let cb = sorted_cut(b);
        let inter = intersection_sorted(&ca, &cb);
        let jac = jaccard_sorted(&ca, &cb);
        format!(
            "{{\"snapshot\":\"{}\",\"a\":\"{}\",\"b\":\"{}\",\"k\":{k},\
             \"len_a\":{},\"len_b\":{},\"intersection\":{inter},\"jaccard\":{jac}}}",
            self.id,
            list_url_name(a),
            list_url_name(b),
            ca.len(),
            cb.len(),
        )
    }

    /// `GET /v1/movement/{domain}`: monthly rank on every list plus the
    /// day-by-day rank trajectory on the two daily providers.
    pub fn movement(&self, domain: &str) -> Reply {
        if domain.parse::<DomainName>().is_err() {
            return err(400, "invalid domain name");
        }
        let id = self.snapshot.index.table().id(domain).map(|d| d.raw());
        let mut body = format!(
            "{{\"snapshot\":\"{}\",\"domain\":\"{}\",\"present\":{},\"monthly\":{{",
            self.id,
            escape(domain),
            id.is_some()
        );
        for (i, &source) in ListSource::ALL.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push('"');
            body.push_str(list_url_name(source));
            body.push_str("\":");
            let entry = id.and_then(|raw| {
                let pos = self.monthly_cuts.get(all_index(source))?.rank_of(raw)?;
                let cols = self.snapshot.index.monthly(source);
                if cols.ordered {
                    Some(pos + 1)
                } else {
                    cols.values.get(pos as usize).copied()
                }
            });
            match entry {
                Some(v) => body.push_str(&v.to_string()),
                None => body.push_str("null"),
            }
        }
        body.push_str("},\"alexa_daily\":");
        push_daily(&mut body, id, &self.alexa_daily_cuts);
        body.push_str(",\"umbrella_daily\":");
        push_daily(&mut body, id, &self.umbrella_daily_cuts);
        body.push('}');
        ok(body)
    }

    /// `GET /v1/artifact/{name}`: a rendered report stored in the snapshot.
    pub fn artifact(&self, name: &str) -> Reply {
        match self
            .snapshot
            .artifacts
            .iter()
            .find(|(n, _)| n.as_str() == name)
        {
            Some((n, text)) => ok(format!(
                "{{\"snapshot\":\"{}\",\"name\":\"{}\",\"body\":\"{}\"}}",
                self.id,
                escape(n),
                escape(text)
            )),
            None => err(404, "no such artifact"),
        }
    }
}

/// Renders a `[rank|null, ...]` array of one daily provider's trajectory.
fn push_daily(body: &mut String, id: Option<u32>, cuts: &[IdCut]) {
    body.push('[');
    for (i, cut) in cuts.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        match id.and_then(|raw| cut.rank_of(raw)) {
            Some(pos) => body.push_str(&(pos + 1).to_string()),
            None => body.push_str("null"),
        }
    }
    body.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::encode_study;
    use topple_core::Study;
    use topple_sim::WorldConfig;

    fn tiny_query() -> QuerySnapshot {
        let study = Study::run(WorldConfig::tiny(11)).expect("tiny study");
        let bytes = encode_study(&study, "tiny", &[("report".into(), "body".into())]);
        QuerySnapshot::new(Snapshot::from_bytes(&bytes).expect("decodes"))
    }

    #[test]
    fn health_names_the_snapshot() {
        let q = tiny_query();
        let r = q.health();
        assert_eq!(r.status, 200);
        assert!(r.body.contains(q.id()));
        assert!(r.body.contains("\"status\":\"ok\""));
    }

    #[test]
    fn rank_finds_a_listed_domain() {
        let q = tiny_query();
        let cols = q.snapshot().index.monthly(ListSource::Tranco);
        let first = q.snapshot().index.table().name(cols.ids[0]).to_string();
        let r = q.rank("tranco", &first);
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"rank\":1"), "{}", r.body);
        // A valid but absent domain is present:false, not an error.
        let r = q.rank("tranco", "never-listed-domain.example");
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"present\":false"));
        // Unknown list 404s, invalid domain 400s.
        assert_eq!(q.rank("nolist", &first).status, 404);
        assert_eq!(q.rank("tranco", "bad!!name").status, 400);
    }

    #[test]
    fn crux_rank_reports_buckets() {
        let q = tiny_query();
        let cols = q.snapshot().index.monthly(ListSource::Crux);
        if cols.is_empty() {
            return;
        }
        let name = q.snapshot().index.table().name(cols.ids[0]).to_string();
        let r = q.rank("crux", &name);
        assert!(r.body.contains("\"bucket\":"), "{}", r.body);
    }

    #[test]
    fn compare_is_symmetric_in_content() {
        let q = tiny_query();
        let r = q.compare("alexa", "tranco", "100");
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"jaccard\":"));
        assert_eq!(q.compare("alexa", "tranco", "0").status, 400);
        assert_eq!(q.compare("alexa", "tranco", "x").status, 400);
        assert_eq!(q.compare("alexa", "nolist", "10").status, 404);
    }

    #[test]
    fn movement_covers_every_list_and_day() {
        let q = tiny_query();
        let cols = q.snapshot().index.monthly(ListSource::Alexa);
        let name = q.snapshot().index.table().name(cols.ids[0]).to_string();
        let r = q.movement(&name);
        assert_eq!(r.status, 200);
        for source in ListSource::ALL {
            assert!(r.body.contains(&format!("\"{}\":", list_url_name(source))));
        }
        let days = q.snapshot().identity.n_days as usize;
        let daily_part = r.body.split("alexa_daily").nth(1).expect("daily section");
        assert!(daily_part.split(',').count() >= days);
    }

    #[test]
    fn artifact_roundtrips() {
        let q = tiny_query();
        assert_eq!(q.artifact("report").status, 200);
        assert_eq!(q.artifact("missing").status, 404);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
