//! The versioned, checksummed on-disk snapshot format.
//!
//! A snapshot is one contiguous file:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"TPLS"
//! 4       2     format version (little-endian u16, currently 1)
//! 6       2     reserved (must be 0)
//! 8       8     payload length in bytes (little-endian u64)
//! 16      4     CRC-32 (IEEE) of the payload
//! 20      —     payload
//! ```
//!
//! The payload serializes, in fixed order: the study identity (seed, world
//! sizes, scale label), the rank magnitudes, the [`DomainTable`] name column,
//! the site → id column, the per-id Cloudflare flag bitset, the seven monthly
//! [`ListColumns`], both daily column families, and any rendered report
//! artifacts. Every sequence is length-prefixed and every integer is
//! little-endian, so the encoding of a given study is byte-identical across
//! runs, platforms, and worker counts — the snapshot id is just the payload
//! CRC.
//!
//! Decoding is fail-closed: a wrong magic, unknown version, short file,
//! checksum mismatch, or any violated structural invariant returns a typed
//! [`SnapshotError`]; nothing in this module panics on input bytes.

use std::path::Path;

use bytes::BufMut;
use topple_core::{ListColumns, Study, StudyIndex};
use topple_lists::{DomainId, DomainTable, ListSource};
use topple_psl::DomainName;

use crate::error::SnapshotError;

/// File magic: "TopPLe Snapshot".
pub const MAGIC: [u8; 4] = *b"TPLS";
/// Current format version.
pub const VERSION: u16 = 1;
/// Header length in bytes (magic + version + reserved + payload len + CRC).
pub const HEADER_LEN: usize = 20;

/// Who the snapshot is: the world parameters it was produced from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotIdentity {
    /// Master seed of the study's world.
    pub seed: u64,
    /// Number of sites in the world.
    pub n_sites: u64,
    /// Number of simulated clients.
    pub n_clients: u64,
    /// Number of study days.
    pub n_days: u32,
    /// Scale label the writer ran at (`tiny`/`small`/`medium`/`paper`).
    pub scale: String,
}

/// A fully-decoded snapshot: identity, the reassembled columnar index, the
/// rank magnitudes, and any rendered report artifacts.
#[derive(Debug)]
pub struct Snapshot {
    /// The world parameters the study ran with.
    pub identity: SnapshotIdentity,
    /// The reassembled columnar study index.
    pub index: StudyIndex,
    /// Rank magnitudes, `(label, k)` ascending.
    pub magnitudes: Vec<(String, u64)>,
    /// Rendered report artifacts, `(name, body)` in written order.
    pub artifacts: Vec<(String, String)>,
    /// CRC-32 of the payload as read (or as last encoded).
    pub crc32: u32,
}

impl Snapshot {
    /// The snapshot's stable identity string: format version, payload CRC,
    /// and seed. Two servers report the same id iff they serve the same
    /// bytes.
    pub fn id(&self) -> String {
        format!("tpls-v{VERSION}-{:08x}-s{}", self.crc32, self.identity.seed)
    }

    /// Re-encodes the snapshot to its on-disk byte form. Encoding a decoded
    /// snapshot reproduces the original file byte-for-byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let view = View {
            identity: &self.identity,
            index: &self.index,
            magnitudes: self
                .magnitudes
                .iter()
                .map(|(l, k)| (l.as_str(), *k))
                .collect(),
            artifacts: &self.artifacts,
        };
        encode(&view)
    }

    /// Decodes a snapshot from its on-disk byte form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        decode(bytes)
    }

    /// Reads and decodes a snapshot file.
    pub fn read_from(path: &Path) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path)?;
        decode(&bytes)
    }
}

/// Encodes a completed study (plus rendered `artifacts`) into snapshot bytes.
/// `scale` is the writer's scale label, recorded in the identity section.
pub fn encode_study(study: &Study, scale: &str, artifacts: &[(String, String)]) -> Vec<u8> {
    let config = &study.world.config;
    let identity = SnapshotIdentity {
        seed: config.seed,
        n_sites: config.n_sites as u64,
        n_clients: config.n_clients as u64,
        n_days: config.days.len() as u32,
        scale: scale.to_owned(),
    };
    let view = View {
        identity: &identity,
        index: study.index(),
        magnitudes: study
            .magnitudes()
            .iter()
            .map(|&(label, k)| (label, k as u64))
            .collect(),
        artifacts,
    };
    encode(&view)
}

/// Encodes a study and writes it to `path` in one call, returning the
/// snapshot id.
pub fn write_study(
    study: &Study,
    scale: &str,
    artifacts: &[(String, String)],
    path: &Path,
) -> Result<String, SnapshotError> {
    let bytes = encode_study(study, scale, artifacts);
    std::fs::write(path, &bytes)?;
    let crc = payload_crc(&bytes);
    Ok(format!(
        "tpls-v{VERSION}-{crc:08x}-s{}",
        study.world.config.seed
    ))
}

/// CRC of an encoded snapshot's payload (the header stores it; this re-reads
/// it rather than re-hashing).
fn payload_crc(bytes: &[u8]) -> u32 {
    let mut b = [0u8; 4];
    if let Some(s) = bytes.get(16..20) {
        b.copy_from_slice(s);
    }
    u32::from_le_bytes(b)
}

// ---- CRC-32 (IEEE 802.3) --------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `data` — the polynomial every zip/png reader agrees on.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- encoding -------------------------------------------------------------

/// Everything the encoder reads, borrowed — shared between the study path
/// and [`Snapshot::to_bytes`] so the two cannot drift.
struct View<'a> {
    identity: &'a SnapshotIdentity,
    index: &'a StudyIndex,
    magnitudes: Vec<(&'a str, u64)>,
    artifacts: &'a [(String, String)],
}

/// Stable wire tag per list source (independent of enum declaration order).
fn source_tag(source: ListSource) -> u8 {
    match source {
        ListSource::Alexa => 0,
        ListSource::Umbrella => 1,
        ListSource::Majestic => 2,
        ListSource::Secrank => 3,
        ListSource::Tranco => 4,
        ListSource::Trexa => 5,
        ListSource::Crux => 6,
    }
}

fn tag_source(tag: u8) -> Option<ListSource> {
    Some(match tag {
        0 => ListSource::Alexa,
        1 => ListSource::Umbrella,
        2 => ListSource::Majestic,
        3 => ListSource::Secrank,
        4 => ListSource::Tranco,
        5 => ListSource::Trexa,
        6 => ListSource::Crux,
        _ => return None,
    })
}

/// Monthly write order: ascending wire tag.
const TAG_ORDER: [ListSource; 7] = [
    ListSource::Alexa,
    ListSource::Umbrella,
    ListSource::Majestic,
    ListSource::Secrank,
    ListSource::Tranco,
    ListSource::Trexa,
    ListSource::Crux,
];

fn put_str16(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string too long for u16 len");
    out.put_u16_le(s.len() as u16);
    out.put_slice(s.as_bytes());
}

fn put_columns(out: &mut Vec<u8>, cols: &ListColumns) {
    out.put_u32_le(cols.ids.len() as u32);
    for id in &cols.ids {
        out.put_u32_le(id.raw());
    }
    for &v in &cols.values {
        out.put_u32_le(v);
    }
    out.put_u8(u8::from(cols.ordered));
    out.put_u32_le(cols.cf_ids().len() as u32);
    for id in cols.cf_ids() {
        out.put_u32_le(id.raw());
    }
    for &p in cols.cf_prefix() {
        out.put_u32_le(p);
    }
}

fn encode(view: &View<'_>) -> Vec<u8> {
    let mut payload: Vec<u8> = Vec::with_capacity(1 << 20);

    // Identity.
    payload.put_u64_le(view.identity.seed);
    payload.put_u64_le(view.identity.n_sites);
    payload.put_u64_le(view.identity.n_clients);
    payload.put_u32_le(view.identity.n_days);
    put_str16(&mut payload, &view.identity.scale);

    // Magnitudes.
    payload.put_u32_le(view.magnitudes.len() as u32);
    for &(label, k) in &view.magnitudes {
        put_str16(&mut payload, label);
        payload.put_u64_le(k);
    }

    // Domain table.
    let table = view.index.table();
    payload.put_u32_le(table.len() as u32);
    for name in table.names() {
        put_str16(&mut payload, name.as_str());
    }

    // Site ids.
    payload.put_u32_le(view.index.site_ids().len() as u32);
    for id in view.index.site_ids() {
        payload.put_u32_le(id.raw());
    }

    // Cloudflare flag bitset, dense over the table.
    let flags = view.index.cf_flags();
    payload.put_u32_le(flags.len() as u32);
    let mut acc = 0u8;
    for (i, &f) in flags.iter().enumerate() {
        if f {
            acc |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            payload.put_u8(acc);
            acc = 0;
        }
    }
    if !flags.len().is_multiple_of(8) {
        payload.put_u8(acc);
    }

    // Monthly columns, ascending wire tag.
    payload.put_u8(TAG_ORDER.len() as u8);
    for source in TAG_ORDER {
        payload.put_u8(source_tag(source));
        put_columns(&mut payload, view.index.monthly(source));
    }

    // Daily columns.
    payload.put_u32_le(view.index.alexa_daily().len() as u32);
    for cols in view.index.alexa_daily() {
        put_columns(&mut payload, cols);
    }
    payload.put_u32_le(view.index.umbrella_daily().len() as u32);
    for cols in view.index.umbrella_daily() {
        put_columns(&mut payload, cols);
    }

    // Artifacts.
    payload.put_u32_le(view.artifacts.len() as u32);
    for (name, body) in view.artifacts {
        put_str16(&mut payload, name);
        payload.put_u32_le(body.len() as u32);
        payload.put_slice(body.as_bytes());
    }

    // Header + payload.
    let mut out: Vec<u8> = Vec::with_capacity(HEADER_LEN + payload.len());
    out.put_slice(&MAGIC);
    out.put_u16_le(VERSION);
    out.put_u16_le(0);
    out.put_u64_le(payload.len() as u64);
    out.put_u32_le(crc32(&payload));
    out.put_slice(&payload);
    out
}

// ---- decoding -------------------------------------------------------------

/// Bounds-checked little-endian reader: every read either succeeds or
/// returns [`SnapshotError::Truncated`] — no slice indexing that can panic.
struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, off: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.off)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        match self.buf.get(self.off..self.off + n) {
            Some(s) => {
                self.off += n;
                Ok(s)
            }
            None => Err(SnapshotError::Truncated {
                need: (self.off + n) as u64,
                have: self.buf.len() as u64,
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    fn str16(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| SnapshotError::Malformed {
            context: "string section is not UTF-8",
        })
    }

    /// A length-prefixed count, sanity-capped so a corrupted header cannot
    /// trigger a multi-gigabyte allocation before the bounds check fires.
    fn count(&mut self, per_item: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(per_item) > self.remaining() {
            return Err(SnapshotError::Truncated {
                need: (self.off + n.saturating_mul(per_item)) as u64,
                have: self.buf.len() as u64,
            });
        }
        Ok(n)
    }

    fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, SnapshotError> {
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

fn read_ids(
    r: &mut Reader<'_>,
    n: usize,
    table_len: usize,
) -> Result<Vec<DomainId>, SnapshotError> {
    let raw = r.u32_vec(n)?;
    if raw.iter().any(|&id| id as usize >= table_len) {
        return Err(SnapshotError::Malformed {
            context: "id column points past the domain table",
        });
    }
    Ok(raw.into_iter().map(DomainId::from_raw).collect())
}

fn read_columns(r: &mut Reader<'_>, table_len: usize) -> Result<ListColumns, SnapshotError> {
    let n = r.count(4)?;
    let ids = read_ids(r, n, table_len)?;
    let values = r.u32_vec(n)?;
    let ordered = match r.u8()? {
        0 => false,
        1 => true,
        _ => {
            return Err(SnapshotError::Malformed {
                context: "ordered flag must be 0 or 1",
            })
        }
    };
    let cf_n = r.count(4)?;
    let cf_ids = read_ids(r, cf_n, table_len)?;
    let cf_prefix = r.u32_vec(n + 1)?;
    ListColumns::from_raw_parts(ids, values, ordered, cf_ids, cf_prefix)
        .map_err(|context| SnapshotError::Malformed { context })
}

fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    // Header.
    let mut r = Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(SnapshotError::BadMagic { found });
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let _reserved = r.u16()?;
    let payload_len = r.u64()?;
    let expected_crc = r.u32()?;
    let have = r.remaining() as u64;
    if have < payload_len {
        return Err(SnapshotError::Truncated {
            need: HEADER_LEN as u64 + payload_len,
            have: bytes.len() as u64,
        });
    }
    if have > payload_len {
        return Err(SnapshotError::TrailingBytes {
            extra: have - payload_len,
        });
    }
    let payload = r.take(payload_len as usize)?;
    let found_crc = crc32(payload);
    if found_crc != expected_crc {
        return Err(SnapshotError::ChecksumMismatch {
            expected: expected_crc,
            found: found_crc,
        });
    }

    // Payload.
    let mut r = Reader::new(payload);
    let identity = SnapshotIdentity {
        seed: r.u64()?,
        n_sites: r.u64()?,
        n_clients: r.u64()?,
        n_days: r.u32()?,
        scale: r.str16()?.to_owned(),
    };

    let n_mags = r.count(10)?;
    let mut magnitudes = Vec::with_capacity(n_mags);
    for _ in 0..n_mags {
        let label = r.str16()?.to_owned();
        let k = r.u64()?;
        magnitudes.push((label, k));
    }

    let n_names = r.count(2)?;
    let mut names: Vec<DomainName> = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        let s = r.str16()?;
        let name = s.parse().map_err(|_| SnapshotError::Malformed {
            context: "domain table holds an invalid domain name",
        })?;
        names.push(name);
    }
    let table = DomainTable::from_names(names);
    let table_len = table.len();

    let n_sites = r.count(4)?;
    let site_ids = read_ids(&mut r, n_sites, table_len)?;

    let n_flags = r.count(0)?;
    if n_flags != table_len {
        return Err(SnapshotError::Malformed {
            context: "cloudflare bitset length differs from the domain table",
        });
    }
    let packed = r.take(n_flags.div_ceil(8))?;
    let is_cf: Vec<bool> = (0..n_flags)
        .map(|i| packed[i / 8] & (1 << (i % 8)) != 0)
        .collect();

    let n_monthly = r.u8()? as usize;
    if n_monthly != TAG_ORDER.len() {
        return Err(SnapshotError::Malformed {
            context: "monthly section must hold exactly seven lists",
        });
    }
    let mut monthly: Vec<Option<ListColumns>> = (0..TAG_ORDER.len()).map(|_| None).collect();
    for _ in 0..n_monthly {
        let tag = r.u8()?;
        let source = tag_source(tag).ok_or(SnapshotError::Malformed {
            context: "unknown list source tag",
        })?;
        let cols = read_columns(&mut r, table_len)?;
        let slot = &mut monthly[source_tag(source) as usize];
        if slot.is_some() {
            return Err(SnapshotError::Malformed {
                context: "duplicate list source tag",
            });
        }
        *slot = Some(cols);
    }

    let n_alexa = r.count(13)?;
    let mut alexa_daily = Vec::with_capacity(n_alexa);
    for _ in 0..n_alexa {
        alexa_daily.push(read_columns(&mut r, table_len)?);
    }
    let n_umbrella = r.count(13)?;
    let mut umbrella_daily = Vec::with_capacity(n_umbrella);
    for _ in 0..n_umbrella {
        umbrella_daily.push(read_columns(&mut r, table_len)?);
    }
    if alexa_daily.len() as u32 != identity.n_days || umbrella_daily.len() as u32 != identity.n_days
    {
        return Err(SnapshotError::Malformed {
            context: "daily column count differs from the identity's day count",
        });
    }

    let n_artifacts = r.count(6)?;
    let mut artifacts = Vec::with_capacity(n_artifacts);
    for _ in 0..n_artifacts {
        let name = r.str16()?.to_owned();
        let len = r.count(0)?;
        let body = std::str::from_utf8(r.take(len)?)
            .map_err(|_| SnapshotError::Malformed {
                context: "artifact body is not UTF-8",
            })?
            .to_owned();
        artifacts.push((name, body));
    }

    if r.remaining() != 0 {
        return Err(SnapshotError::TrailingBytes {
            extra: r.remaining() as u64,
        });
    }

    // `monthly` has exactly seven filled slots: seven iterations, duplicate
    // tags rejected, every tag valid. `take` leaves None behind, which the
    // fallback turns into an empty column set only on an impossible path.
    let mut monthly_iter = monthly;
    let index = StudyIndex::from_columns(
        table,
        site_ids,
        is_cf,
        |source| {
            monthly_iter[source_tag(source) as usize]
                .take()
                .unwrap_or_default()
        },
        alexa_daily,
        umbrella_daily,
    );

    Ok(Snapshot {
        identity,
        index,
        magnitudes,
        artifacts,
        crc32: expected_crc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    fn tiny_snapshot_bytes() -> Vec<u8> {
        let study = Study::run(WorldConfig::tiny(4242)).expect("tiny study");
        encode_study(
            &study,
            "tiny",
            &[("note".to_owned(), "hello snapshot".to_owned())],
        )
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrips_byte_identical() {
        let bytes = tiny_snapshot_bytes();
        let snap = Snapshot::from_bytes(&bytes).expect("decodes");
        assert_eq!(snap.identity.scale, "tiny");
        assert_eq!(snap.identity.n_days, 7);
        assert_eq!(snap.artifacts.len(), 1);
        assert_eq!(snap.to_bytes(), bytes);
        assert!(snap.id().starts_with("tpls-v1-"));
    }

    #[test]
    fn encoding_is_deterministic_across_runs() {
        let a = {
            let s = Study::run(WorldConfig::tiny(77)).expect("study");
            encode_study(&s, "tiny", &[])
        };
        let b = {
            let s = Study::run(WorldConfig::tiny(77)).expect("study");
            encode_study(&s, "tiny", &[])
        };
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = tiny_snapshot_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
        let mut bytes = tiny_snapshot_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn rejects_truncation_and_trailing() {
        let bytes = tiny_snapshot_bytes();
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..bytes.len() / 2]),
            Err(SnapshotError::Truncated { .. })
        ));
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..10]),
            Err(SnapshotError::Truncated { .. })
        ));
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&extended),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn rejects_payload_corruption() {
        let mut bytes = tiny_snapshot_bytes();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }
}
