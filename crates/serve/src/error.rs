//! Typed errors for the snapshot store and the query daemon.
//!
//! Loading a snapshot consumes externally-shaped bytes, and running a server
//! touches the network: both must fail closed with values, never panics — a
//! truncated file or a dropped socket is an expected input here, not a bug.

use std::fmt;
use std::io;

/// Anything that stops a snapshot from being written or read back.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file could not be read or written.
    Io(io::Error),
    /// The file does not start with the snapshot magic — it is some other
    /// format entirely.
    BadMagic {
        /// The first four bytes found.
        found: [u8; 4],
    },
    /// The file is a snapshot, but from an unknown format revision.
    UnsupportedVersion {
        /// The version the header declares.
        found: u16,
    },
    /// The file ends before the structure it declares (truncated copy,
    /// interrupted write).
    Truncated {
        /// Bytes the decoder needed.
        need: u64,
        /// Bytes actually available.
        have: u64,
    },
    /// The payload checksum does not match the header — bit rot or an
    /// in-place edit.
    ChecksumMismatch {
        /// Checksum the header promises.
        expected: u32,
        /// Checksum of the bytes present.
        found: u32,
    },
    /// The payload decodes but violates a structural invariant.
    Malformed {
        /// Which invariant failed.
        context: &'static str,
    },
    /// Decoding finished but bytes remain — the declared length lies.
    TrailingBytes {
        /// Leftover byte count.
        extra: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a topple snapshot (magic {found:02x?})")
            }
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::Truncated { need, have } => {
                write!(f, "snapshot truncated: need {need} bytes, have {have}")
            }
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:08x}, payload is {found:08x}"
            ),
            SnapshotError::Malformed { context } => write!(f, "snapshot malformed: {context}"),
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "snapshot has {extra} bytes past the declared payload")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Anything that stops the query daemon from binding or draining cleanly.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or configuring the listening socket failed.
    Bind {
        /// The address requested.
        addr: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The listener's local address could not be determined.
    Listener(io::Error),
    /// The readiness event loop failed (epoll creation, registration, or
    /// wait) — infrastructure, not a per-connection condition.
    Reactor(io::Error),
    /// Graceful drain exceeded its deadline with connections still holding
    /// unflushed responses.
    DrainTimeout {
        /// Connections whose buffered responses could not be written out
        /// before the deadline passed.
        stuck_connections: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "bind {addr}: {source}"),
            ServeError::Listener(e) => write!(f, "listener: {e}"),
            ServeError::Reactor(e) => write!(f, "event loop: {e}"),
            ServeError::DrainTimeout { stuck_connections } => {
                write!(
                    f,
                    "drain deadline passed with {stuck_connections} connections unflushed"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
            ServeError::Listener(e) => Some(e),
            ServeError::Reactor(e) => Some(e),
            ServeError::DrainTimeout { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_every_variant() {
        let cases: Vec<SnapshotError> = vec![
            SnapshotError::Io(io::Error::new(io::ErrorKind::NotFound, "gone")),
            SnapshotError::BadMagic { found: *b"ELF\x7f" },
            SnapshotError::UnsupportedVersion { found: 9 },
            SnapshotError::Truncated { need: 10, have: 3 },
            SnapshotError::ChecksumMismatch {
                expected: 1,
                found: 2,
            },
            SnapshotError::Malformed {
                context: "cf_prefix must start at 0",
            },
            SnapshotError::TrailingBytes { extra: 7 },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
        assert!(ServeError::DrainTimeout {
            stuck_connections: 2
        }
        .to_string()
        .contains("2 connections"));
        assert!(ServeError::Reactor(io::Error::other("epoll gone"))
            .to_string()
            .contains("event loop"));
    }
}
