//! SIGINT/SIGTERM → shutdown-flag wiring for the CLI.
//!
//! The only place in the workspace that touches a signal handler, and the
//! only `unsafe` in this crate (the crate is `deny(unsafe_code)`; this
//! module carves out the one `libc::signal` call). The handler does the sole
//! thing that is async-signal-safe and useful here: a relaxed store into a
//! static `AtomicBool`, which [`crate::Server::run`]'s accept loop polls.
//!
//! Installed by the `serve` CLI entry point, never by library code or tests
//! — tests flip the server's handle directly.

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide shutdown request flag, set by the handler.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM has been delivered.
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::SHUTDOWN_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)`: fine here — we need no siginfo, no masks, just "run
        /// this on delivery".
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe operation: an atomic store.
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: the handler is a plain extern "C" fn performing a single
        // atomic store — async-signal-safe — and both signal numbers are
        // valid, catchable signals.
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Installs the SIGINT/SIGTERM handlers (no-op on non-Unix platforms).
pub fn install_handlers() {
    #[cfg(unix)]
    sys::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear() {
        // Handlers are not installed in tests; the flag must simply read
        // false until something stores it.
        assert!(!shutdown_requested());
    }
}
