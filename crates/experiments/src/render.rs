//! Renders each study artifact as the paper's corresponding table/figure.

use topple_core::report;
use topple_core::study::Study;
use topple_core::CoreError;
use topple_core::{
    ablation, bias, category, consistency, coverage, intext, listeval, manipulation, movement,
    psl_dev, temporal,
};
use topple_lists::ListSource;

/// Magnitude used for heatmap-style figures: the scaled "100K" (second
/// largest), matching the paper's primary analysis depth.
fn heat_k(study: &Study) -> usize {
    let mags = study.magnitudes();
    mags[mags.len().saturating_sub(2)].1
}

/// Magnitude for the Chrome-cell analyses (Figures 4, 6, 7): the scaled
/// "10K". Per-(country, platform) telemetry cells hold far fewer origins
/// than the global magnitudes; comparing deeper than the cells are saturates
/// every set and hides the bias signal.
fn cell_k(study: &Study) -> usize {
    let mags = study.magnitudes();
    mags[mags.len().saturating_sub(3).min(mags.len() - 1)].1
}

/// Table 1 — Cloudflare coverage of top lists.
pub fn table1(study: &Study) -> String {
    let rows = coverage::table1(study);
    let cols: Vec<String> = rows[0]
        .cells
        .iter()
        .map(|&(l, k, _)| format!("{l}({k})"))
        .collect();
    let names: Vec<String> = rows.iter().map(|r| r.source.name().to_owned()).collect();
    let values: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| r.cells.iter().map(|&(_, _, p)| p).collect())
        .collect();
    report::table(
        "Table 1: Cloudflare coverage of top lists (% of top-k served by the CDN)",
        &cols,
        &names,
        &values,
        2,
    )
}

/// Table 2 — percent of domains deviating from the PSL.
pub fn table2(study: &Study) -> Result<String, CoreError> {
    let rows = psl_dev::table2(study)?;
    let first = rows.first().ok_or(CoreError::EmptyWindow)?;
    let cols: Vec<String> = first
        .cells
        .iter()
        .map(|&(l, k, _)| format!("{l}({k})"))
        .collect();
    let names: Vec<String> = rows.iter().map(|r| r.source.name().to_owned()).collect();
    let values: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| r.cells.iter().map(|&(_, _, p)| p).collect())
        .collect();
    Ok(report::table(
        "Table 2: % of list entries deviating from the Public Suffix List",
        &cols,
        &names,
        &values,
        2,
    ))
}

/// Table 3 — odds of website inclusion by category.
pub fn table3(study: &Study) -> Result<String, CoreError> {
    let k = heat_k(study);
    let cols = category::table3(study, k)?;
    let col_names: Vec<String> = cols.iter().map(|c| c.source.name().to_owned()).collect();
    let first = cols.first().ok_or(CoreError::EmptyWindow)?;
    let row_names: Vec<String> = first
        .rows
        .iter()
        .map(|r| r.category.name().to_owned())
        .collect();
    // Transpose: rows = categories, columns = lists; insignificant -> NaN (–).
    let values: Vec<Vec<f64>> = (0..row_names.len())
        .map(|ri| {
            cols.iter()
                .map(|c| {
                    let r = c.rows[ri];
                    if r.significant {
                        r.odds_ratio
                    } else {
                        f64::NAN
                    }
                })
                .collect()
        })
        .collect();
    Ok(report::table(
        &format!(
            "Table 3: odds of inclusion by category (CF top {k}, day 1; \
             '–' = not significant at p<0.01 Bonferroni-corrected ×{})",
            topple_sim::Category::COUNT
        ),
        &col_names,
        &row_names,
        &values,
        2,
    ))
}

fn consistency_block(title: &str, m: &consistency::ConsistencyMatrix) -> String {
    let mut out = String::new();
    out.push_str(&report::heatmap(
        &format!("{title} — Jaccard index (top {})", m.k),
        &m.labels,
        &m.jaccard,
        2,
    ));
    out.push('\n');
    out.push_str(&report::heatmap(
        &format!("{title} — Spearman correlation"),
        &m.labels,
        &m.spearman,
        2,
    ));
    let (lo, hi) = m.jaccard_range();
    out.push_str(&format!("\nintra-metric Jaccard band: {lo:.2}–{hi:.2}\n"));
    out
}

/// Figure 1 — intra-Cloudflare consistency of the final seven metrics.
pub fn fig1(study: &Study) -> String {
    let m = consistency::intra_cloudflare_final(study, heat_k(study));
    consistency_block("Figure 1: intra-Cloudflare metric consistency (month)", &m)
}

/// Figure 8 — all 21 filter-aggregation combinations, single day.
pub fn fig8(study: &Study) -> Result<String, CoreError> {
    let m = consistency::intra_cloudflare_full(study, heat_k(study))?;
    Ok(consistency_block(
        "Figure 8: all 21 Cloudflare filter-aggregations (day 1)",
        &m,
    ))
}

/// Figure 6 — intra-Chrome metric consistency.
pub fn fig6(study: &Study) -> String {
    let m = consistency::intra_chrome(study, cell_k(study));
    consistency_block("Figure 6: intra-Chrome metric consistency", &m)
}

/// Figure 2 — top lists against the seven Cloudflare metrics.
pub fn fig2(study: &Study) -> Result<String, CoreError> {
    let k = heat_k(study);
    let ev = listeval::figure2(study, k);
    let metric_labels: Vec<String> = ev.metrics.iter().map(|m| m.label()).collect();
    let list_labels: Vec<String> = ev.lists.iter().map(|l| l.name().to_owned()).collect();
    let mut out = report::table(
        &format!("Figure 2a: lists vs Cloudflare metrics — Jaccard (top {k})"),
        &metric_labels,
        &list_labels,
        &ev.jaccard,
        2,
    );
    out.push('\n');
    out.push_str(&report::table(
        "Figure 2b: lists vs Cloudflare metrics — Spearman ('–' = bucketed CrUX)",
        &metric_labels,
        &list_labels,
        &ev.spearman,
        2,
    ));
    out.push_str("\nJI range per list across metrics (Section 5.1):\n");
    for (src, lo, hi) in ev.jaccard_ranges() {
        out.push_str(&format!("  {:<9} {lo:.2}–{hi:.2}\n", src.name()));
    }
    out.push_str("\nBootstrap 95% CI on mean daily JI vs all-requests (resampling days):\n");
    for &src in &ev.lists {
        let ci = listeval::mean_ji_ci(study, src, k)?;
        out.push_str(&format!(
            "  {:<9} {:.3} [{:.3}, {:.3}]\n",
            src.name(),
            ci.estimate,
            ci.lo,
            ci.hi
        ));
    }
    out.push_str("\nAccuracy ordering agreement between metrics (Spearman of JI rows):\n");
    let agreement = ev.metric_agreement();
    let mut min_rho = f64::INFINITY;
    for (i, row) in agreement.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if i != j && v.is_finite() {
                min_rho = min_rho.min(v);
            }
        }
    }
    out.push_str(&format!("  minimum pairwise rho = {min_rho:.3}\n"));
    Ok(out)
}

/// Figure 3 — daily similarity series.
pub fn fig3(study: &Study) -> String {
    let k = heat_k(study);
    let series = temporal::figure3(study, k);
    let names: Vec<String> = series.iter().map(|s| s.source.name().to_owned()).collect();
    let days = series[0].jaccard.len();
    let ji: Vec<Vec<f64>> = series.iter().map(|s| s.jaccard.clone()).collect();
    let rho: Vec<Vec<f64>> = series.iter().map(|s| s.spearman.clone()).collect();
    let mut out = report::series(
        &format!("Figure 3a: daily Jaccard vs all-HTTP-requests (top {k})"),
        &names,
        days,
        &ji,
    );
    out.push('\n');
    out.push_str(&report::series(
        "Figure 3b: daily Spearman vs all-HTTP-requests",
        &names,
        days,
        &rho,
    ));
    out.push_str("\nList stability at the same depth (mean daily top-k retention / rank churn):\n");
    for (name, days) in [
        ("Alexa", &study.alexa_daily),
        ("Umbrella", &study.umbrella_daily),
    ] {
        let rep = topple_lists::stability(days, k);
        out.push_str(&format!(
            "  {:<9} retention {:.3}  rank churn {:.1}\n",
            name,
            rep.mean_retention(),
            rep.mean_rank_churn()
        ));
    }
    out.push_str("\nPeriodicity (dominant lag of JI series) and weekday/weekend split:\n");
    for s in &series {
        let period = s
            .jaccard_period()
            .map(|(l, a)| format!("lag {l} (ac {a:.2})"));
        let split = s.jaccard_split().map(|sp| {
            format!(
                "weekday {:.3} vs weekend {:.3}",
                sp.weekday_mean, sp.weekend_mean
            )
        });
        out.push_str(&format!(
            "  {:<9} {}  {}\n",
            s.source.name(),
            period.unwrap_or_else(|| "–".into()),
            split.unwrap_or_else(|| "–".into())
        ));
    }
    out
}

/// Figure 5 — rank-magnitude movement for one list.
pub fn fig5(study: &Study, source: ListSource) -> String {
    let rep = movement::figure5(study, source);
    let mut cols: Vec<String> = rep.magnitudes.iter().map(|m| format!("→{m}")).collect();
    cols.push("→absent".into());
    let rows: Vec<String> = rep.magnitudes.iter().map(|m| format!("CF {m}")).collect();
    let values: Vec<Vec<f64>> = rep
        .flows
        .iter()
        .map(|r| r.iter().map(|&c| c as f64).collect())
        .collect();
    let mut out = report::table(
        &format!(
            "Figure 5: rank-magnitude movement, Cloudflare → {}",
            source.name()
        ),
        &cols,
        &rows,
        &values,
        0,
    );
    out.push_str("\nOverranking per list bucket (Section 5.3):\n");
    for b in &rep.overranking {
        out.push_str(&format!(
            "  {} top {:>7}: {:>5} measured, {:>5.1}% overranked, {:>4.1}% by ≥2 magnitudes\n",
            source.name(),
            b.magnitude,
            b.measured,
            b.overranked,
            b.overranked_two_plus
        ));
    }
    out
}

/// Figure 4 — performance by client platform.
pub fn fig4(study: &Study) -> String {
    let k = cell_k(study);
    let f = bias::figure4(study, k);
    let cols: Vec<String> = f.platforms.iter().map(|p| p.name().to_owned()).collect();
    let rows: Vec<String> = f.lists.iter().map(|l| l.name().to_owned()).collect();
    let ji: Vec<Vec<f64>> = f
        .cells
        .iter()
        .map(|r| r.iter().map(|c| c.jaccard).collect())
        .collect();
    let rho: Vec<Vec<f64>> = f
        .cells
        .iter()
        .map(|r| r.iter().map(|c| c.spearman).collect())
        .collect();
    let mut out = report::table(
        &format!("Figure 4a: Jaccard vs Chrome by platform (top {k}, averaged over countries)"),
        &cols,
        &rows,
        &ji,
        3,
    );
    out.push('\n');
    out.push_str(&report::table(
        "Figure 4b: Spearman vs Chrome by platform",
        &cols,
        &rows,
        &rho,
        3,
    ));
    out
}

/// Figure 7 — performance by client country.
pub fn fig7(study: &Study) -> String {
    let k = cell_k(study);
    let f = bias::figure7(study, k);
    let cols: Vec<String> = f.countries.iter().map(|c| c.code().to_owned()).collect();
    let rows: Vec<String> = f.lists.iter().map(|l| l.name().to_owned()).collect();
    let ji: Vec<Vec<f64>> = f
        .cells
        .iter()
        .map(|r| r.iter().map(|c| c.jaccard).collect())
        .collect();
    let rho: Vec<Vec<f64>> = f
        .cells
        .iter()
        .map(|r| r.iter().map(|c| c.spearman).collect())
        .collect();
    let mut out = report::table(
        &format!("Figure 7a: Jaccard vs Chrome by country (top {k}, averaged over platforms)"),
        &cols,
        &rows,
        &ji,
        3,
    );
    out.push('\n');
    out.push_str(&report::table(
        "Figure 7b: Spearman vs Chrome by country",
        &cols,
        &rows,
        &rho,
        3,
    ));
    out
}

/// Ablations of methodological choices (not a paper artifact; DESIGN.md §4).
pub fn ablations(study: &Study) -> Result<String, CoreError> {
    let k = heat_k(study);
    let mut out = String::new();
    out.push_str(&format!(
        "Ablation A: PSL normalization on/off (JI vs all-requests, top {k})\n"
    ));
    for row in ablation::normalization(study, k)? {
        out.push_str(&format!(
            "  {:<9} normalized {:.3}   raw names {:.3}\n",
            row.source.name(),
            row.normalized,
            row.raw
        ));
    }
    out.push_str("\nAblation B: Tranco aggregation window (days -> JI)\n");
    for (w, ji) in ablation::tranco_window(study, &[1, 3, 7, 14, 28], k) {
        out.push_str(&format!("  {w:>2} days: {ji:.3}\n"));
    }
    out.push_str("\nAblation C: CrUX privacy threshold (threshold -> list size, JI)\n");
    for (t, len, ji) in ablation::crux_threshold(study, &[1, 2, 3, 5, 10, 25], k) {
        out.push_str(&format!(
            "  >={t:>3} unique clients: {len:>7} origins, JI {ji:.3}\n"
        ));
    }
    Ok(out)
}

/// Manipulation-resistance experiment (extension; paper §2 / Tranco \[18\]).
pub fn attack(study: &Study) -> String {
    let n_days = study.alexa_daily.len();
    let durations = [1usize, 3, 7, 14, 28]
        .into_iter()
        .filter(|&d| d <= n_days)
        .collect::<Vec<_>>();
    let mut out = String::from(
        "Attack: forge rank 1 of the Alexa daily snapshot for d days; rank attained in Tranco\n",
    );
    for o in manipulation::capture_sweep(study, &durations, 1) {
        out.push_str(&format!(
            "  {:>2} day(s) of control -> Tranco rank {}\n",
            o.days_controlled,
            o.attained_rank
                .map(|r| r.to_string())
                .unwrap_or_else(|| "unlisted".into())
        ));
    }
    out.push_str("(Aggregation forces sustained — therefore expensive — control.)\n");
    out
}

/// Section 3.2's in-text redundancy numbers, paper vs measured.
pub fn intext_numbers(study: &Study) -> Result<String, CoreError> {
    let k = heat_k(study);
    let mut out = format!("Section 3.2 redundancy pairs (day 1, top {k}): paper vs measured\n");
    for p in intext::section_3_2(study, k)? {
        out.push_str(&format!(
            "  {:<24} vs {:<24} rho {:.2} (paper {:.2})  JI {:.2} (paper {:.2})\n    — {}\n",
            p.a.label(),
            p.b.label(),
            p.rho,
            p.paper_rho,
            p.ji,
            p.paper_ji,
            p.claim
        ));
    }
    Ok(out)
}

/// Mechanism attribution (extension; paper §7's open question). Runs its own
/// small counterfactual worlds derived from the study's seed.
pub fn attribution(study: &Study) -> Result<String, CoreError> {
    use topple_core::attribution::mechanism_attribution;
    let base = topple_sim::WorldConfig::small(study.world.config.seed);
    let mut out = String::from(
        "Mechanism attribution (small-scale counterfactual worlds; mean Figure-2 JI):\n",
    );
    out.push_str(&format!(
        "  {:<34} {:>7} {:>9} {:>7}\n",
        "scenario", "Alexa", "Umbrella", "CrUX"
    ));
    for row in mechanism_attribution(base)? {
        out.push_str(&format!(
            "  {:<34} {:>7.3} {:>9.3} {:>7.3}\n",
            row.scenario, row.alexa_ji, row.umbrella_ji, row.crux_ji
        ));
    }
    out.push_str(
        "(The counterfactual the real study could not run: §7's 'why do these biases arise'.)\n",
    );
    Ok(out)
}
