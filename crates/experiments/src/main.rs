//! Regenerates every table and figure of the paper's evaluation, and fronts
//! the snapshot store / query daemon.
//!
//! ```text
//! topple-experiments [--scale tiny|small|medium|paper] [--seed N] [--workers N] <what>
//!   what: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8
//!         ablate attack intext attribution all
//!
//! topple-experiments snapshot write <path> [--scale ..] [--seed N] [--workers N]
//!   Runs the study and persists its columnar index (plus rendered table1 /
//!   fig1 artifacts) as a checksummed binary snapshot.
//!
//! topple-experiments serve <path> [--addr HOST:PORT] [--workers N]
//!   Serves rank/compare/movement queries from a snapshot over HTTP/1.1;
//!   prints `ready addr=.. snapshot=..` on stdout once bound, drains
//!   gracefully on SIGINT/SIGTERM.
//! ```
//!
//! Output is plain text: the same rows/series the paper reports, produced
//! from the synthetic world (see DESIGN.md for the substitution rationale and
//! EXPERIMENTS.md for paper-vs-measured).

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use topple_core::{CoreError, Study};
use topple_lists::ListSource;
use topple_serve::{QuerySnapshot, Server};
use topple_sim::WorldConfig;

mod render;

/// Every experiment name the default mode accepts, in `all` order plus the
/// standalone extras.
const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "ablate",
    "attack",
    "intext",
    "attribution",
    "all",
];

/// Runs `f` and reports how long it took. Timing here feeds operator
/// progress output on stderr and never enters a result, so determinism is
/// unaffected.
fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    // topple-lint: allow(wall-clock): operator progress reporting only; never part of results
    let t0 = std::time::Instant::now();
    let value = f();
    (value, t0.elapsed())
}

fn usage() -> String {
    format!(
        "usage:\n  topple-experiments [--scale tiny|small|medium|paper] [--seed N] [--workers N] <experiment>\n  \
         topple-experiments snapshot write <path> [--scale ..] [--seed N] [--workers N]\n  \
         topple-experiments serve <path> [--addr HOST:PORT] [--workers N]\n\
         experiments: {}",
        EXPERIMENTS.join(" ")
    )
}

/// World-building flags shared by experiment mode and `snapshot write`.
struct WorldFlags {
    scale: String,
    seed: u64,
    workers: Option<usize>,
}

impl WorldFlags {
    fn new() -> Self {
        WorldFlags {
            scale: "medium".to_owned(),
            seed: 20220201,
            workers: None,
        }
    }

    /// Consumes one flag if it is a world flag; `Ok(false)` means "not
    /// mine", `Err` is a malformed value.
    fn consume(
        &mut self,
        arg: &str,
        args: &mut impl Iterator<Item = String>,
    ) -> Result<bool, String> {
        match arg {
            "--scale" => {
                self.scale = args.next().ok_or("--scale requires a value")?;
                Ok(true)
            }
            "--seed" => {
                self.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed requires an integer")?;
                Ok(true)
            }
            "--workers" => {
                self.workers = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--workers requires an integer")?,
                );
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn config(&self) -> Result<WorldConfig, String> {
        let base = match self.scale.as_str() {
            "tiny" => WorldConfig::tiny(self.seed),
            "small" => WorldConfig::small(self.seed),
            "medium" => WorldConfig::medium(self.seed),
            "paper" => WorldConfig::paper(self.seed),
            other => return Err(format!("unknown scale `{other}`")),
        };
        Ok(WorldConfig {
            workers: self.workers,
            ..base
        })
    }
}

/// Builds the world and runs the full study, with progress on stderr.
fn run_study(flags: &WorldFlags) -> Result<Study, String> {
    let config = flags.config()?;
    eprintln!(
        "# world: {} sites, {} clients, {} days, seed {} (scale {}, {} workers)",
        config.n_sites,
        config.n_clients,
        config.days.len(),
        config.seed,
        flags.scale,
        config.effective_workers(),
    );
    let (study, took) = timed(|| Study::run(config));
    let study = study.map_err(|e| format!("study failed: {e}"))?;
    eprintln!("# study ready in {:.1}s", took.as_secs_f64());
    Ok(study)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("snapshot") => snapshot_main(args),
        Some("serve") => serve_main(args),
        Some(first) => experiment_main(first, args),
        None => {
            eprintln!("{}", usage());
            Ok(ExitCode::FAILURE)
        }
    }
    .unwrap_or_else(|message| {
        eprintln!("{message}\n{}", usage());
        ExitCode::FAILURE
    })
}

/// `snapshot write <path>`: run the study, persist it.
fn snapshot_main(mut args: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    match args.next().as_deref() {
        Some("write") => {}
        Some(other) => return Err(format!("unknown snapshot subcommand `{other}`")),
        None => return Err("snapshot requires a subcommand (write)".to_owned()),
    }
    let mut flags = WorldFlags::new();
    let mut path: Option<String> = None;
    while let Some(arg) = args.next() {
        if flags.consume(&arg, &mut args)? {
            continue;
        }
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let path = path.ok_or("snapshot write requires an output path")?;
    let study = run_study(&flags)?;
    // Bake the headline rendered reports in alongside the index so a serving
    // host needs nothing but the snapshot file.
    let artifacts = vec![
        ("table1".to_owned(), render::table1(&study)),
        ("fig1".to_owned(), render::fig1(&study)),
    ];
    let (written, took) = timed(|| {
        topple_serve::write_study(
            &study,
            &flags.scale,
            &artifacts,
            std::path::Path::new(&path),
        )
    });
    let id = written.map_err(|e| format!("snapshot write failed: {e}"))?;
    let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    eprintln!("# snapshot encoded in {:.2}s", took.as_secs_f64());
    println!("wrote {path} snapshot={id} bytes={size}");
    Ok(ExitCode::SUCCESS)
}

/// `serve <path>`: load a snapshot and run the query daemon until signaled.
fn serve_main(mut args: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    let mut addr = "127.0.0.1:8643".to_owned();
    let mut workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(8);
    let mut path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().ok_or("--addr requires HOST:PORT")?,
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--workers requires an integer")?
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let path = path.ok_or("serve requires a snapshot path")?;
    let (loaded, took) = timed(|| QuerySnapshot::load(std::path::Path::new(&path)));
    let snapshot = loaded.map_err(|e| format!("cannot serve `{path}`: {e}"))?;
    eprintln!(
        "# snapshot loaded in {:.2}s: {} domains, scale {}",
        took.as_secs_f64(),
        snapshot.snapshot().index.table().len(),
        snapshot.snapshot().identity.scale,
    );

    let server = Server::bind(&addr, snapshot, workers).map_err(|e| e.to_string())?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    // Bridge delivered signals to the server's shutdown flag.
    topple_serve::signal::install_handlers();
    let handle = server.handle();
    std::thread::spawn(move || loop {
        if topple_serve::signal::shutdown_requested() {
            handle.store(true, std::sync::atomic::Ordering::SeqCst);
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    });

    println!(
        "ready addr={bound} snapshot={} workers={workers}",
        server.snapshot().id()
    );
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(stats) => {
            eprintln!(
                "# drained: {} connections, {} requests",
                stats.connections, stats.requests
            );
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => Err(format!("serve failed: {e}")),
    }
}

/// Default mode: regenerate tables/figures. The experiment name is validated
/// *before* the study runs, so a typo fails in milliseconds, not minutes.
fn experiment_main(
    first: &str,
    mut args: impl Iterator<Item = String>,
) -> Result<ExitCode, String> {
    let mut flags = WorldFlags::new();
    let mut what: Option<String> = None;
    let mut pending = Some(first.to_owned());
    while let Some(arg) = pending.take().or_else(|| args.next()) {
        if flags.consume(&arg, &mut args)? {
            continue;
        }
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other if what.is_none() && !other.starts_with('-') => what = Some(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let what = what.ok_or("missing experiment name")?;
    if !EXPERIMENTS.contains(&what.as_str()) {
        return Err(format!("unknown experiment `{what}`"));
    }
    flags.config()?; // validate --scale before the expensive run too
    let study = run_study(&flags)?;

    let run = |name: &str| -> Result<(), CoreError> {
        match name {
            "table1" => print!("{}", render::table1(&study)),
            "table2" => print!("{}", render::table2(&study)?),
            "table3" => print!("{}", render::table3(&study)?),
            "fig1" => print!("{}", render::fig1(&study)),
            "fig2" => print!("{}", render::fig2(&study)?),
            "fig3" => print!("{}", render::fig3(&study)),
            "fig4" => print!("{}", render::fig4(&study)),
            "fig5" => {
                print!("{}", render::fig5(&study, ListSource::Alexa));
                print!("{}", render::fig5(&study, ListSource::Crux));
            }
            "fig6" => print!("{}", render::fig6(&study)),
            "fig7" => print!("{}", render::fig7(&study)),
            "fig8" => print!("{}", render::fig8(&study)?),
            "ablate" => print!("{}", render::ablations(&study)?),
            "attack" => print!("{}", render::attack(&study)),
            "intext" => print!("{}", render::intext_numbers(&study)?),
            "attribution" => print!("{}", render::attribution(&study)?),
            // Unreachable: `what` was validated against EXPERIMENTS above.
            _ => {}
        }
        Ok(())
    };

    if what == "all" {
        let mut all_ok = true;
        for name in [
            "table1", "table2", "fig1", "fig8", "fig2", "fig3", "fig5", "fig6", "fig4", "fig7",
            "table3",
        ] {
            match run(name) {
                Ok(()) => println!(),
                Err(e) => {
                    eprintln!("{name} failed: {e}");
                    all_ok = false;
                }
            }
        }
        if !all_ok {
            return Err("one or more experiments failed".to_owned());
        }
    } else if let Err(e) = run(&what) {
        return Err(format!("{what} failed: {e}"));
    }
    Ok(ExitCode::SUCCESS)
}
