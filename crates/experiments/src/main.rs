//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! topple-experiments [--scale tiny|small|medium|paper] [--seed N] [--workers N] <what>
//!   what: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 all
//! ```
//!
//! Output is plain text: the same rows/series the paper reports, produced
//! from the synthetic world (see DESIGN.md for the substitution rationale and
//! EXPERIMENTS.md for paper-vs-measured).

use std::process::ExitCode;
use std::time::Duration;

use topple_core::{CoreError, Study};
use topple_lists::ListSource;
use topple_sim::WorldConfig;

mod render;

/// Runs `f` and reports how long it took. The only wall-clock read in the
/// workspace: timing here feeds operator progress output on stderr and never
/// enters a result, so determinism is unaffected.
fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    // topple-lint: allow(wall-clock): operator progress reporting only; never part of results
    let t0 = std::time::Instant::now();
    let value = f();
    (value, t0.elapsed())
}

fn usage() -> &'static str {
    "usage: topple-experiments [--scale tiny|small|medium|paper] [--seed N] [--workers N] \
     <table1|table2|table3|fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|ablate|attack|intext|attribution|all>"
}

fn main() -> ExitCode {
    let mut scale = "medium".to_owned();
    let mut seed = 20220201u64;
    let mut workers: Option<usize> = None;
    let mut what: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next() {
                Some(v) => scale = v,
                None => {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => workers = Some(v),
                None => {
                    eprintln!("--workers requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if what.is_none() && !other.starts_with('-') => what = Some(other.to_owned()),
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(what) = what else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };

    let base = match scale.as_str() {
        "tiny" => WorldConfig::tiny(seed),
        "small" => WorldConfig::small(seed),
        "medium" => WorldConfig::medium(seed),
        "paper" => WorldConfig::paper(seed),
        other => {
            eprintln!("unknown scale `{other}`\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let config = WorldConfig { workers, ..base };

    eprintln!(
        "# world: {} sites, {} clients, {} days, seed {} (scale {scale}, {} workers)",
        config.n_sites,
        config.n_clients,
        config.days.len(),
        config.seed,
        config.effective_workers(),
    );
    let (study, took) = timed(|| Study::run(config));
    let study = match study {
        Ok(s) => s,
        Err(e) => {
            eprintln!("study failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("# study ready in {:.1}s", took.as_secs_f64());

    let run = |name: &str| -> Result<bool, CoreError> {
        match name {
            "table1" => print!("{}", render::table1(&study)),
            "table2" => print!("{}", render::table2(&study)?),
            "table3" => print!("{}", render::table3(&study)?),
            "fig1" => print!("{}", render::fig1(&study)),
            "fig2" => print!("{}", render::fig2(&study)?),
            "fig3" => print!("{}", render::fig3(&study)),
            "fig4" => print!("{}", render::fig4(&study)),
            "fig5" => {
                print!("{}", render::fig5(&study, ListSource::Alexa));
                print!("{}", render::fig5(&study, ListSource::Crux));
            }
            "fig6" => print!("{}", render::fig6(&study)),
            "fig7" => print!("{}", render::fig7(&study)),
            "fig8" => print!("{}", render::fig8(&study)?),
            "ablate" => print!("{}", render::ablations(&study)?),
            "attack" => print!("{}", render::attack(&study)),
            "intext" => print!("{}", render::intext_numbers(&study)?),
            "attribution" => print!("{}", render::attribution(&study)?),
            _ => return Ok(false),
        }
        Ok(true)
    };

    let ok = match what.as_str() {
        "all" => {
            let mut all_ok = true;
            for name in [
                "table1", "table2", "fig1", "fig8", "fig2", "fig3", "fig5", "fig6", "fig4", "fig7",
                "table3",
            ] {
                match run(name) {
                    Ok(true) => println!(),
                    Ok(false) => {
                        eprintln!("internal: `{name}` is not a known experiment");
                        all_ok = false;
                    }
                    Err(e) => {
                        eprintln!("{name} failed: {e}");
                        all_ok = false;
                    }
                }
            }
            if !all_ok {
                return ExitCode::FAILURE;
            }
            true
        }
        other => match run(other) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("{other} failed: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if !ok {
        eprintln!("unknown experiment `{what}`\n{}", usage());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
