//! Shared fixtures for the Criterion benchmark harness.
//!
//! The real benchmark targets live in `benches/`; this library exposes the
//! fixture builders they share so that expensive setup (worlds, studies) is
//! constructed once per target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

use topple_core::Study;
use topple_sim::{World, WorldConfig};

/// Seed used by every benchmark fixture (stable numbers across runs).
pub const BENCH_SEED: u64 = 0xB_EEF;

/// A lazily-built small study shared by the per-figure benchmarks.
pub fn small_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    // topple-lint: allow(unwrap): bench fixture; a broken study must abort the benchmark run
    STUDY.get_or_init(|| Study::run(WorldConfig::small(BENCH_SEED)).expect("bench study"))
}

/// A lazily-built tiny world for simulation kernels.
pub fn tiny_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    // topple-lint: allow(unwrap): bench fixture; a broken world must abort the benchmark run
    WORLD.get_or_init(|| World::generate(WorldConfig::tiny(BENCH_SEED)).expect("bench world"))
}

/// Deterministic pseudo-random `f64` vector for statistics kernels.
pub fn noise_vector(n: usize, salt: u64) -> Vec<f64> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ salt;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(noise_vector(8, 1).len(), 8);
        assert!(noise_vector(8, 1).iter().all(|v| (0.0..1.0).contains(v)));
        assert_ne!(noise_vector(8, 1), noise_vector(8, 2));
        let w = tiny_world();
        assert_eq!(w.sites.len(), 400);
    }
}
