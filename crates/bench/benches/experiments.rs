//! One benchmark per paper table/figure: times the analysis that regenerates
//! each artifact on a shared small study (the study itself is built once).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use topple_bench::small_study;
use topple_core::{bias, category, consistency, coverage, listeval, movement, psl_dev, temporal};
use topple_lists::ListSource;

fn heat_k(study: &topple_core::Study) -> usize {
    let mags = study.magnitudes();
    mags[mags.len().saturating_sub(2)].1
}

fn bench_tables(c: &mut Criterion) {
    let s = small_study();
    let k = heat_k(s);
    c.bench_function("table1_coverage", |b| {
        b.iter(|| black_box(coverage::table1(s)))
    });
    c.bench_function("table2_psl", |b| b.iter(|| black_box(psl_dev::table2(s))));
    let mut g = c.benchmark_group("slow_tables");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(2));
    g.bench_function("table3_logit", |b| {
        b.iter(|| black_box(category::table3(s, k)))
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let s = small_study();
    let k = heat_k(s);
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(2));
    g.bench_function("fig1_intra_cf", |b| {
        b.iter(|| black_box(consistency::intra_cloudflare_final(s, k)))
    });
    g.bench_function("fig2_list_eval", |b| {
        b.iter(|| black_box(listeval::figure2(s, k)))
    });
    g.bench_function("fig3_temporal", |b| {
        b.iter(|| black_box(temporal::figure3(s, k)))
    });
    g.bench_function("fig4_platform", |b| {
        b.iter(|| black_box(bias::figure4(s, k)))
    });
    g.bench_function("fig5_movement", |b| {
        b.iter(|| {
            black_box(movement::figure5(s, ListSource::Alexa));
            black_box(movement::figure5(s, ListSource::Crux));
        })
    });
    g.bench_function("fig6_intra_chrome", |b| {
        b.iter(|| black_box(consistency::intra_chrome(s, k)))
    });
    g.bench_function("fig7_country", |b| {
        b.iter(|| black_box(bias::figure7(s, k)))
    });
    g.bench_function("fig8_full_suite", |b| {
        b.iter(|| black_box(consistency::intra_cloudflare_full(s, k)))
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
