//! Benchmarks of the interned/columnar analysis stage against the legacy
//! string-keyed path it replaced.
//!
//! Three questions, mirroring the tentpole's acceptance bar:
//!
//! 1. **String-set vs id-slice Jaccard** — one pairwise comparison at each
//!    paper magnitude, plus the full 7×7 set-comparison grid at the 100K
//!    magnitude (the bar: ids beat strings by >= 3x on the grid).
//! 2. **Normalize once vs per day** — a cold `Normalizer` per evaluation
//!    (what `temporal::figure3` used to do for every static list every day)
//!    versus re-normalizing through a warm, memoized one.
//! 3. **Consistency-matrix scaling** — `matrix_from_id_rankings` across
//!    worker counts 1/2/4/8 (byte-identical output; see
//!    `tests/determinism.rs`).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use topple_bench::small_study;
use topple_core::consistency::matrix_from_id_rankings;
use topple_core::{jaccard_domains, IdCut};
use topple_lists::{DomainId, DomainTable, Normalizer};
use topple_psl::DomainName;
use topple_stats::sets::jaccard_sorted;

/// Interns `n` synthetic registrable domains, returning the parsed names and
/// their dense ids (id `i` == name `i`, as in a study's `DomainTable`).
fn universe(n: usize) -> (Vec<DomainName>, Vec<DomainId>) {
    let mut table = DomainTable::with_capacity(n);
    let names: Vec<DomainName> = (0..n)
        // topple-lint: allow(unwrap): bench fixture; synthetic names always parse
        .map(|i| format!("site-{i}.example").parse().expect("valid name"))
        .collect();
    let ids: Vec<DomainId> = names.iter().map(|nm| table.intern(nm)).collect();
    (names, ids)
}

/// Best-first ranking of `k` entries starting at `offset` into the universe —
/// overlapping windows give the half-overlap structure real list cuts have.
fn window<T: Clone>(items: &[T], offset: usize, k: usize) -> Vec<T> {
    items[offset..offset + k].to_vec()
}

fn bench_jaccard_paths(c: &mut Criterion) {
    let (names, ids) = universe(150_000);
    let mut g = c.benchmark_group("jaccard_path");
    g.sample_size(10);
    for &k in &[1_000usize, 10_000, 100_000] {
        let a_names: Vec<&DomainName> = names[..k].iter().collect();
        let b_names: Vec<&DomainName> = names[k / 2..k / 2 + k].iter().collect();
        g.bench_with_input(BenchmarkId::new("string", k), &k, |b, _| {
            b.iter(|| jaccard_domains(black_box(&a_names), black_box(&b_names)))
        });
        let cut_a = IdCut::new(&window(&ids, 0, k));
        let cut_b = IdCut::new(&window(&ids, k / 2, k));
        g.bench_with_input(BenchmarkId::new("ids", k), &k, |b, _| {
            b.iter(|| jaccard_sorted(black_box(cut_a.ids()), black_box(cut_b.ids())))
        });
    }
    g.finish();
}

/// The figure-2-shaped workload: a 7-list × 7-metric grid of pairwise top-100K
/// comparisons. The legacy path rebuilt two domain-string hash sets per cell;
/// the interned path merge-walks prepared sorted id columns.
fn bench_set_comparison_grid(c: &mut Criterion) {
    const K: usize = 100_000;
    let (names, ids) = universe(2 * K);
    let list_offsets: Vec<usize> = (0..7).map(|i| i * 9_000).collect();
    let metric_offsets: Vec<usize> = (0..7).map(|i| 30_000 + i * 7_000).collect();

    let mut g = c.benchmark_group("set_comparison_grid");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));

    let list_names: Vec<Vec<&DomainName>> = list_offsets
        .iter()
        .map(|&o| names[o..o + K].iter().collect())
        .collect();
    let metric_names: Vec<Vec<&DomainName>> = metric_offsets
        .iter()
        .map(|&o| names[o..o + K].iter().collect())
        .collect();
    g.bench_function("string_100k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for l in &list_names {
                for m in &metric_names {
                    acc += jaccard_domains(black_box(l), black_box(m));
                }
            }
            acc
        })
    });

    let list_cuts: Vec<IdCut> = list_offsets
        .iter()
        .map(|&o| IdCut::new(&window(&ids, o, K)))
        .collect();
    let metric_cuts: Vec<IdCut> = metric_offsets
        .iter()
        .map(|&o| IdCut::new(&window(&ids, o, K)))
        .collect();
    g.bench_function("ids_100k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for l in &list_cuts {
                for m in &metric_cuts {
                    acc += jaccard_sorted(black_box(l.ids()), black_box(m.ids()));
                }
            }
            acc
        })
    });
    g.finish();
}

/// Cold normalizer per evaluation (the old per-day cost for static lists in
/// `temporal::figure3`) versus a warm memoized normalizer re-visiting the
/// same entries.
fn bench_normalize(c: &mut Criterion) {
    let study = small_study();
    let psl = &study.world.psl;
    let list = &study.tranco;
    let mut g = c.benchmark_group("normalize");
    g.sample_size(10);
    g.bench_function("per_day_cold", |b| {
        b.iter(|| {
            let mut norm = Normalizer::new(psl);
            black_box(norm.ranked(black_box(list)).len())
        })
    });
    let mut warm = Normalizer::new(psl);
    warm.ranked(list); // populate the entry memo once
    g.bench_function("memoized_warm", |b| {
        b.iter(|| black_box(warm.ranked(black_box(list)).len()))
    });
    g.finish();
}

/// The 21-metric intra-CDN consistency matrix at top-10K, across worker
/// counts.
fn bench_matrix_workers(c: &mut Criterion) {
    const K: usize = 10_000;
    const METRICS: usize = 21;
    let (_, ids) = universe(K + METRICS * 2_000);
    let rankings: Vec<Vec<DomainId>> = (0..METRICS).map(|i| window(&ids, i * 2_000, K)).collect();
    let labels: Vec<String> = (0..METRICS).map(|i| format!("metric-{i}")).collect();
    let mut g = c.benchmark_group("consistency_matrix");
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("21x10k", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    black_box(matrix_from_id_rankings(
                        labels.clone(),
                        black_box(&rankings),
                        K,
                        workers,
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_jaccard_paths,
    bench_set_comparison_grid,
    bench_normalize,
    bench_matrix_workers
);
criterion_main!(benches);
