//! Benchmarks of the simulation substrate: world generation, per-day traffic
//! generation, vantage ingestion, and list construction.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use topple_bench::{tiny_world, BENCH_SEED};
use topple_sim::{Resolver, World, WorldConfig};
use topple_vantage::{CdnVantage, ChromeVantage, CrawlerVantage, DnsVantage, PanelVantage};

fn bench_world_generation(c: &mut Criterion) {
    c.bench_function("world/generate_tiny_400", |b| {
        b.iter(|| World::generate(black_box(WorldConfig::tiny(BENCH_SEED))).unwrap())
    });
    let mut g = c.benchmark_group("world_slow");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(2));
    g.bench_function("generate_small_4k", |b| {
        b.iter(|| World::generate(black_box(WorldConfig::small(BENCH_SEED))).unwrap())
    });
    g.finish();
}

fn bench_traffic(c: &mut Criterion) {
    let w = tiny_world();
    c.bench_function("traffic/simulate_day_tiny", |b| {
        b.iter(|| black_box(w.simulate_day(0)))
    });
}

fn bench_vantages(c: &mut Criterion) {
    let w = tiny_world();
    let t = w.simulate_day(0);
    c.bench_function("vantage/cdn_observe_day", |b| {
        b.iter(|| black_box(CdnVantage::observe_day(w, &t)))
    });
    c.bench_function("vantage/chrome_ingest_day", |b| {
        b.iter(|| {
            let mut v = ChromeVantage::new(w);
            v.ingest_day(w, &t);
            black_box(v.day_count())
        })
    });
    c.bench_function("vantage/dns_ingest_day", |b| {
        b.iter(|| {
            let mut v = DnsVantage::new(Resolver::Umbrella);
            v.ingest_day(w, &t);
            black_box(v.day_count())
        })
    });
    c.bench_function("vantage/panel_ingest_day", |b| {
        b.iter(|| {
            let mut v = PanelVantage::new(w);
            v.ingest_day(w, &t);
            black_box(v.day_count())
        })
    });
    c.bench_function("vantage/crawl_full", |b| {
        b.iter(|| black_box(CrawlerVantage::crawl(w, 10, usize::MAX)))
    });
}

fn bench_lists(c: &mut Criterion) {
    let w = tiny_world();
    let t0 = w.simulate_day(0);
    let mut panel = PanelVantage::new(w);
    panel.ingest_day(w, &t0);
    let mut umb = DnsVantage::new(Resolver::Umbrella);
    umb.ingest_day(w, &t0);
    let mut china = DnsVantage::new(Resolver::ChinaVoting);
    china.ingest_day(w, &t0);
    let crawl = CrawlerVantage::crawl(w, 10, usize::MAX);

    c.bench_function("lists/alexa_daily", |b| {
        b.iter(|| black_box(topple_lists::alexa::build_daily(w, &panel, 0, 28, 10_000)))
    });
    c.bench_function("lists/umbrella_daily", |b| {
        b.iter(|| black_box(topple_lists::umbrella::build_daily(w, &umb, 0, 1, 10_000)))
    });
    c.bench_function("lists/majestic", |b| {
        b.iter(|| black_box(topple_lists::majestic::build(w, &crawl, 10_000)))
    });
    c.bench_function("lists/secrank_voting", |b| {
        b.iter(|| black_box(topple_lists::secrank::build(w, &china, 1, 10_000)))
    });
    let alexa = topple_lists::alexa::build_daily(w, &panel, 0, 28, 10_000);
    let umbrella = topple_lists::umbrella::build_daily(w, &umb, 0, 1, 10_000);
    let majestic = topple_lists::majestic::build(w, &crawl, 10_000);
    let inputs = vec![&alexa, &umbrella, &majestic];
    c.bench_function("lists/tranco_dowdall", |b| {
        b.iter(|| black_box(topple_lists::tranco::build(&inputs, 10_000)))
    });
    let tranco = topple_lists::tranco::build(&inputs, 10_000);
    c.bench_function("lists/trexa_interleave", |b| {
        b.iter(|| black_box(topple_lists::trexa::build(&tranco, &alexa, 2, 10_000)))
    });
    c.bench_function("lists/normalize_ranked", |b| {
        b.iter(|| black_box(topple_lists::normalize_ranked(&w.psl, &umbrella)))
    });
}

criterion_group!(
    benches,
    bench_world_generation,
    bench_traffic,
    bench_vantages,
    bench_lists
);
criterion_main!(benches);
