//! Traffic-generation floor: epoch-1 scalar draws versus the epoch-2
//! batched struct-of-arrays generator.
//!
//! One sample is a full small-world window streamed into a no-op
//! [`EventSink`], so nothing downstream of the generator is measured — this
//! is the 66% of the fused day the epoch-2 restructuring targets. Both
//! epochs run over the *same* generated world (generation is
//! epoch-invariant) with warm scratch. The acceptance bar for the epoch-2
//! PR is batched beating scalar by >= 1.3x (target 1.5x); the recorded A/B
//! lives in `EXPERIMENTS.md`.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use topple_bench::BENCH_SEED;
use topple_sim::{
    BackgroundQuery, EventSink, PageLoad, ThirdPartyFetch, TrafficScratch, World, WorldConfig,
};

/// Observes events without accumulating: the cost floor of the generator.
struct NullSink;

impl EventSink for NullSink {
    fn page_load(&mut self, _: &PageLoad) {}
    fn third_party(&mut self, _: &ThirdPartyFetch) {}
    fn background(&mut self, _: &BackgroundQuery) {}
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generation");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(15));

    for epoch in [1u32, 2] {
        // topple-lint: allow(unwrap): bench fixture; a broken world must abort the benchmark run
        let w = World::generate(WorldConfig {
            epoch: Some(epoch),
            ..WorldConfig::small(BENCH_SEED)
        })
        .expect("bench world");
        let n_days = w.config.days.len();
        let mut scratch = TrafficScratch::for_world(&w);
        let mut sink = NullSink;
        // Warm the scratch so steady-state samples are allocation-free.
        w.simulate_day_into(0, &mut scratch, &mut sink);

        g.bench_function(&format!("window/epoch{epoch}"), |b| {
            b.iter(|| {
                for d in 0..n_days {
                    w.simulate_day_into(black_box(d), &mut scratch, &mut sink);
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
