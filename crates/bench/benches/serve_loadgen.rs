//! Closed-loop loopback load generator for the `topple-serve` daemon.
//!
//! Unlike the other targets this is not a criterion closure: the number
//! being measured is the throughput of a multi-threaded server under
//! concurrent clients, which criterion's single-threaded `iter` model
//! cannot express. The harness is custom but honours the same `--test`
//! smoke flag the vendored criterion uses, so `cargo bench -- --test`
//! stays a cheap build-and-run check in CI.
//!
//! Protocol: a small-scale study is encoded into a snapshot, served by a
//! 4-worker daemon on an ephemeral loopback port, and hammered by
//! closed-loop keep-alive clients (each thread issues its next request
//! only after fully reading the previous response). Reported per
//! scenario: total requests, wall-clock, req/s, p50/p99 latency.
//! Baselines live in EXPERIMENTS.md; the acceptance bar is >= 10k req/s
//! on `/v1/rank` at this scale.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use topple_bench::small_study;
use topple_serve::{encode_study, QuerySnapshot, Server, Snapshot};

/// Closed-loop clients per scenario (each owns one keep-alive connection).
const CLIENTS: usize = 8;
/// Server worker threads.
const WORKERS: usize = 4;
/// Requests per client in a full measurement run.
const FULL_REQUESTS: usize = 4_000;
/// Requests per client under `--test` (build-and-run smoke only).
const SMOKE_REQUESTS: usize = 5;

/// Reads exactly one HTTP response (headers + `Content-Length` body) off a
/// keep-alive stream; a single `read` may return a partial frame.
fn read_one_response(stream: &mut TcpStream, scratch: &mut Vec<u8>) {
    scratch.clear();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(head_end) = find_head_end(scratch) {
            let content_len = content_length(&scratch[..head_end]);
            if scratch.len() >= head_end + 4 + content_len {
                return;
            }
        }
        // topple-lint: allow(unwrap): bench; a dead connection must abort the run
        let n = stream.read(&mut buf).expect("server closed mid-response");
        assert!(n > 0, "server closed mid-response");
        scratch.extend_from_slice(&buf[..n]);
    }
}

fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

fn content_length(head: &[u8]) -> usize {
    let text = String::from_utf8_lossy(head);
    text.lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Sorted-slice percentile (nearest-rank).
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.saturating_sub(1).min(sorted_us.len() - 1)]
}

/// Runs one scenario: `CLIENTS` threads cycling through `paths` for
/// `requests_per_client` requests each, against a fresh server.
fn run_scenario(name: &str, snapshot: &[u8], paths: &[String], requests_per_client: usize) {
    // topple-lint: allow(unwrap): bench; a broken snapshot must abort the run
    let qs = QuerySnapshot::new(Snapshot::from_bytes(snapshot).expect("snapshot decodes"));
    let server = Arc::new(Server::bind("127.0.0.1:0", qs, WORKERS).expect("binds loopback"));
    let addr = server.local_addr().expect("bound addr");
    let handle = server.handle();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };

    let begun = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connects");
                    // One write_all per request and no Nagle buffering:
                    // otherwise the kernel's delayed-ACK interaction adds
                    // ~40ms to every request and the harness measures TCP
                    // pathology instead of the server.
                    stream.set_nodelay(true).expect("nodelay");
                    let requests: Vec<Vec<u8>> = paths
                        .iter()
                        .map(|p| format!("GET {p} HTTP/1.1\r\n\r\n").into_bytes())
                        .collect();
                    let mut scratch = Vec::with_capacity(4096);
                    let mut lat = Vec::with_capacity(requests_per_client);
                    for i in 0..requests_per_client {
                        // Stagger clients so they do not walk the path list
                        // in lockstep.
                        let request = &requests[(client * 7 + i) % requests.len()];
                        let sent = Instant::now();
                        stream.write_all(request).expect("writes");
                        read_one_response(&mut stream, &mut scratch);
                        lat.push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
                    }
                    lat
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    });
    let elapsed = begun.elapsed();

    handle.store(true, Ordering::SeqCst);
    let stats = runner
        .join()
        .expect("server thread")
        .expect("graceful drain");
    assert_eq!(stats.requests, (CLIENTS * requests_per_client) as u64);

    latencies.sort_unstable();
    let total = latencies.len();
    let rps = total as f64 / elapsed.as_secs_f64();
    println!(
        "serve_loadgen/{name}: {total} reqs over {CLIENTS} clients in {:.2}s -> {rps:.0} req/s, \
         p50={}us p99={}us",
        elapsed.as_secs_f64(),
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
    );
}

fn main() {
    // `cargo bench -- --test` (CI smoke) pins the run to a handful of
    // requests; any other criterion-style flags are ignored.
    let smoke = std::env::args().any(|a| a == "--test");
    let requests = if smoke { SMOKE_REQUESTS } else { FULL_REQUESTS };

    let study = small_study();
    let bytes = encode_study(study, "small", &[]);
    println!(
        "serve_loadgen: snapshot {} bytes, {} domains, {WORKERS} workers, mode={}",
        bytes.len(),
        study.index().table().len(),
        if smoke { "smoke" } else { "full" },
    );

    // Rank lookups: cycle the head of Tranco plus a guaranteed miss, the
    // hot point-lookup path.
    let mut rank_paths: Vec<String> = study
        .tranco
        .entries
        .iter()
        .take(256)
        .map(|e| format!("/v1/rank/tranco/{}", e.name))
        .collect();
    rank_paths.push("/v1/rank/tranco/absent.example".to_owned());
    run_scenario("rank", &bytes, &rank_paths, requests);

    // Compare cells: a handful of (a, b, k) combinations so the sharded
    // LRU serves most requests from cache, as a real dashboard would.
    let mut compare_paths = Vec::new();
    for (a, b) in [
        ("tranco", "alexa"),
        ("tranco", "umbrella"),
        ("alexa", "majestic"),
        ("secrank", "trexa"),
        ("crux", "tranco"),
    ] {
        for k in [100usize, 1_000, 10_000] {
            compare_paths.push(format!("/v1/compare?a={a}&b={b}&k={k}"));
        }
    }
    run_scenario("compare", &bytes, &compare_paths, requests);

    // Movement: the widest response body (per-source monthly + daily series).
    let movement_paths: Vec<String> = study
        .tranco
        .entries
        .iter()
        .take(64)
        .map(|e| format!("/v1/movement/{}", e.name))
        .collect();
    run_scenario("movement", &bytes, &movement_paths, requests);
}
