//! Loopback load generator for the `topple-serve` daemon: closed-loop
//! (sequential and pipelined) and open-loop modes.
//!
//! Unlike the other targets this is not a criterion closure: the number
//! being measured is the throughput of a multi-shard reactor under
//! concurrent clients, which criterion's single-threaded `iter` model
//! cannot express. The harness is custom but honours the same `--test`
//! smoke flag the vendored criterion uses, so `cargo bench -- --test`
//! stays a cheap build-and-run check in CI.
//!
//! Three load models (EXPERIMENTS.md discusses why all three matter):
//!
//! - **Closed-loop sequential**: each client issues its next request only
//!   after fully reading the previous response — one request in flight per
//!   connection. Comparable to every earlier baseline in EXPERIMENTS.md.
//! - **Closed-loop pipelined**: each client keeps `PIPELINE_DEPTH`
//!   requests in flight on one keep-alive connection; the reactor drains
//!   them per read and coalesces the responses into one flush. This is the
//!   throughput headline — it measures the server's per-request cost with
//!   syscalls amortised over the batch.
//! - **Open-loop**: requests depart on a fixed schedule regardless of
//!   completions (arrivals don't slow down when the server does), and each
//!   latency is measured from the request's *scheduled* departure time.
//!   This is the honest tail-latency number: unlike closed-loop, it does
//!   not let a slow server throttle its own load (coordinated omission).
//!
//! `--drain-smoke` runs the CI accounting check instead of the full study:
//! clients pipeline a fixed request count, shutdown flips mid-load, and
//! the drain's served-request total must equal `clients x requests`
//! exactly — including requests that were pipelined but unanswered when
//! the drain began — plus a conservative throughput floor.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use topple_bench::small_study;
use topple_serve::{encode_study, QuerySnapshot, Server, Snapshot};

/// Clients per scenario (each owns one keep-alive connection).
const CLIENTS: usize = 8;
/// Reactor shard threads.
const SHARDS: usize = 4;
/// Requests per client in a full closed-loop measurement run.
const FULL_REQUESTS: usize = 4_000;
/// Requests per client in a full *pipelined* run (cheap enough per request
/// that a bigger count stabilises the number).
const FULL_PIPELINED_REQUESTS: usize = 40_000;
/// Requests per client under `--test` (build-and-run smoke only).
const SMOKE_REQUESTS: usize = 5;
/// In-flight requests per connection in pipelined mode. Sized so the
/// aggregate in-flight count (CLIENTS x depth) keeps p99 under 1ms on one
/// core while still amortising syscalls enough to clear the throughput
/// target: queueing delay is roughly in-flight x per-request cost.
const PIPELINE_DEPTH: usize = 16;
/// Aggregate arrival rates (req/s) exercised by the open-loop study.
const OPEN_LOOP_RATES: [u64; 3] = [20_000, 60_000, 120_000];
/// Requests per client per open-loop rate (full mode).
const OPEN_LOOP_REQUESTS: usize = 10_000;
/// Throughput floor asserted by `--drain-smoke` (req/s, pipelined rank).
const SMOKE_FLOOR_RPS: f64 = 10_000.0;

/// Reads exactly one HTTP response (headers + `Content-Length` body) off a
/// keep-alive stream, leaving any over-read (pipelined) bytes in `carry`.
fn read_one_response(stream: &mut TcpStream, carry: &mut Vec<u8>) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if let Some(head_end) = find_head_end(carry) {
            let content_len = content_length(&carry[..head_end]);
            let frame_len = head_end + 4 + content_len;
            if carry.len() >= frame_len {
                carry.drain(..frame_len);
                return;
            }
        }
        // topple-lint: allow(unwrap): bench; a dead connection must abort the run
        let n = stream.read(&mut buf).expect("server closed mid-response");
        assert!(n > 0, "server closed mid-response");
        carry.extend_from_slice(&buf[..n]);
    }
}

fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

fn content_length(head: &[u8]) -> usize {
    let text = String::from_utf8_lossy(head);
    text.lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Sorted-slice percentile (nearest-rank).
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.saturating_sub(1).min(sorted_us.len() - 1)]
}

/// Spawns a fresh server on an ephemeral loopback port, runs `f` against
/// it, then drains and verifies exact request accounting.
fn with_server<T>(
    snapshot: &[u8],
    expect_requests: Option<u64>,
    f: impl FnOnce(std::net::SocketAddr) -> T,
) -> T {
    // topple-lint: allow(unwrap): bench; a broken snapshot must abort the run
    let qs = QuerySnapshot::new(Snapshot::from_bytes(snapshot).expect("snapshot decodes"));
    let server = Arc::new(Server::bind("127.0.0.1:0", qs, SHARDS).expect("binds loopback"));
    let addr = server.local_addr().expect("bound addr");
    let handle = server.handle();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let out = f(addr);
    handle.store(true, Ordering::SeqCst);
    let stats = runner
        .join()
        .expect("server thread")
        .expect("graceful drain");
    if let Some(expected) = expect_requests {
        assert_eq!(stats.requests, expected, "drain accounting drifted");
    }
    out
}

/// Prints one scenario's numbers and returns the req/s.
fn report(name: &str, latencies: &mut [u64], elapsed: Duration) -> f64 {
    latencies.sort_unstable();
    let total = latencies.len();
    let rps = total as f64 / elapsed.as_secs_f64();
    println!(
        "serve_loadgen/{name}: {total} reqs over {CLIENTS} clients in {:.2}s -> {rps:.0} req/s, \
         p50={}us p99={}us p999={}us",
        elapsed.as_secs_f64(),
        percentile(latencies, 50.0),
        percentile(latencies, 99.0),
        percentile(latencies, 99.9),
    );
    rps
}

/// Prebuilds the wire bytes for each path.
fn render_requests(paths: &[String]) -> Vec<Vec<u8>> {
    paths
        .iter()
        .map(|p| format!("GET {p} HTTP/1.1\r\n\r\n").into_bytes())
        .collect()
}

/// Closed-loop sequential: one request in flight per connection; latency is
/// send-to-last-body-byte.
fn run_closed_sequential(
    name: &str,
    snapshot: &[u8],
    paths: &[String],
    requests_per_client: usize,
) {
    let (mut latencies, elapsed) = with_server(
        snapshot,
        Some((CLIENTS * requests_per_client) as u64),
        |addr| {
            let begun = Instant::now();
            let latencies: Vec<u64> = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..CLIENTS)
                    .map(|client| {
                        scope.spawn(move || {
                            let mut stream = TcpStream::connect(addr).expect("connects");
                            // No Nagle buffering: otherwise the delayed-ACK
                            // interaction adds ~40ms per request and the
                            // harness measures TCP pathology, not the server.
                            stream.set_nodelay(true).expect("nodelay");
                            let requests = render_requests(paths);
                            let mut carry = Vec::with_capacity(16 * 1024);
                            let mut lat = Vec::with_capacity(requests_per_client);
                            for i in 0..requests_per_client {
                                // Stagger clients so they do not walk the
                                // path list in lockstep.
                                let request = &requests[(client * 7 + i) % requests.len()];
                                let sent = Instant::now();
                                stream.write_all(request).expect("writes");
                                read_one_response(&mut stream, &mut carry);
                                lat.push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
                            }
                            lat
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .flat_map(|w| w.join().expect("client thread"))
                    .collect()
            });
            (latencies, begun.elapsed())
        },
    );
    report(name, &mut latencies, elapsed);
}

/// Closed-loop pipelined: keep `depth` requests in flight per connection;
/// latency is send-to-last-body-byte per request.
fn run_closed_pipelined(
    name: &str,
    snapshot: &[u8],
    paths: &[String],
    requests_per_client: usize,
    depth: usize,
) -> f64 {
    let (mut latencies, elapsed) = with_server(
        snapshot,
        Some((CLIENTS * requests_per_client) as u64),
        |addr| {
            let begun = Instant::now();
            let latencies: Vec<u64> = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..CLIENTS)
                    .map(|client| {
                        scope.spawn(move || {
                            let mut stream = TcpStream::connect(addr).expect("connects");
                            stream.set_nodelay(true).expect("nodelay");
                            let requests = render_requests(paths);
                            let mut carry = Vec::with_capacity(64 * 1024);
                            let mut in_flight: VecDeque<Instant> = VecDeque::with_capacity(depth);
                            let mut lat = Vec::with_capacity(requests_per_client);
                            for i in 0..requests_per_client {
                                let request = &requests[(client * 7 + i) % requests.len()];
                                if in_flight.len() == depth {
                                    read_one_response(&mut stream, &mut carry);
                                    let sent = in_flight.pop_front().expect("in-flight");
                                    lat.push(
                                        sent.elapsed().as_micros().min(u64::MAX as u128) as u64
                                    );
                                }
                                in_flight.push_back(Instant::now());
                                stream.write_all(request).expect("writes");
                            }
                            while let Some(sent) = in_flight.pop_front() {
                                read_one_response(&mut stream, &mut carry);
                                lat.push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
                            }
                            lat
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .flat_map(|w| w.join().expect("client thread"))
                    .collect()
            });
            (latencies, begun.elapsed())
        },
    );
    report(name, &mut latencies, elapsed)
}

/// Open-loop: requests depart on a fixed schedule (aggregate `rate` req/s
/// split across clients); latency runs from the *scheduled* departure, so
/// server-side queueing is charged to the server, not hidden by a stalled
/// client (no coordinated omission).
fn run_open_loop(
    name: &str,
    snapshot: &[u8],
    paths: &[String],
    rate: u64,
    requests_per_client: usize,
) {
    let interval = Duration::from_nanos(1_000_000_000 * CLIENTS as u64 / rate);
    let (mut latencies, elapsed) = with_server(
        snapshot,
        Some((CLIENTS * requests_per_client) as u64),
        |addr| {
            let begun = Instant::now();
            let latencies: Vec<u64> = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..CLIENTS)
                    .map(|client| {
                        scope.spawn(move || {
                            let mut writer = TcpStream::connect(addr).expect("connects");
                            writer.set_nodelay(true).expect("nodelay");
                            let mut reader = writer.try_clone().expect("clones stream");
                            let requests = render_requests(paths);
                            // Deterministic schedule shared by writer and
                            // reader: request i departs at base + i*interval.
                            let base = Instant::now();
                            let sender = scope.spawn(move || {
                                for i in 0..requests_per_client {
                                    let due = base + interval * i as u32;
                                    let now = Instant::now();
                                    if due > now {
                                        std::thread::sleep(due - now);
                                    }
                                    let request = &requests[(client * 7 + i) % requests.len()];
                                    writer.write_all(request).expect("writes");
                                }
                            });
                            // Responses come back in order on one
                            // connection, so the i-th response pairs with
                            // the i-th scheduled departure.
                            let mut carry = Vec::with_capacity(64 * 1024);
                            let mut lat = Vec::with_capacity(requests_per_client);
                            for i in 0..requests_per_client {
                                read_one_response(&mut reader, &mut carry);
                                let due = base + interval * i as u32;
                                lat.push(
                                    Instant::now()
                                        .saturating_duration_since(due)
                                        .as_micros()
                                        .min(u64::MAX as u128)
                                        as u64,
                                );
                            }
                            sender.join().expect("sender thread");
                            lat
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .flat_map(|w| w.join().expect("client thread"))
                    .collect()
            });
            (latencies, begun.elapsed())
        },
    );
    report(name, &mut latencies, elapsed);
}

/// Builds the rank probe paths: the head of Tranco plus a guaranteed miss.
fn rank_paths(study: &topple_core::Study) -> Vec<String> {
    let mut paths: Vec<String> = study
        .tranco
        .entries
        .iter()
        .take(256)
        .map(|e| format!("/v1/rank/tranco/{}", e.name))
        .collect();
    paths.push("/v1/rank/tranco/absent.example".to_owned());
    paths
}

/// CI drain check: pipeline a fixed request count per client, flip
/// shutdown mid-load, and require exact served-request accounting plus a
/// conservative pipelined-throughput floor.
fn run_drain_smoke(snapshot: &[u8], paths: &[String]) {
    const DRAIN_CLIENTS: usize = 4;
    const DRAIN_DEPTH: usize = 64;

    // Floor check first, on a healthy server.
    let rps = run_closed_pipelined(
        "smoke-pipelined-rank",
        snapshot,
        paths,
        2_000,
        PIPELINE_DEPTH,
    );
    assert!(
        rps >= SMOKE_FLOOR_RPS,
        "pipelined rank fell below the smoke floor: {rps:.0} < {SMOKE_FLOOR_RPS} req/s"
    );

    // Accounting check: every pipelined-but-unanswered request at drain
    // start is served and counted exactly once.
    // topple-lint: allow(unwrap): bench; a broken snapshot must abort the run
    let qs = QuerySnapshot::new(Snapshot::from_bytes(snapshot).expect("snapshot decodes"));
    let server = Arc::new(Server::bind("127.0.0.1:0", qs, SHARDS).expect("binds loopback"));
    let addr = server.local_addr().expect("bound addr");
    let handle = server.handle();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let mut conns: Vec<TcpStream> = (0..DRAIN_CLIENTS)
        .map(|_| {
            let mut s = TcpStream::connect(addr).expect("connects");
            let burst = format!("GET {} HTTP/1.1\r\n\r\n", paths[0]).repeat(DRAIN_DEPTH);
            s.write_all(burst.as_bytes()).expect("writes");
            s
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    handle.store(true, Ordering::SeqCst);
    let stats = runner
        .join()
        .expect("server thread")
        .expect("graceful drain");
    assert_eq!(
        stats.requests,
        (DRAIN_CLIENTS * DRAIN_DEPTH) as u64,
        "drain accounting drifted"
    );
    for s in &mut conns {
        let mut carry = Vec::new();
        for _ in 0..DRAIN_DEPTH {
            read_one_response(s, &mut carry);
        }
    }
    println!(
        "serve_loadgen/drain-smoke: {} pipelined requests all served and counted across drain",
        DRAIN_CLIENTS * DRAIN_DEPTH
    );
}

fn main() {
    // `cargo bench -- --test` (CI smoke) pins the run to a handful of
    // requests; `--drain-smoke` runs the accounting check; any other
    // criterion-style flags are ignored.
    let smoke = std::env::args().any(|a| a == "--test");
    let drain_smoke = std::env::args().any(|a| a == "--drain-smoke");

    let study = small_study();
    let bytes = encode_study(study, "small", &[]);
    println!(
        "serve_loadgen: snapshot {} bytes, {} domains, {SHARDS} shards, mode={}",
        bytes.len(),
        study.index().table().len(),
        if drain_smoke {
            "drain-smoke"
        } else if smoke {
            "smoke"
        } else {
            "full"
        },
    );

    let ranks = rank_paths(study);
    if drain_smoke {
        run_drain_smoke(&bytes, &ranks);
        return;
    }

    let requests = if smoke { SMOKE_REQUESTS } else { FULL_REQUESTS };
    let pipelined_requests = if smoke {
        SMOKE_REQUESTS
    } else {
        FULL_PIPELINED_REQUESTS
    };

    // Closed-loop sequential: comparable to every earlier baseline.
    run_closed_sequential("rank", &bytes, &ranks, requests);

    // Compare cells: a handful of (a, b, k) combinations so the LRU serves
    // most requests from cache, as a real dashboard would.
    let mut compare_paths = Vec::new();
    for (a, b) in [
        ("tranco", "alexa"),
        ("tranco", "umbrella"),
        ("alexa", "majestic"),
        ("secrank", "trexa"),
        ("crux", "tranco"),
    ] {
        for k in [100usize, 1_000, 10_000] {
            compare_paths.push(format!("/v1/compare?a={a}&b={b}&k={k}"));
        }
    }
    run_closed_sequential("compare", &bytes, &compare_paths, requests);

    // Movement: the widest response body (per-source monthly + daily series).
    let movement_paths: Vec<String> = study
        .tranco
        .entries
        .iter()
        .take(64)
        .map(|e| format!("/v1/movement/{}", e.name))
        .collect();
    run_closed_sequential("movement", &bytes, &movement_paths, requests);

    // Closed-loop pipelined: the throughput headline.
    run_closed_pipelined(
        "rank-pipelined",
        &bytes,
        &ranks,
        pipelined_requests,
        PIPELINE_DEPTH,
    );
    run_closed_pipelined(
        "movement-pipelined",
        &bytes,
        &movement_paths,
        pipelined_requests,
        PIPELINE_DEPTH,
    );

    // Open-loop: fixed arrival rates, latency from scheduled departure.
    if !smoke {
        for rate in OPEN_LOOP_RATES {
            run_open_loop(
                &format!("rank-open-{rate}rps"),
                &bytes,
                &ranks,
                rate,
                OPEN_LOOP_REQUESTS,
            );
        }
    }
}
