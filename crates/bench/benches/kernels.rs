//! Micro-benchmarks of the statistical and parsing kernels every experiment
//! leans on: correlation, set similarity, PSL extraction, alias sampling, and
//! the logistic-regression fit behind Table 3.

use std::collections::HashSet;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use topple_bench::noise_vector;
use topple_psl::{DomainName, PublicSuffixList};
use topple_sim::alias::AliasTable;
use topple_sim::rng::{substream, Stream};
use topple_stats::corr::{kendall_tau_b, pearson, spearman};
use topple_stats::logit::{fit_with_intercept, LogitOptions};
use topple_stats::sets::jaccard;

fn bench_correlation(c: &mut Criterion) {
    let mut g = c.benchmark_group("correlation");
    for &n in &[1_000usize, 10_000, 100_000] {
        let x = noise_vector(n, 1);
        let y = noise_vector(n, 2);
        g.bench_with_input(BenchmarkId::new("spearman", n), &n, |b, _| {
            b.iter(|| spearman(black_box(&x), black_box(&y)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("pearson", n), &n, |b, _| {
            b.iter(|| pearson(black_box(&x), black_box(&y)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("kendall_tau_b", n), &n, |b, _| {
            b.iter(|| kendall_tau_b(black_box(&x), black_box(&y)).unwrap())
        });
    }
    g.finish();
}

fn bench_jaccard(c: &mut Criterion) {
    let mut g = c.benchmark_group("jaccard");
    for &n in &[1_000usize, 100_000] {
        let a: HashSet<u64> = (0..n as u64).collect();
        let b: HashSet<u64> = ((n / 2) as u64..(n + n / 2) as u64).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| jaccard(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_psl(c: &mut Criterion) {
    let psl = PublicSuffixList::builtin();
    let names: Vec<DomainName> = [
        "example.com",
        "www.example.co.uk",
        "a.b.c.shop.example.com.br",
        "city.kawasaki.jp",
        "deep.sub.foo.ck",
        "alice.github.io",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();
    c.bench_function("psl/registrable_domain_x6", |b| {
        b.iter(|| {
            for n in &names {
                black_box(psl.registrable_domain(black_box(n)));
            }
        })
    });
    c.bench_function("psl/parse_builtin", |b| {
        b.iter(|| PublicSuffixList::parse(black_box(topple_psl::BUILTIN_PSL_TEXT)).unwrap())
    });
}

fn bench_alias(c: &mut Criterion) {
    let weights: Vec<f64> = (1..=100_000).map(|i| 1.0 / i as f64).collect();
    c.bench_function("alias/build_100k", |b| {
        b.iter(|| AliasTable::new(black_box(&weights)))
    });
    let table = AliasTable::new(&weights);
    let mut rng = substream(7, Stream::Traffic, 0);
    c.bench_function("alias/sample", |b| {
        b.iter(|| black_box(table.sample(&mut rng)))
    });
}

fn bench_logit(c: &mut Criterion) {
    // A Table 3-shaped problem: 10k observations, one binary predictor.
    let n = 10_000;
    let noise = noise_vector(n, 3);
    let flags = noise_vector(n, 4);
    let predictor: Vec<f64> = flags
        .iter()
        .map(|&v| f64::from(u8::from(v < 0.1)))
        .collect();
    let y: Vec<f64> = predictor
        .iter()
        .zip(&noise)
        .map(|(&p, &u)| f64::from(u8::from(u < 0.3 + 0.2 * p)))
        .collect();
    c.bench_function("logit/fit_10k_one_predictor", |b| {
        b.iter(|| {
            fit_with_intercept(
                black_box(std::slice::from_ref(&predictor)),
                black_box(&y),
                LogitOptions::default(),
            )
            .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_correlation,
    bench_jaccard,
    bench_psl,
    bench_alias,
    bench_logit
);
criterion_main!(benches);
