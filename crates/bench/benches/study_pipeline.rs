//! End-to-end `Study::run` throughput across pipeline worker counts.
//!
//! The shard/merge pipeline parallelizes day simulation + shard construction
//! while the fold stays sequential, so the interesting question is how close
//! the wall-clock scaling gets to the worker count. One sample is a full
//! study (world generation included), which is why the sample counts are
//! tiny; the acceptance bar for the pipeline is small-scale `Study::run` at
//! 4 workers beating 1 worker by >= 1.5x.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use topple_bench::BENCH_SEED;
use topple_core::Study;
use topple_sim::{Resolver, World, WorldConfig};
use topple_vantage::{CdnVantage, ChromeVantage, DayShards, DnsVantage, PanelVantage, Shard as _};

fn run_study(workers: usize) -> usize {
    let config = WorldConfig {
        workers: Some(workers),
        ..WorldConfig::small(BENCH_SEED)
    };
    // topple-lint: allow(unwrap): bench; a broken study must abort the benchmark run
    let study = Study::run(config).expect("bench study");
    study.tranco.entries.len()
}

fn bench_study_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("study_pipeline");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g.warm_up_time(Duration::from_secs(2));
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("small", workers),
            &workers,
            |b, &workers| b.iter(|| black_box(run_study(workers))),
        );
    }
    g.finish();
}

/// Splits one pipeline day into its parallelizable and sequential halves:
/// the worker unit (simulate + observe, scales with worker count) versus
/// the orchestrator fold (ingest_shard across all five vantages, inherently
/// serial). Their ratio is the Amdahl ceiling on worker scaling.
fn bench_pipeline_parts(c: &mut Criterion) {
    // topple-lint: allow(unwrap): bench fixture; a broken world must abort the benchmark run
    let w = World::generate(WorldConfig::small(BENCH_SEED)).expect("bench world");
    let mut g = c.benchmark_group("study_pipeline_parts");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));
    g.bench_function("worker_unit_day0", |b| {
        b.iter(|| {
            let t = w.simulate_day(0);
            black_box(DayShards::observe(&w, &t))
        })
    });
    let t0 = w.simulate_day(0);
    let shards = DayShards::observe(&w, &t0);
    g.bench_function("fold_day0", |b| {
        // The clone inside the loop makes this an upper bound on fold cost.
        b.iter(|| {
            let sh = shards.clone();
            let mut cdn = CdnVantage::new(&w);
            let mut chrome = ChromeVantage::new(&w);
            let mut umbrella = DnsVantage::new(Resolver::Umbrella);
            let mut china = DnsVantage::new(Resolver::ChinaVoting);
            let mut panel = PanelVantage::new(&w);
            cdn.ingest_shard(sh.cdn);
            chrome.ingest_shard(sh.chrome);
            umbrella.ingest_shard(&w, sh.umbrella);
            china.ingest_shard(&w, sh.china);
            panel.ingest_shard(sh.panel);
            black_box((cdn.days(), panel.day_count()))
        })
    });
    g.bench_function("merge_two_days", |b| {
        let t1 = w.simulate_day(1);
        let other = DayShards::observe(&w, &t1);
        b.iter(|| {
            let mut a = shards.clone();
            a.merge(other.clone());
            black_box(a)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_study_pipeline, bench_pipeline_parts);
criterion_main!(benches);
