//! Ingestion-stage throughput: fused streaming versus the materialized
//! two-pass baseline, with a per-vantage breakdown.
//!
//! One sample is one day of the small world ingested by all five vantages.
//! The `day/materialized` group measures the seed architecture (simulate
//! into `DayTraffic` vectors, then each vantage re-scans them via
//! `from_day`); `day/fused` measures the streaming `DayScratch` path the
//! study pipeline now uses (events dispatched to all builders as generated,
//! warm reusable scratch, zero per-day allocations). The acceptance bar for
//! the fusion PR is fused beating materialized by >= 2x; the recorded A/B
//! lives in `EXPERIMENTS.md`.
//!
//! The breakdown group isolates where the materialized time goes: the
//! generator alone (`simulate/null-sink` streams into a no-op sink,
//! `simulate/collect` additionally materializes the event vectors) and each
//! vantage's `from_day` re-scan.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use topple_bench::BENCH_SEED;
use topple_sim::{
    BackgroundQuery, EventSink, PageLoad, Resolver, ThirdPartyFetch, TrafficScratch, World,
    WorldConfig,
};
use topple_vantage::{CdnShard, ChromeShard, DayScratch, DayShards, DnsShard, PanelShard};

/// Observes events without accumulating: the cost floor of the generator.
struct NullSink;

impl EventSink for NullSink {
    fn page_load(&mut self, _: &PageLoad) {}
    fn third_party(&mut self, _: &ThirdPartyFetch) {}
    fn background(&mut self, _: &BackgroundQuery) {}
}

fn bench_day_ingestion(c: &mut Criterion) {
    // topple-lint: allow(unwrap): bench fixture; a broken world must abort the benchmark run
    let w = World::generate(WorldConfig::small(BENCH_SEED)).expect("bench world");
    let n_days = w.config.days.len();

    let mut g = c.benchmark_group("ingest_day");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(15));

    // Seed architecture: materialize DayTraffic, then all five from_day
    // re-scans — exactly what DayShards::observe does.
    g.bench_function("day/materialized", |b| {
        b.iter(|| {
            let mut out = 0usize;
            for d in 0..n_days {
                let t = w.simulate_day(d);
                out += black_box(DayShards::observe(&w, &t))
                    .cdn
                    .day_indices()
                    .count();
            }
            out
        })
    });

    // Fused architecture: one streaming pass per day over warm scratch.
    g.bench_function("day/fused", |b| {
        let mut scratch = DayScratch::new(&w);
        for d in 0..n_days {
            drop(scratch.observe_day(&w, d)); // warm the scratch tables
        }
        b.iter(|| {
            let mut out = 0usize;
            for d in 0..n_days {
                out += black_box(scratch.observe_day(&w, d))
                    .cdn
                    .day_indices()
                    .count();
            }
            out
        })
    });
    g.finish();

    let mut g = c.benchmark_group("ingest_breakdown");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));

    // Generator cost floor: stream one day into a no-op sink (warm scratch).
    g.bench_function("simulate/null-sink", |b| {
        let mut scratch = TrafficScratch::for_world(&w);
        w.simulate_day_into(0, &mut scratch, &mut NullSink);
        b.iter(|| {
            let mut sink = NullSink;
            w.simulate_day_into(black_box(0), &mut scratch, &mut sink);
        })
    });

    // Generator plus event-vector materialization (the seed path's pass 1).
    g.bench_function("simulate/collect", |b| {
        b.iter(|| black_box(w.simulate_day(black_box(0))).page_loads.len())
    });

    // Each vantage's materialized re-scan (the seed path's pass 2), over a
    // pre-built day so only observation cost is measured.
    let t = w.simulate_day(0);
    g.bench_function("from_day/cdn", |b| {
        b.iter(|| black_box(CdnShard::from_day(&w, &t)).day_indices().count())
    });
    g.bench_function("from_day/chrome", |b| {
        b.iter(|| black_box(ChromeShard::from_day(&w, &t)))
    });
    g.bench_function("from_day/dns-umbrella", |b| {
        b.iter(|| black_box(DnsShard::from_day(&w, &t, Resolver::Umbrella)))
    });
    g.bench_function("from_day/dns-secrank", |b| {
        b.iter(|| black_box(DnsShard::from_day(&w, &t, Resolver::ChinaVoting)))
    });
    g.bench_function("from_day/panel", |b| {
        b.iter(|| black_box(PanelShard::from_day(&w, &t)))
    });
    g.finish();
}

criterion_group!(benches, bench_day_ingestion);
criterion_main!(benches);
