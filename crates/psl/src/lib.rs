//! Domain names, web origins, and a Public Suffix List (PSL) engine.
//!
//! Top lists rank heterogeneous objects: Alexa/Majestic/Tranco rank *registrable
//! domains*, Cisco Umbrella ranks *fully-qualified domain names*, and the Chrome
//! UX Report ranks *web origins*. Comparing them fairly requires normalizing every
//! entry to its PSL-defined registrable domain (Section 4.2 of the paper). This
//! crate provides the pieces that normalization is built from:
//!
//! * [`DomainName`] — a validated, lowercased DNS name with label accessors.
//! * [`Origin`] — a `scheme://host[:port]` web origin as aggregated by CrUX.
//! * [`PublicSuffixList`] — a from-scratch implementation of the
//!   [PSL algorithm](https://publicsuffix.org/list/) including wildcard (`*.ck`)
//!   and exception (`!www.ck`) rules, with [`PublicSuffixList::registrable_domain`]
//!   performing eTLD+1 extraction.
//!
//! The crate ships a synthetic-but-realistic built-in suffix set
//! ([`PublicSuffixList::builtin`]) covering the country-code suffixes used by the
//! simulated world (see `topple-sim`), so the whole workspace runs offline.
//!
//! # Example
//!
//! ```
//! use topple_psl::{DomainName, PublicSuffixList};
//!
//! let psl = PublicSuffixList::builtin();
//! let name: DomainName = "news.shard.example.co.uk".parse().unwrap();
//! let reg = psl.registrable_domain(&name).unwrap();
//! assert_eq!(reg.as_str(), "example.co.uk");
//! assert_eq!(psl.public_suffix(&name).unwrap().as_str(), "co.uk");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builtin;
mod cache;
mod domain;
mod error;
mod origin;
mod rules;

pub use builtin::BUILTIN_PSL_TEXT;
pub use cache::RegistrableCache;
pub use domain::DomainName;
pub use error::{DomainError, OriginError, PslParseError};
pub use origin::{Origin, Scheme};
pub use rules::{PublicSuffixList, Rule, RuleKind};
