//! The built-in suffix set used by the simulated world.
//!
//! The real Mozilla PSL has thousands of entries; the synthetic world only mints
//! domains under the suffixes below, so this subset is *complete* with respect to
//! the simulation while staying realistic in structure (second-level country
//! suffixes, wildcard + exception rules, and private registry suffixes).

use crate::PublicSuffixList;

/// PSL rule text embedded in the crate (same file format as the real list).
pub const BUILTIN_PSL_TEXT: &str = "\
// ===BEGIN ICANN DOMAINS===
// Generic top-level domains
com
net
org
info
biz
io
co
me
tv
cc
xyz
online
site
shop
app
dev
news
blog
// United States
us
gov
edu
mil
// Brazil
br
com.br
net.br
org.br
gov.br
edu.br
// Germany
de
// Egypt
eg
com.eg
gov.eg
edu.eg
// United Kingdom
uk
co.uk
org.uk
ac.uk
gov.uk
net.uk
// Indonesia
id
co.id
or.id
ac.id
go.id
web.id
// India
in
co.in
net.in
org.in
gov.in
ac.in
// Japan
jp
co.jp
ne.jp
or.jp
ac.jp
go.jp
kawasaki.jp
*.kawasaki.jp
!city.kawasaki.jp
// Nigeria
ng
com.ng
gov.ng
edu.ng
// South Africa
za
co.za
org.za
gov.za
ac.za
// China
cn
com.cn
net.cn
org.cn
gov.cn
edu.cn
ac.cn
// Cook Islands (wildcard + exception, exercised by tests)
*.ck
!www.ck
// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
github.io
blogspot.com
pages.dev
netlify.app
web.app
// ===END PRIVATE DOMAINS===
";

impl PublicSuffixList {
    /// Returns the embedded suffix set described in [`BUILTIN_PSL_TEXT`].
    ///
    /// Parsing the embedded text cannot fail; the unit tests below and the
    /// crate's property tests guard that invariant.
    #[allow(clippy::expect_used)]
    pub fn builtin() -> PublicSuffixList {
        // topple-lint: allow(unwrap): embedded constant text, validity pinned by unit and property tests
        PublicSuffixList::parse(BUILTIN_PSL_TEXT).expect("embedded PSL text is valid")
    }
}

#[cfg(test)]
mod tests {
    use crate::{DomainName, PublicSuffixList};

    fn reg(l: &PublicSuffixList, s: &str) -> Option<String> {
        l.registrable_domain(&s.parse::<DomainName>().unwrap())
            .map(|d| d.as_str().to_owned())
    }

    #[test]
    fn builtin_parses() {
        let l = PublicSuffixList::builtin();
        assert!(l.len() > 60);
    }

    #[test]
    fn country_suffixes() {
        let l = PublicSuffixList::builtin();
        assert_eq!(
            reg(&l, "shop.example.com.br"),
            Some("example.com.br".into())
        );
        assert_eq!(reg(&l, "www.example.co.jp"), Some("example.co.jp".into()));
        assert_eq!(reg(&l, "example.de"), Some("example.de".into()));
        assert_eq!(reg(&l, "m.example.co.za"), Some("example.co.za".into()));
        assert_eq!(reg(&l, "api.example.gov.cn"), Some("example.gov.cn".into()));
    }

    #[test]
    fn private_suffixes_split_tenants() {
        let l = PublicSuffixList::builtin();
        assert_eq!(reg(&l, "alice.github.io"), Some("alice.github.io".into()));
        assert_eq!(reg(&l, "bob.github.io"), Some("bob.github.io".into()));
        assert_eq!(reg(&l, "github.io"), None);
    }

    #[test]
    fn wildcard_and_exception() {
        let l = PublicSuffixList::builtin();
        assert_eq!(reg(&l, "www.ck"), Some("www.ck".into()));
        assert_eq!(reg(&l, "shop.foo.ck"), Some("shop.foo.ck".into()));
        assert_eq!(reg(&l, "city.kawasaki.jp"), Some("city.kawasaki.jp".into()));
        assert_eq!(
            reg(&l, "x.other.kawasaki.jp"),
            Some("x.other.kawasaki.jp".into())
        );
    }
}
