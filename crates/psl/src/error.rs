//! Error types for domain, origin, and PSL parsing.

use std::fmt;

/// Error produced when validating a [`crate::DomainName`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// The name was empty (or consisted only of a trailing dot).
    Empty,
    /// The whole name exceeded 253 octets.
    NameTooLong {
        /// Observed length in bytes after normalization.
        len: usize,
    },
    /// A single label exceeded 63 octets.
    LabelTooLong {
        /// The offending label.
        label: String,
    },
    /// A label was empty (consecutive dots or a leading dot).
    EmptyLabel,
    /// A label contained a byte outside the LDH (letter/digit/hyphen) set.
    InvalidCharacter {
        /// The offending character.
        ch: char,
    },
    /// A label began or ended with a hyphen.
    HyphenEdge {
        /// The offending label.
        label: String,
    },
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::Empty => write!(f, "domain name is empty"),
            DomainError::NameTooLong { len } => {
                write!(
                    f,
                    "domain name is {len} bytes, exceeding the 253-byte limit"
                )
            }
            DomainError::LabelTooLong { label } => {
                write!(f, "label `{label}` exceeds the 63-byte limit")
            }
            DomainError::EmptyLabel => write!(f, "domain name contains an empty label"),
            DomainError::InvalidCharacter { ch } => {
                write!(f, "domain name contains invalid character {ch:?}")
            }
            DomainError::HyphenEdge { label } => {
                write!(f, "label `{label}` begins or ends with a hyphen")
            }
        }
    }
}

impl std::error::Error for DomainError {}

/// Error produced when parsing an [`crate::Origin`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OriginError {
    /// The origin did not contain a `://` scheme separator.
    MissingScheme,
    /// The scheme was not `http` or `https`.
    UnsupportedScheme {
        /// The scheme as written.
        scheme: String,
    },
    /// The host part failed domain validation.
    InvalidHost(DomainError),
    /// The port was present but not a valid non-zero 16-bit integer.
    InvalidPort {
        /// The port as written.
        port: String,
    },
    /// The origin contained a path, query, or fragment component.
    TrailingComponents,
}

impl fmt::Display for OriginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OriginError::MissingScheme => write!(f, "origin is missing a `scheme://` prefix"),
            OriginError::UnsupportedScheme { scheme } => {
                write!(
                    f,
                    "unsupported origin scheme `{scheme}` (expected http or https)"
                )
            }
            OriginError::InvalidHost(e) => write!(f, "invalid origin host: {e}"),
            OriginError::InvalidPort { port } => write!(f, "invalid origin port `{port}`"),
            OriginError::TrailingComponents => {
                write!(f, "origin must not contain a path, query, or fragment")
            }
        }
    }
}

impl std::error::Error for OriginError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OriginError::InvalidHost(e) => Some(e),
            _ => None,
        }
    }
}

/// Error produced when parsing Public Suffix List rule text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PslParseError {
    /// A rule line failed domain validation once its `!`/`*.` markers were stripped.
    InvalidRule {
        /// 1-based line number within the input.
        line: usize,
        /// The underlying domain error.
        source: DomainError,
    },
    /// A wildcard appeared somewhere other than the leftmost label.
    MisplacedWildcard {
        /// 1-based line number within the input.
        line: usize,
    },
}

impl fmt::Display for PslParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PslParseError::InvalidRule { line, source } => {
                write!(f, "invalid PSL rule on line {line}: {source}")
            }
            PslParseError::MisplacedWildcard { line } => {
                write!(f, "wildcard label must be leftmost (line {line})")
            }
        }
    }
}

impl std::error::Error for PslParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PslParseError::InvalidRule { source, .. } => Some(source),
            PslParseError::MisplacedWildcard { .. } => None,
        }
    }
}
