//! The Public Suffix List rule engine.
//!
//! Implements the matching algorithm from <https://publicsuffix.org/list/>:
//!
//! 1. Match the domain against all rules; a rule matches when the domain ends
//!    with the rule's labels (a `*` label matches exactly one label).
//! 2. If an exception rule (`!`) matches, the public suffix is the exception's
//!    labels minus the leftmost one.
//! 3. Otherwise the *prevailing* rule is the matching rule with the most labels;
//!    if no rule matches, the implicit rule `*` prevails (the TLD is public).
//! 4. The registrable domain is the public suffix plus one more label.

use std::collections::BTreeMap;
use std::fmt;

use crate::{DomainName, PslParseError};

/// How a rule matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// A plain rule: the suffix itself is public.
    Normal,
    /// A wildcard rule `*.suffix`: every direct child of the suffix is public.
    Wildcard,
    /// An exception rule `!name`: cancels a wildcard for this exact name.
    Exception,
}

/// One parsed Public Suffix List rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The rule's suffix with `!` and `*.` markers stripped.
    pub suffix: DomainName,
    /// The rule's kind.
    pub kind: RuleKind,
}

impl Rule {
    /// Number of labels this rule spans when prevailing (wildcards span one
    /// more label than their written suffix).
    pub fn effective_labels(&self) -> usize {
        match self.kind {
            RuleKind::Wildcard => self.suffix.label_count() + 1,
            _ => self.suffix.label_count(),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            RuleKind::Normal => write!(f, "{}", self.suffix),
            RuleKind::Wildcard => write!(f, "*.{}", self.suffix),
            RuleKind::Exception => write!(f, "!{}", self.suffix),
        }
    }
}

/// An immutable, queryable Public Suffix List.
///
/// Lookup is O(labels) per query: rules are indexed by their stripped suffix, and
/// a query walks the candidate suffixes of the name from shortest to longest.
#[derive(Debug, Clone, Default)]
pub struct PublicSuffixList {
    /// Rules keyed by their stripped suffix string.
    by_suffix: BTreeMap<String, RuleEntry>,
}

/// Collapsed per-suffix rule flags (a suffix can carry a normal and a wildcard
/// rule simultaneously, e.g. `ck` + `*.ck`).
#[derive(Debug, Clone, Copy, Default)]
struct RuleEntry {
    normal: bool,
    wildcard: bool,
    exception: bool,
}

impl PublicSuffixList {
    /// Creates an empty list. With no rules every TLD is treated as a public
    /// suffix via the implicit `*` rule, per the PSL specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses rules from PSL file text (one rule per line, `//` comments,
    /// blank lines ignored). Section markers (`===BEGIN ICANN DOMAINS===`) live
    /// inside comments and need no special handling.
    pub fn parse(text: &str) -> Result<Self, PslParseError> {
        let mut list = PublicSuffixList::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            // Rules end at the first whitespace per the spec.
            let rule_text = line.split_whitespace().next().unwrap_or("");
            list.insert_rule_text(rule_text, idx + 1)?;
        }
        Ok(list)
    }

    /// Adds one rule in PSL text form (`example`, `*.example`, or `!sub.example`).
    pub fn insert(&mut self, rule_text: &str) -> Result<(), PslParseError> {
        self.insert_rule_text(rule_text, 0)
    }

    fn insert_rule_text(&mut self, rule_text: &str, line: usize) -> Result<(), PslParseError> {
        let (kind, stripped) = if let Some(rest) = rule_text.strip_prefix('!') {
            (RuleKind::Exception, rest)
        } else if let Some(rest) = rule_text.strip_prefix("*.") {
            (RuleKind::Wildcard, rest)
        } else {
            (RuleKind::Normal, rule_text)
        };
        if stripped.contains('*') {
            return Err(PslParseError::MisplacedWildcard { line });
        }
        let suffix = DomainName::new(stripped)
            .map_err(|source| PslParseError::InvalidRule { line, source })?;
        let entry = self
            .by_suffix
            .entry(suffix.as_str().to_owned())
            .or_default();
        match kind {
            RuleKind::Normal => entry.normal = true,
            RuleKind::Wildcard => entry.wildcard = true,
            RuleKind::Exception => entry.exception = true,
        }
        Ok(())
    }

    /// Number of stored rules (counting normal/wildcard/exception separately).
    pub fn len(&self) -> usize {
        self.by_suffix
            .values()
            .map(|e| usize::from(e.normal) + usize::from(e.wildcard) + usize::from(e.exception))
            .sum()
    }

    /// Whether the list holds no explicit rules.
    pub fn is_empty(&self) -> bool {
        self.by_suffix.is_empty()
    }

    /// Iterates over all stored rules in suffix order.
    pub fn rules(&self) -> impl Iterator<Item = Rule> + '_ {
        self.by_suffix.iter().flat_map(|(suffix, entry)| {
            let suffix = DomainName::from_normalized(suffix.clone());
            let mut out = Vec::with_capacity(3);
            if entry.normal {
                out.push(Rule {
                    suffix: suffix.clone(),
                    kind: RuleKind::Normal,
                });
            }
            if entry.wildcard {
                out.push(Rule {
                    suffix: suffix.clone(),
                    kind: RuleKind::Wildcard,
                });
            }
            if entry.exception {
                out.push(Rule {
                    suffix,
                    kind: RuleKind::Exception,
                });
            }
            out
        })
    }

    /// The number of labels in `name`'s public suffix.
    ///
    /// Always at least 1 (the implicit `*` rule makes every TLD public).
    fn public_suffix_labels(&self, name: &DomainName) -> usize {
        let total = name.label_count();
        let mut best = 1; // implicit `*` rule
        let text = name.as_str();
        // Byte offsets where each label starts, left to right.
        let mut suffix_starts: Vec<usize> = Vec::with_capacity(total);
        suffix_starts.push(0);
        for (i, b) in text.bytes().enumerate() {
            if b == b'.' {
                suffix_starts.push(i + 1);
            }
        }
        debug_assert_eq!(suffix_starts.len(), total);
        // Walk candidate suffixes from shortest (the TLD) to the full name.
        for (labels_from_right, &start) in suffix_starts.iter().rev().enumerate() {
            let labels = labels_from_right + 1;
            let candidate = &text[start..];
            if let Some(entry) = self.by_suffix.get(candidate) {
                if entry.exception {
                    // An exception's public suffix is the rule minus its leftmost
                    // label; exceptions take priority over every other match.
                    return labels - 1;
                }
                if entry.normal {
                    best = best.max(labels);
                }
                // `*.candidate` spans one extra label and only matches when the
                // name actually has a label to fill the wildcard.
                if entry.wildcard && total > labels {
                    best = best.max(labels + 1);
                }
            }
        }
        best.min(total)
    }

    /// Returns `name`'s public suffix (eTLD), e.g. `co.uk` for `a.example.co.uk`.
    pub fn public_suffix(&self, name: &DomainName) -> Option<DomainName> {
        let n = self.public_suffix_labels(name);
        name.suffix(n)
    }

    /// Returns `name`'s registrable domain (eTLD+1), or `None` when the name is
    /// itself a public suffix (e.g. `com`, `co.uk`).
    ///
    /// This is the normalization unit used to compare top lists (Section 4.2).
    pub fn registrable_domain(&self, name: &DomainName) -> Option<DomainName> {
        let n = self.public_suffix_labels(name);
        if name.label_count() <= n {
            return None;
        }
        name.suffix(n + 1)
    }

    /// Whether `name` is exactly a public suffix.
    pub fn is_public_suffix(&self, name: &DomainName) -> bool {
        self.public_suffix_labels(name) >= name.label_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list() -> PublicSuffixList {
        PublicSuffixList::parse(
            "// test rules\n\
             com\n\
             uk\n\
             co.uk\n\
             jp\n\
             // wildcard region\n\
             *.ck\n\
             !www.ck\n\
             *.kawasaki.jp\n\
             !city.kawasaki.jp\n\
             blogspot.com\n",
        )
        .unwrap()
    }

    fn reg(l: &PublicSuffixList, s: &str) -> Option<String> {
        l.registrable_domain(&s.parse().unwrap())
            .map(|d| d.as_str().to_owned())
    }

    #[test]
    fn normal_rules() {
        let l = list();
        assert_eq!(reg(&l, "example.com"), Some("example.com".into()));
        assert_eq!(reg(&l, "a.b.example.com"), Some("example.com".into()));
        assert_eq!(reg(&l, "example.co.uk"), Some("example.co.uk".into()));
        assert_eq!(reg(&l, "www.example.co.uk"), Some("example.co.uk".into()));
        assert_eq!(reg(&l, "com"), None);
        assert_eq!(reg(&l, "co.uk"), None);
    }

    #[test]
    fn implicit_star_rule() {
        let l = list();
        // `zz` has no rule: the TLD itself is public.
        assert_eq!(reg(&l, "example.zz"), Some("example.zz".into()));
        assert_eq!(reg(&l, "a.example.zz"), Some("example.zz".into()));
        assert_eq!(reg(&l, "zz"), None);
    }

    #[test]
    fn wildcard_rules() {
        let l = list();
        assert_eq!(reg(&l, "foo.ck"), None); // *.ck makes foo.ck a public suffix
        assert_eq!(reg(&l, "bar.foo.ck"), Some("bar.foo.ck".into()));
        assert_eq!(reg(&l, "a.bar.foo.ck"), Some("bar.foo.ck".into()));
    }

    #[test]
    fn exception_rules() {
        let l = list();
        assert_eq!(reg(&l, "www.ck"), Some("www.ck".into()));
        assert_eq!(reg(&l, "a.www.ck"), Some("www.ck".into()));
        assert_eq!(reg(&l, "city.kawasaki.jp"), Some("city.kawasaki.jp".into()));
        assert_eq!(
            reg(&l, "sub.city.kawasaki.jp"),
            Some("city.kawasaki.jp".into())
        );
        assert_eq!(reg(&l, "example.kawasaki.jp"), None);
        assert_eq!(
            reg(&l, "sub.example.kawasaki.jp"),
            Some("sub.example.kawasaki.jp".into())
        );
    }

    #[test]
    fn private_suffixes() {
        let l = list();
        assert_eq!(
            reg(&l, "myblog.blogspot.com"),
            Some("myblog.blogspot.com".into())
        );
        assert_eq!(reg(&l, "blogspot.com"), None);
    }

    #[test]
    fn is_public_suffix_checks() {
        let l = list();
        assert!(l.is_public_suffix(&"com".parse().unwrap()));
        assert!(l.is_public_suffix(&"co.uk".parse().unwrap()));
        assert!(l.is_public_suffix(&"foo.ck".parse().unwrap()));
        assert!(!l.is_public_suffix(&"www.ck".parse().unwrap()));
        assert!(!l.is_public_suffix(&"example.com".parse().unwrap()));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            PublicSuffixList::parse("a.*.b"),
            Err(PslParseError::MisplacedWildcard { line: 1 })
        ));
        // whitespace splits the rule, so `bad` parses fine; force a bad char
        assert!(PublicSuffixList::parse("bad domain").is_ok());
        assert!(matches!(
            PublicSuffixList::parse("b%d"),
            Err(PslParseError::InvalidRule { line: 1, .. })
        ));
    }

    #[test]
    fn len_and_rules_roundtrip() {
        let l = list();
        assert_eq!(l.len(), 9);
        let mut texts: Vec<String> = l.rules().map(|r| r.to_string()).collect();
        texts.sort();
        assert!(texts.contains(&"*.ck".to_string()));
        assert!(texts.contains(&"!www.ck".to_string()));
        assert!(texts.contains(&"co.uk".to_string()));
    }

    #[test]
    fn empty_list_uses_implicit_rule() {
        let l = PublicSuffixList::new();
        assert!(l.is_empty());
        assert_eq!(reg(&l, "example.com"), Some("example.com".into()));
        assert_eq!(reg(&l, "a.example.co.uk"), Some("co.uk".into()));
    }
}
