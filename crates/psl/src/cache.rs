//! Memoized registrable-domain extraction.
//!
//! The analysis stage normalizes the same raw names over and over: a
//! month-long study sees each popular FQDN on most of its 28 days, and every
//! magnitude cut re-reads the same list prefixes. [`PublicSuffixList::registrable_domain`]
//! walks candidate suffixes and allocates a fresh [`DomainName`] per call, so
//! repeating it per (list, day) pair is pure waste. [`RegistrableCache`] memoizes
//! the host → registrable mapping so each *distinct* raw name pays the PSL walk
//! exactly once per study.
//!
//! The cache is lookup-only (`HashMap` keyed by the raw host string, never
//! iterated), so it cannot introduce iteration-order nondeterminism.

use std::collections::HashMap;

use crate::{DomainName, PublicSuffixList};

/// Memo of `host → registrable_domain(host)` results.
///
/// `None` entries record hosts with no registrable domain (bare public
/// suffixes, single-label names) so those also hit the memo on re-query.
#[derive(Debug, Default, Clone)]
pub struct RegistrableCache {
    memo: HashMap<String, Option<DomainName>>,
    hits: u64,
    misses: u64,
}

impl RegistrableCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache sized for roughly `capacity` distinct hosts.
    pub fn with_capacity(capacity: usize) -> Self {
        RegistrableCache {
            memo: HashMap::with_capacity(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// The registrable domain of `host` under `psl`, memoized.
    ///
    /// Equivalent to `psl.registrable_domain(host)`; the first query for a
    /// given host performs the PSL walk, later queries are a single hash
    /// lookup returning the cached result.
    pub fn registrable(
        &mut self,
        psl: &PublicSuffixList,
        host: &DomainName,
    ) -> Option<&DomainName> {
        if !self.memo.contains_key(host.as_str()) {
            self.misses += 1;
            self.memo
                .insert(host.as_str().to_owned(), psl.registrable_domain(host));
        } else {
            self.hits += 1;
        }
        // The key was just inserted if absent; flatten to Option<&DomainName>.
        self.memo.get(host.as_str()).and_then(|v| v.as_ref())
    }

    /// Number of distinct hosts memoized so far.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// True when no host has been queried yet.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Queries answered from the memo (no PSL walk).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Queries that performed the PSL walk (first sighting of a host).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().expect("valid domain")
    }

    #[test]
    fn matches_uncached_psl_and_counts_hits() {
        let psl = PublicSuffixList::builtin();
        let mut cache = RegistrableCache::new();
        let hosts = [
            "news.shard.example.co.uk",
            "example.co.uk",
            "a.b.example.com",
        ];
        for h in hosts {
            let n = name(h);
            let direct = psl.registrable_domain(&n);
            let cached = cache.registrable(&psl, &n).cloned();
            assert_eq!(direct, cached, "{h}");
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
        // Second pass: all hits, same answers.
        for h in hosts {
            let n = name(h);
            assert_eq!(
                psl.registrable_domain(&n),
                cache.registrable(&psl, &n).cloned()
            );
        }
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn memoizes_negative_results() {
        let psl = PublicSuffixList::builtin();
        let mut cache = RegistrableCache::new();
        // A bare public suffix has no registrable domain.
        let suffix = name("co.uk");
        assert!(psl.registrable_domain(&suffix).is_none());
        assert!(cache.registrable(&psl, &suffix).is_none());
        assert!(cache.registrable(&psl, &suffix).is_none());
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }
}
