//! Web origins as aggregated by the Chrome UX Report.

use std::fmt;
use std::str::FromStr;

use crate::{DomainName, OriginError};

/// URL scheme of a web origin. Only the two browsing schemes appear in CrUX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scheme {
    /// Plain-text HTTP (default port 80).
    Http,
    /// HTTP over TLS (default port 443).
    Https,
}

impl Scheme {
    /// The scheme's default port.
    pub fn default_port(self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }

    /// Scheme name as it appears in a URL.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A web origin: `scheme://host[:port]`, the aggregation unit of the CrUX list.
///
/// Ports equal to the scheme default are normalized away, matching how origins
/// are serialized in the CrUX BigQuery dataset.
///
/// ```
/// use topple_psl::{Origin, Scheme};
///
/// let o: Origin = "https://www.example.com:443".parse().unwrap();
/// assert_eq!(o.to_string(), "https://www.example.com");
/// assert_eq!(o.scheme(), Scheme::Https);
/// assert_eq!(o.host().as_str(), "www.example.com");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Origin {
    scheme: Scheme,
    host: DomainName,
    /// Port, only when it differs from the scheme default.
    port: Option<u16>,
}

impl Origin {
    /// Builds an origin from parts, normalizing a default port to `None`.
    pub fn new(scheme: Scheme, host: DomainName, port: Option<u16>) -> Self {
        let port = port.filter(|&p| p != scheme.default_port());
        Origin { scheme, host, port }
    }

    /// Convenience constructor for an HTTPS origin on the default port.
    pub fn https(host: DomainName) -> Self {
        Origin::new(Scheme::Https, host, None)
    }

    /// Convenience constructor for an HTTP origin on the default port.
    pub fn http(host: DomainName) -> Self {
        Origin::new(Scheme::Http, host, None)
    }

    /// The origin's scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The origin's host name.
    pub fn host(&self) -> &DomainName {
        &self.host
    }

    /// The effective port (explicit or scheme default).
    pub fn port(&self) -> u16 {
        self.port.unwrap_or_else(|| self.scheme.default_port())
    }

    /// Consumes the origin, returning its host.
    pub fn into_host(self) -> DomainName {
        self.host
    }
}

impl FromStr for Origin {
    type Err = OriginError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (scheme_str, rest) = s.split_once("://").ok_or(OriginError::MissingScheme)?;
        let scheme = match scheme_str.to_ascii_lowercase().as_str() {
            "http" => Scheme::Http,
            "https" => Scheme::Https,
            other => {
                return Err(OriginError::UnsupportedScheme {
                    scheme: other.to_owned(),
                });
            }
        };
        if rest.contains(['/', '?', '#']) {
            return Err(OriginError::TrailingComponents);
        }
        let (host_str, port) = match rest.split_once(':') {
            Some((h, p)) => {
                let port: u16 = p
                    .parse()
                    .ok()
                    .filter(|&v| v != 0)
                    .ok_or_else(|| OriginError::InvalidPort { port: p.to_owned() })?;
                (h, Some(port))
            }
            None => (rest, None),
        };
        let host = DomainName::new(host_str).map_err(OriginError::InvalidHost)?;
        Ok(Origin::new(scheme, host, port))
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.port {
            Some(p) => write!(f, "{}://{}:{}", self.scheme, self.host, p),
            None => write!(f, "{}://{}", self.scheme, self.host),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_origins() {
        let o: Origin = "https://example.com".parse().unwrap();
        assert_eq!(o.scheme(), Scheme::Https);
        assert_eq!(o.host().as_str(), "example.com");
        assert_eq!(o.port(), 443);
        assert_eq!(o.to_string(), "https://example.com");
    }

    #[test]
    fn normalizes_default_port() {
        let o: Origin = "http://example.com:80".parse().unwrap();
        assert_eq!(o.to_string(), "http://example.com");
        let o: Origin = "https://example.com:8443".parse().unwrap();
        assert_eq!(o.to_string(), "https://example.com:8443");
        assert_eq!(o.port(), 8443);
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(
            "example.com".parse::<Origin>(),
            Err(OriginError::MissingScheme)
        );
        assert!(matches!(
            "ftp://example.com".parse::<Origin>(),
            Err(OriginError::UnsupportedScheme { .. })
        ));
        assert_eq!(
            "https://example.com/path".parse::<Origin>(),
            Err(OriginError::TrailingComponents)
        );
        assert!(matches!(
            "https://example.com:0".parse::<Origin>(),
            Err(OriginError::InvalidPort { .. })
        ));
        assert!(matches!(
            "https://example.com:banana".parse::<Origin>(),
            Err(OriginError::InvalidPort { .. })
        ));
        assert!(matches!(
            "https://ex ample.com".parse::<Origin>(),
            Err(OriginError::InvalidHost(_))
        ));
    }

    #[test]
    fn roundtrips_display_parse() {
        for s in ["https://a.b.example.co.uk", "http://example.com:8080"] {
            let o: Origin = s.parse().unwrap();
            assert_eq!(o.to_string(), s);
            assert_eq!(o.to_string().parse::<Origin>().unwrap(), o);
        }
    }

    #[test]
    fn scheme_case_insensitive() {
        let o: Origin = "HTTPS://EXAMPLE.COM".parse().unwrap();
        assert_eq!(o.to_string(), "https://example.com");
    }
}
