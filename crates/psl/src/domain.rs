//! Validated DNS domain names.

use std::borrow::Borrow;
use std::fmt;
use std::str::FromStr;

use crate::DomainError;

/// A validated, normalized (lowercase, no trailing dot) DNS domain name.
///
/// Validation follows the classic LDH rule per label: ASCII letters, digits, and
/// interior hyphens only, at most 63 bytes per label and 253 bytes total.
/// Internationalized names are accepted in their punycode (`xn--`) form, which is
/// how they appear in every top list the paper studies.
///
/// `DomainName` is cheap to clone (it owns a single `String`) and is ordered and
/// hashable so it can key maps and participate in set intersections.
///
/// ```
/// use topple_psl::DomainName;
///
/// let d: DomainName = "WWW.Example.COM.".parse().unwrap();
/// assert_eq!(d.as_str(), "www.example.com");
/// assert_eq!(d.labels().collect::<Vec<_>>(), ["www", "example", "com"]);
/// assert_eq!(d.parent().unwrap().as_str(), "example.com");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct DomainName {
    name: String,
}

impl DomainName {
    /// Maximum length of a full domain name in bytes.
    pub const MAX_NAME_LEN: usize = 253;
    /// Maximum length of a single label in bytes.
    pub const MAX_LABEL_LEN: usize = 63;

    /// Parses and validates `input`, lowercasing it and stripping one trailing dot.
    pub fn new(input: &str) -> Result<Self, DomainError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Err(DomainError::Empty);
        }
        if trimmed.len() > Self::MAX_NAME_LEN {
            return Err(DomainError::NameTooLong { len: trimmed.len() });
        }
        let mut name = String::with_capacity(trimmed.len());
        for label in trimmed.split('.') {
            if label.is_empty() {
                return Err(DomainError::EmptyLabel);
            }
            if label.len() > Self::MAX_LABEL_LEN {
                return Err(DomainError::LabelTooLong {
                    label: label.to_owned(),
                });
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(DomainError::HyphenEdge {
                    label: label.to_owned(),
                });
            }
            for ch in label.chars() {
                if !(ch.is_ascii_alphanumeric() || ch == '-' || ch == '_') {
                    return Err(DomainError::InvalidCharacter { ch });
                }
            }
            if !name.is_empty() {
                name.push('.');
            }
            for ch in label.chars() {
                name.push(ch.to_ascii_lowercase());
            }
        }
        Ok(DomainName { name })
    }

    /// The normalized name as a string slice.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.name
    }

    /// Iterates over labels left to right (`www`, `example`, `com`).
    pub fn labels(&self) -> impl DoubleEndedIterator<Item = &str> {
        self.name.split('.')
    }

    /// Number of labels in the name.
    pub fn label_count(&self) -> usize {
        self.name.bytes().filter(|&b| b == b'.').count() + 1
    }

    /// The name with its leftmost label removed, or `None` for a single label.
    ///
    /// `www.example.com` → `example.com`.
    pub fn parent(&self) -> Option<DomainName> {
        let idx = self.name.find('.')?;
        Some(DomainName {
            name: self.name[idx + 1..].to_owned(),
        })
    }

    /// Returns the suffix of `self` formed by its rightmost `n` labels, if `self`
    /// has at least `n` labels.
    ///
    /// `suffix(2)` of `a.b.example.com` is `example.com`.
    pub fn suffix(&self, n: usize) -> Option<DomainName> {
        if n == 0 {
            return None;
        }
        let total = self.label_count();
        if n > total {
            return None;
        }
        let mut rest = self.name.as_str();
        for _ in 0..total - n {
            // label_count() counts dots, so each strip must find one; fall
            // back to None rather than panicking if that invariant breaks.
            let idx = rest.find('.')?;
            rest = &rest[idx + 1..];
        }
        Some(DomainName {
            name: rest.to_owned(),
        })
    }

    /// Whether `self` equals `other` or is a subdomain of it.
    ///
    /// `api.example.com` is within `example.com`; `notexample.com` is not.
    pub fn is_within(&self, other: &DomainName) -> bool {
        if self.name.len() == other.name.len() {
            return self.name == other.name;
        }
        self.name.len() > other.name.len()
            && self.name.ends_with(other.name.as_str())
            && self.name.as_bytes()[self.name.len() - other.name.len() - 1] == b'.'
    }

    /// Joins a validated label onto the left of this name.
    ///
    /// Used by the simulated world when minting subdomain FQDNs for a site.
    pub fn prepend(&self, label: &str) -> Result<DomainName, DomainError> {
        DomainName::new(&format!("{label}.{}", self.name))
    }

    /// Constructs a name that is already known to be valid and normalized.
    ///
    /// Intended for internal fast paths (e.g. PSL rule storage); panics in debug
    /// builds when the invariant is violated.
    pub(crate) fn from_normalized(name: String) -> DomainName {
        debug_assert!(DomainName::new(&name)
            .map(|d| d.name == name)
            .unwrap_or(false));
        DomainName { name }
    }
}

impl FromStr for DomainName {
    type Err = DomainError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::new(s)
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        &self.name
    }
}

impl Borrow<str> for DomainName {
    fn borrow(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes() {
        let d = DomainName::new("WWW.ExAmple.COM.").unwrap();
        assert_eq!(d.as_str(), "www.example.com");
    }

    #[test]
    fn rejects_empty_and_dots() {
        assert_eq!(DomainName::new(""), Err(DomainError::Empty));
        assert_eq!(DomainName::new("."), Err(DomainError::Empty));
        assert_eq!(DomainName::new("a..b"), Err(DomainError::EmptyLabel));
        assert_eq!(DomainName::new(".a"), Err(DomainError::EmptyLabel));
    }

    #[test]
    fn rejects_bad_characters() {
        assert!(matches!(
            DomainName::new("exa mple.com"),
            Err(DomainError::InvalidCharacter { ch: ' ' })
        ));
        assert!(matches!(
            DomainName::new("héllo.com"),
            Err(DomainError::InvalidCharacter { .. })
        ));
    }

    #[test]
    fn rejects_hyphen_edges() {
        assert!(matches!(
            DomainName::new("-a.com"),
            Err(DomainError::HyphenEdge { .. })
        ));
        assert!(matches!(
            DomainName::new("a-.com"),
            Err(DomainError::HyphenEdge { .. })
        ));
        assert!(DomainName::new("a-b.com").is_ok());
    }

    #[test]
    fn rejects_long_labels_and_names() {
        let long_label = "a".repeat(64);
        assert!(matches!(
            DomainName::new(&format!("{long_label}.com")),
            Err(DomainError::LabelTooLong { .. })
        ));
        let ok_label = "a".repeat(63);
        assert!(DomainName::new(&format!("{ok_label}.com")).is_ok());
        let long_name = format!("{}.{}.{}.{}.com", ok_label, ok_label, ok_label, ok_label);
        assert!(matches!(
            DomainName::new(&long_name),
            Err(DomainError::NameTooLong { .. })
        ));
    }

    #[test]
    fn accepts_punycode() {
        assert!(DomainName::new("xn--bcher-kva.example").is_ok());
    }

    #[test]
    fn label_accessors() {
        let d = DomainName::new("a.b.example.co.uk").unwrap();
        assert_eq!(d.label_count(), 5);
        assert_eq!(d.labels().count(), 5);
        assert_eq!(d.suffix(2).unwrap().as_str(), "co.uk");
        assert_eq!(d.suffix(5).unwrap().as_str(), "a.b.example.co.uk");
        assert_eq!(d.suffix(6), None);
        assert_eq!(d.suffix(0), None);
        assert_eq!(d.parent().unwrap().as_str(), "b.example.co.uk");
    }

    #[test]
    fn parent_of_tld_is_none() {
        assert_eq!(DomainName::new("com").unwrap().parent(), None);
    }

    #[test]
    fn is_within_relations() {
        let base = DomainName::new("example.com").unwrap();
        let sub = DomainName::new("api.v2.example.com").unwrap();
        let other = DomainName::new("notexample.com").unwrap();
        assert!(sub.is_within(&base));
        assert!(base.is_within(&base));
        assert!(!other.is_within(&base));
        assert!(!base.is_within(&sub));
    }

    #[test]
    fn prepend_builds_subdomains() {
        let base = DomainName::new("example.com").unwrap();
        assert_eq!(base.prepend("cdn").unwrap().as_str(), "cdn.example.com");
        assert!(base.prepend("bad label").is_err());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = DomainName::new("a.com").unwrap();
        let b = DomainName::new("b.com").unwrap();
        assert!(a < b);
    }
}
