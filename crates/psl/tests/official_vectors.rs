//! A subset of the official `checkPublicSuffix` test vectors from
//! <https://github.com/publicsuffix/list/blob/master/tests/test_psl.txt>,
//! restricted to rules present in the built-in suffix set, plus the
//! structural cases (null/mixed case/leading dot/unlisted TLDs) that the
//! official suite checks.

use topple_psl::{DomainName, PublicSuffixList};

/// `checkPublicSuffix(input, expected_registrable_domain)`.
fn check(psl: &PublicSuffixList, input: &str, expected: Option<&str>) {
    match DomainName::new(input) {
        Ok(domain) => {
            let got = psl.registrable_domain(&domain);
            assert_eq!(
                got.as_ref().map(|d| d.as_str()),
                expected,
                "checkPublicSuffix({input:?}) failed"
            );
        }
        Err(_) => {
            assert_eq!(
                expected, None,
                "{input:?} failed to parse but expected {expected:?}"
            );
        }
    }
}

#[test]
fn official_style_vectors() {
    let psl = PublicSuffixList::builtin();
    let cases: &[(&str, Option<&str>)] = &[
        // Mixed case.
        ("COM", None),
        ("example.COM", Some("example.com")),
        ("WwW.example.COM", Some("example.com")),
        // Leading dot — invalid input.
        (".com", None),
        (".example", None),
        (".example.com", None),
        // Unlisted TLD (implicit * rule).
        ("example", None),
        ("example.example", Some("example.example")),
        ("b.example.example", Some("example.example")),
        ("a.b.example.example", Some("example.example")),
        // TLD with only one rule.
        ("biz", None),
        ("domain.biz", Some("domain.biz")),
        ("b.domain.biz", Some("domain.biz")),
        ("a.b.domain.biz", Some("domain.biz")),
        // TLD with some two-level rules.
        ("com", None),
        ("example.com", Some("example.com")),
        ("b.example.com", Some("example.com")),
        ("a.b.example.com", Some("example.com")),
        ("uk.com", Some("uk.com")), // uk.com is not a public suffix here
        // More complex suffixes.
        ("jp", None),
        ("test.jp", Some("test.jp")),
        ("www.test.jp", Some("test.jp")),
        ("ac.jp", None),
        ("test.ac.jp", Some("test.ac.jp")),
        ("www.test.ac.jp", Some("test.ac.jp")),
        ("kawasaki.jp", None),
        ("test.kawasaki.jp", None), // *.kawasaki.jp
        ("www.test.kawasaki.jp", Some("www.test.kawasaki.jp")),
        ("city.kawasaki.jp", Some("city.kawasaki.jp")), // exception rule
        ("www.city.kawasaki.jp", Some("city.kawasaki.jp")),
        // UK.
        ("uk", None),
        ("test.uk", Some("test.uk")),
        ("www.test.uk", Some("test.uk")),
        ("co.uk", None),
        ("test.co.uk", Some("test.co.uk")),
        ("www.test.co.uk", Some("test.co.uk")),
        // US.
        ("us", None),
        ("test.us", Some("test.us")),
        ("www.test.us", Some("test.us")),
        // China.
        ("cn", None),
        ("test.cn", Some("test.cn")),
        ("www.test.cn", Some("test.cn")),
        ("com.cn", None),
        ("test.com.cn", Some("test.com.cn")),
        ("www.test.com.cn", Some("test.com.cn")),
        // Brazil.
        ("br", None),
        ("test.br", Some("test.br")),
        ("www.test.br", Some("test.br")),
        ("com.br", None),
        ("test.com.br", Some("test.com.br")),
        ("www.test.com.br", Some("test.com.br")),
        // Private registry suffixes.
        ("github.io", None),
        ("tenant.github.io", Some("tenant.github.io")),
        ("www.tenant.github.io", Some("tenant.github.io")),
        ("blogspot.com", None),
        ("myblog.blogspot.com", Some("myblog.blogspot.com")),
        // Cook Islands wildcard + exception.
        ("ck", None),
        ("test.ck", None), // *.ck
        ("b.test.ck", Some("b.test.ck")),
        ("a.b.test.ck", Some("b.test.ck")),
        ("www.ck", Some("www.ck")), // !www.ck
        ("www.www.ck", Some("www.ck")),
    ];
    for &(input, expected) in cases {
        check(&psl, input, expected);
    }
}

#[test]
fn punycode_vectors() {
    // IDN labels appear in lists in punycode form only.
    let psl = PublicSuffixList::builtin();
    check(&psl, "xn--85x722f.com", Some("xn--85x722f.com"));
    check(&psl, "www.xn--85x722f.com", Some("xn--85x722f.com"));
    check(&psl, "xn--55qx5d.cn", Some("xn--55qx5d.cn"));
}
