//! Property-based tests for domain parsing and the PSL algorithm.

// Test harness: aborting on a broken strategy is the correct failure mode
// (clippy.toml's allow-*-in-tests covers `#[test]` fns but not helpers).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use proptest::prelude::*;
use topple_psl::{DomainName, Origin, PublicSuffixList};

/// Strategy producing syntactically valid LDH labels.
fn label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?").expect("valid regex")
}

/// Strategy producing valid domain names of 1..=5 labels.
fn domain() -> impl Strategy<Value = String> {
    proptest::collection::vec(label(), 1..=5).prop_map(|ls| ls.join("."))
}

proptest! {
    #[test]
    fn valid_domains_roundtrip(name in domain()) {
        let d = DomainName::new(&name).expect("generated names are valid");
        prop_assert_eq!(d.as_str(), name.to_lowercase());
        // Reparsing the display form is the identity.
        let d2: DomainName = d.to_string().parse().unwrap();
        prop_assert_eq!(&d2, &d);
        // Label arithmetic is consistent.
        prop_assert_eq!(d.label_count(), d.labels().count());
        let full = d.suffix(d.label_count());
        prop_assert_eq!(full.as_ref(), Some(&d));
    }

    #[test]
    fn uppercase_and_trailing_dot_normalize(name in domain()) {
        let upper = format!("{}.", name.to_uppercase());
        let a = DomainName::new(&name).unwrap();
        let b = DomainName::new(&upper).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn parent_reduces_label_count(name in domain()) {
        let d = DomainName::new(&name).unwrap();
        match d.parent() {
            Some(p) => {
                prop_assert_eq!(p.label_count(), d.label_count() - 1);
                prop_assert!(d.is_within(&p) || d.label_count() == 1);
            }
            None => prop_assert_eq!(d.label_count(), 1),
        }
    }

    #[test]
    fn registrable_domain_is_idempotent(name in domain()) {
        let psl = PublicSuffixList::builtin();
        let d = DomainName::new(&name).unwrap();
        if let Some(reg) = psl.registrable_domain(&d) {
            // The registrable domain of a registrable domain is itself.
            let again = psl.registrable_domain(&reg);
            prop_assert_eq!(again.as_ref(), Some(&reg));
            // And the original name is within it.
            prop_assert!(d.is_within(&reg));
            // Its public suffix has exactly one label fewer.
            let ps = psl.public_suffix(&reg).unwrap();
            prop_assert_eq!(ps.label_count() + 1, reg.label_count());
        } else {
            // Names with no registrable domain are themselves public suffixes.
            prop_assert!(psl.is_public_suffix(&d));
        }
    }

    #[test]
    fn subdomains_share_registrable_domain(name in domain(), extra in label()) {
        let psl = PublicSuffixList::builtin();
        let d = DomainName::new(&name).unwrap();
        if let (Some(reg), Ok(sub)) = (psl.registrable_domain(&d), d.prepend(&extra)) {
            prop_assert_eq!(psl.registrable_domain(&sub), Some(reg));
        }
    }

    #[test]
    fn origins_roundtrip(host in domain(), https in any::<bool>(), port in proptest::option::of(1u16..)) {
        let d = DomainName::new(&host).unwrap();
        let scheme = if https { topple_psl::Scheme::Https } else { topple_psl::Scheme::Http };
        let o = Origin::new(scheme, d.clone(), port);
        let back: Origin = o.to_string().parse().unwrap();
        prop_assert_eq!(&back, &o);
        prop_assert_eq!(back.host(), &d);
    }

    #[test]
    fn garbage_never_panics(s in "\\PC{0,40}") {
        // Parsing arbitrary junk must return an error, never panic.
        let _ = DomainName::new(&s);
        let _ = s.parse::<Origin>();
        let _ = PublicSuffixList::parse(&s);
    }
}
