//! List-comparison primitives: Jaccard on top-k sets, Spearman on ranks of
//! the intersection (Section 4.3–4.4).

use std::collections::{HashMap, HashSet};

use topple_psl::DomainName;
use topple_stats::corr::{spearman, Spearman};
use topple_stats::sets::jaccard;

/// Jaccard index of two domain slices treated as unordered sets.
pub fn jaccard_domains(a: &[&DomainName], b: &[&DomainName]) -> f64 {
    let sa: HashSet<&str> = a.iter().map(|d| d.as_str()).collect();
    let sb: HashSet<&str> = b.iter().map(|d| d.as_str()).collect();
    jaccard(&sa, &sb)
}

/// Spearman rank correlation over the intersection of two rankings.
///
/// `a` and `b` are best-first orderings; ranks are positions within each
/// ordering. Only domains present in both contribute (the paper's
/// "operates on only their intersection"). Returns `None` when the
/// intersection is too small (< 3) or degenerate.
pub fn spearman_intersection(a: &[&DomainName], b: &[&DomainName]) -> Option<Spearman> {
    let pos_a: HashMap<&str, f64> = a
        .iter()
        .enumerate()
        .map(|(i, d)| (d.as_str(), i as f64 + 1.0))
        .collect();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (i, d) in b.iter().enumerate() {
        if let Some(&ra) = pos_a.get(d.as_str()) {
            xs.push(ra);
            ys.push(i as f64 + 1.0);
        }
    }
    spearman(&xs, &ys).ok()
}

/// Both similarity measures for one comparison.
#[derive(Debug, Clone, Copy)]
pub struct ListSimilarity {
    /// Jaccard index of the sets.
    pub jaccard: f64,
    /// Spearman correlation of the intersection's ranks (None when
    /// uncomputable — tiny intersection or a bucketed list).
    pub spearman: Option<Spearman>,
    /// Size of the intersection.
    pub intersection: usize,
}

/// Computes Jaccard and Spearman between two best-first domain rankings.
pub fn similarity(a: &[&DomainName], b: &[&DomainName]) -> ListSimilarity {
    let sa: HashSet<&str> = a.iter().map(|d| d.as_str()).collect();
    let sb: HashSet<&str> = b.iter().map(|d| d.as_str()).collect();
    let inter = sa.intersection(&sb).count();
    ListSimilarity {
        jaccard: jaccard(&sa, &sb),
        spearman: spearman_intersection(a, b),
        intersection: inter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doms(names: &[&str]) -> Vec<DomainName> {
        names.iter().map(|n| n.parse().unwrap()).collect()
    }

    fn refs(d: &[DomainName]) -> Vec<&DomainName> {
        d.iter().collect()
    }

    #[test]
    fn jaccard_of_identical_rankings() {
        let a = doms(&["a.com", "b.com", "c.com"]);
        assert_eq!(jaccard_domains(&refs(&a), &refs(&a)), 1.0);
    }

    #[test]
    fn spearman_of_same_order_is_one() {
        let a = doms(&["a.com", "b.com", "c.com", "d.com", "e.com"]);
        let s = spearman_intersection(&refs(&a), &refs(&a)).unwrap();
        assert!((s.rho - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 5);
    }

    #[test]
    fn spearman_of_reversed_order_is_minus_one() {
        let a = doms(&["a.com", "b.com", "c.com", "d.com"]);
        let mut rev = a.clone();
        rev.reverse();
        let s = spearman_intersection(&refs(&a), &refs(&rev)).unwrap();
        assert!((s.rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_ignores_non_intersecting() {
        // b shares only 4 of a's domains, in the same relative order, plus
        // noise entries that must not affect the result.
        let a = doms(&["a.com", "b.com", "c.com", "d.com"]);
        let b = doms(&[
            "x.com", "a.com", "y.com", "b.com", "c.com", "z.com", "d.com",
        ]);
        let s = spearman_intersection(&refs(&a), &refs(&b)).unwrap();
        assert!((s.rho - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn tiny_intersection_yields_none() {
        let a = doms(&["a.com", "b.com"]);
        let b = doms(&["a.com", "x.com"]);
        assert!(spearman_intersection(&refs(&a), &refs(&b)).is_none());
    }

    #[test]
    fn similarity_combines_both() {
        let a = doms(&["a.com", "b.com", "c.com", "d.com"]);
        let b = doms(&["b.com", "a.com", "c.com", "e.com"]);
        let sim = similarity(&refs(&a), &refs(&b));
        assert_eq!(sim.intersection, 3);
        assert!((sim.jaccard - 3.0 / 5.0).abs() < 1e-12);
        assert!(sim.spearman.is_some());
    }
}
