//! List-comparison primitives: Jaccard on top-k sets, Spearman on ranks of
//! the intersection (Section 4.3–4.4).
//!
//! Two equivalent implementations live here. The *string* path
//! ([`similarity`], [`jaccard_domains`]) hashes domain strings per call; it
//! is the reference semantics, kept for ad-hoc comparisons (counterfactual
//! lists that never enter a study's [`DomainTable`](topple_lists::DomainTable))
//! and for the equivalence tests. The *id* path ([`IdCut`],
//! [`similarity_ids`]) runs over interned ids with sorted-slice merge-walks
//! and is what the analysis grid uses; `tests/analysis_equivalence.rs` pins
//! the two paths byte-identical.

use std::collections::{HashMap, HashSet};

use topple_lists::DomainId;
use topple_psl::DomainName;
use topple_stats::corr::{spearman, Spearman};
use topple_stats::sets::{jaccard, jaccard_sorted};

/// Jaccard index of two domain slices treated as unordered sets.
pub fn jaccard_domains(a: &[&DomainName], b: &[&DomainName]) -> f64 {
    // topple-lint: allow(string-set): reference string path, kept for ad-hoc lists and equivalence tests
    let sa: HashSet<&str> = a.iter().map(|d| d.as_str()).collect();
    // topple-lint: allow(string-set): reference string path, kept for ad-hoc lists and equivalence tests
    let sb: HashSet<&str> = b.iter().map(|d| d.as_str()).collect();
    jaccard(&sa, &sb)
}

/// Spearman rank correlation over the intersection of two rankings.
///
/// `a` and `b` are best-first orderings; ranks are positions within each
/// ordering. Only domains present in both contribute (the paper's
/// "operates on only their intersection"). Returns `None` when the
/// intersection is too small (< 3) or degenerate.
pub fn spearman_intersection(a: &[&DomainName], b: &[&DomainName]) -> Option<Spearman> {
    let pos_a: HashMap<&str, f64> = a
        .iter()
        .enumerate()
        .map(|(i, d)| (d.as_str(), i as f64 + 1.0))
        .collect();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (i, d) in b.iter().enumerate() {
        if let Some(&ra) = pos_a.get(d.as_str()) {
            xs.push(ra);
            ys.push(i as f64 + 1.0);
        }
    }
    spearman(&xs, &ys).ok()
}

/// Both similarity measures for one comparison.
#[derive(Debug, Clone, Copy)]
pub struct ListSimilarity {
    /// Jaccard index of the sets.
    pub jaccard: f64,
    /// Spearman correlation of the intersection's ranks (None when
    /// uncomputable — tiny intersection or a bucketed list).
    pub spearman: Option<Spearman>,
    /// Size of the intersection.
    pub intersection: usize,
}

/// Computes Jaccard and Spearman between two best-first domain rankings.
pub fn similarity(a: &[&DomainName], b: &[&DomainName]) -> ListSimilarity {
    // topple-lint: allow(string-set): reference string path, kept for ad-hoc lists and equivalence tests
    let sa: HashSet<&str> = a.iter().map(|d| d.as_str()).collect();
    // topple-lint: allow(string-set): reference string path, kept for ad-hoc lists and equivalence tests
    let sb: HashSet<&str> = b.iter().map(|d| d.as_str()).collect();
    let inter = sa.intersection(&sb).count();
    ListSimilarity {
        jaccard: jaccard(&sa, &sb),
        spearman: spearman_intersection(a, b),
        intersection: inter,
    }
}

/// One best-first ranking cut, prepared for merge-walk comparison: ids sorted
/// ascending with each id's 0-based rank within the cut alongside.
///
/// Building a cut is one sort of a `u32` pair column; comparing two cuts is a
/// single allocation-light merge-walk — no hashing, regardless of how many
/// times the cut is reused.
#[derive(Debug, Clone, Default)]
pub struct IdCut {
    ids: Vec<u32>,
    pos: Vec<u32>,
}

impl IdCut {
    /// Prepares a cut from a best-first id ranking (entries must be unique,
    /// as list cuts are).
    pub fn new(ranked: &[DomainId]) -> Self {
        let mut pairs: Vec<(u32, u32)> = ranked
            .iter()
            .enumerate()
            .map(|(i, id)| (id.raw(), i as u32))
            .collect();
        pairs.sort_unstable();
        IdCut {
            ids: pairs.iter().map(|&(id, _)| id).collect(),
            pos: pairs.iter().map(|&(_, p)| p).collect(),
        }
    }

    /// The sorted id column (for direct `jaccard_sorted` use).
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The 0-based rank of `id` within the cut's best-first ordering, or
    /// `None` when the id is not in the cut. One binary search — this is the
    /// point-lookup the query daemon serves `/v1/rank` from.
    pub fn rank_of(&self, id: u32) -> Option<u32> {
        let at = self.ids.binary_search(&id).ok()?;
        self.pos.get(at).copied()
    }

    /// Number of entries in the cut.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the cut is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Computes Jaccard and Spearman between two prepared cuts — the interned
/// equivalent of [`similarity`], byte-identical on equal inputs.
///
/// The Jaccard arithmetic is `topple_stats::sets::jaccard_sorted` (same
/// expression and empty-set convention as the hash path). For Spearman, the
/// merge-walk collects the intersection's `(rank_in_a, rank_in_b)` pairs and
/// feeds them **ordered by rank-in-b**, reproducing the string path's
/// "iterate b in rank order" pair ordering so float summation order — and
/// therefore every output bit — matches.
pub fn similarity_ids(a: &IdCut, b: &IdCut) -> ListSimilarity {
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    let mut j = 0;
    while i < a.ids.len() && j < b.ids.len() {
        match a.ids[i].cmp(&b.ids[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                pairs.push((a.pos[i], b.pos[j]));
                i += 1;
                j += 1;
            }
        }
    }
    pairs.sort_unstable_by_key(|&(_, pb)| pb);
    let xs: Vec<f64> = pairs.iter().map(|&(pa, _)| pa as f64 + 1.0).collect();
    let ys: Vec<f64> = pairs.iter().map(|&(_, pb)| pb as f64 + 1.0).collect();
    ListSimilarity {
        jaccard: jaccard_sorted(&a.ids, &b.ids),
        spearman: spearman(&xs, &ys).ok(),
        intersection: pairs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doms(names: &[&str]) -> Vec<DomainName> {
        names.iter().map(|n| n.parse().unwrap()).collect()
    }

    fn refs(d: &[DomainName]) -> Vec<&DomainName> {
        d.iter().collect()
    }

    #[test]
    fn jaccard_of_identical_rankings() {
        let a = doms(&["a.com", "b.com", "c.com"]);
        assert_eq!(jaccard_domains(&refs(&a), &refs(&a)), 1.0);
    }

    #[test]
    fn spearman_of_same_order_is_one() {
        let a = doms(&["a.com", "b.com", "c.com", "d.com", "e.com"]);
        let s = spearman_intersection(&refs(&a), &refs(&a)).unwrap();
        assert!((s.rho - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 5);
    }

    #[test]
    fn spearman_of_reversed_order_is_minus_one() {
        let a = doms(&["a.com", "b.com", "c.com", "d.com"]);
        let mut rev = a.clone();
        rev.reverse();
        let s = spearman_intersection(&refs(&a), &refs(&rev)).unwrap();
        assert!((s.rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_ignores_non_intersecting() {
        // b shares only 4 of a's domains, in the same relative order, plus
        // noise entries that must not affect the result.
        let a = doms(&["a.com", "b.com", "c.com", "d.com"]);
        let b = doms(&[
            "x.com", "a.com", "y.com", "b.com", "c.com", "z.com", "d.com",
        ]);
        let s = spearman_intersection(&refs(&a), &refs(&b)).unwrap();
        assert!((s.rho - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn tiny_intersection_yields_none() {
        let a = doms(&["a.com", "b.com"]);
        let b = doms(&["a.com", "x.com"]);
        assert!(spearman_intersection(&refs(&a), &refs(&b)).is_none());
    }

    #[test]
    fn similarity_combines_both() {
        let a = doms(&["a.com", "b.com", "c.com", "d.com"]);
        let b = doms(&["b.com", "a.com", "c.com", "e.com"]);
        let sim = similarity(&refs(&a), &refs(&b));
        assert_eq!(sim.intersection, 3);
        assert!((sim.jaccard - 3.0 / 5.0).abs() < 1e-12);
        assert!(sim.spearman.is_some());
    }

    /// Interns name rankings into a shared table and compares both paths.
    fn both_paths(a: &[&str], b: &[&str]) -> (ListSimilarity, ListSimilarity) {
        use topple_lists::DomainTable;
        let da = doms(a);
        let db = doms(b);
        let mut table = DomainTable::new();
        let ia: Vec<DomainId> = da.iter().map(|d| table.intern(d)).collect();
        let ib: Vec<DomainId> = db.iter().map(|d| table.intern(d)).collect();
        let string = similarity(&refs(&da), &refs(&db));
        let ids = similarity_ids(&IdCut::new(&ia), &IdCut::new(&ib));
        (string, ids)
    }

    #[test]
    fn id_path_is_byte_identical_to_string_path() {
        let cases: [(&[&str], &[&str]); 5] = [
            (
                &["a.com", "b.com", "c.com", "d.com"],
                &["b.com", "a.com", "c.com", "e.com"],
            ),
            (&["a.com", "b.com"], &["c.com", "d.com"]),
            (&[], &[]),
            (&["a.com"], &[]),
            (
                &["e.com", "d.com", "c.com", "b.com", "a.com"],
                &["a.com", "b.com", "c.com", "d.com", "e.com"],
            ),
        ];
        for (a, b) in cases {
            let (s, i) = both_paths(a, b);
            assert_eq!(s.jaccard.to_bits(), i.jaccard.to_bits(), "{a:?} vs {b:?}");
            assert_eq!(s.intersection, i.intersection, "{a:?} vs {b:?}");
            match (s.spearman, i.spearman) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.rho.to_bits(), y.rho.to_bits(), "{a:?} vs {b:?}");
                    assert_eq!(x.n, y.n);
                }
                (x, y) => panic!("spearman presence diverged for {a:?} vs {b:?}: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn rank_of_recovers_list_positions() {
        use topple_lists::DomainTable;
        let d = doms(&["z.com", "a.com", "m.com"]);
        let mut table = DomainTable::new();
        let ids: Vec<DomainId> = d.iter().map(|x| table.intern(x)).collect();
        let cut = IdCut::new(&ids);
        for (pos, id) in ids.iter().enumerate() {
            assert_eq!(cut.rank_of(id.raw()), Some(pos as u32));
        }
        assert_eq!(cut.rank_of(999), None);
    }

    #[test]
    fn id_cut_exposes_sorted_ids() {
        use topple_lists::DomainTable;
        let d = doms(&["z.com", "a.com", "m.com"]);
        let mut table = DomainTable::new();
        let ids: Vec<DomainId> = d.iter().map(|x| table.intern(x)).collect();
        let cut = IdCut::new(&ids);
        assert_eq!(cut.len(), 3);
        assert!(cut.ids().windows(2).all(|w| w[0] < w[1]));
    }
}
