//! Plain-text rendering of tables and heatmaps for the experiment binaries.

/// Formats a numeric table with row and column headers.
///
/// NaN cells print as `–` (the paper's "not statistically significant /
/// not computable" marker).
pub fn table(
    title: &str,
    cols: &[String],
    rows: &[String],
    values: &[Vec<f64>],
    precision: usize,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let row_w = rows.iter().map(|r| r.len()).max().unwrap_or(4).max(4);
    let col_w = cols
        .iter()
        .map(|c| c.len())
        .max()
        .unwrap_or(6)
        .max(precision + 4);
    out.push_str(&format!("{:row_w$}", ""));
    for c in cols {
        out.push_str(&format!(" {c:>col_w$}"));
    }
    out.push('\n');
    for (r, row_vals) in rows.iter().zip(values) {
        out.push_str(&format!("{r:<row_w$}"));
        for &v in row_vals {
            if v.is_nan() {
                out.push_str(&format!(" {:>col_w$}", "–"));
            } else {
                out.push_str(&format!(" {v:>col_w$.precision$}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Formats a heatmap: a table plus a unicode shade per cell for quick visual
/// inspection in a terminal.
pub fn heatmap(title: &str, labels: &[String], values: &[Vec<f64>], precision: usize) -> String {
    let mut out = table(title, labels, labels, values, precision);
    out.push('\n');
    let shades = [' ', '░', '▒', '▓', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for row in values {
        for &v in row {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    let span = (hi - lo).max(1e-12);
    for row in values {
        out.push_str("  ");
        for &v in row {
            if v.is_nan() {
                out.push('·');
            } else {
                let t = ((v - lo) / span * (shades.len() - 1) as f64).round() as usize;
                out.push(shades[t.min(shades.len() - 1)]);
            }
        }
        out.push('\n');
    }
    out
}

/// Formats a daily series block (Figure 3 style): one row per list, one
/// column per day.
pub fn series(title: &str, names: &[String], days: usize, values: &[Vec<f64>]) -> String {
    let cols: Vec<String> = (1..=days).map(|d| format!("d{d:02}")).collect();
    table(title, &cols, names, values, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_nan_as_dash() {
        let t = table(
            "T",
            &["a".into(), "b".into()],
            &["r1".into()],
            &[vec![1.234, f64::NAN]],
            2,
        );
        assert!(t.contains("1.23"));
        assert!(t.contains('–'));
        assert!(t.starts_with("T\n"));
    }

    #[test]
    fn heatmap_has_shade_rows() {
        let h = heatmap(
            "H",
            &["x".into(), "y".into()],
            &[vec![0.0, 1.0], vec![1.0, 0.0]],
            2,
        );
        assert!(h.contains('█'));
        assert!(h.lines().count() >= 6);
    }

    #[test]
    fn series_headers_are_days() {
        let s = series("S", &["alexa".into()], 3, &[vec![0.1, 0.2, 0.3]]);
        assert!(s.contains("d01"));
        assert!(s.contains("d03"));
    }
}
