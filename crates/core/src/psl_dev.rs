//! Table 2: percent of raw list entries deviating from their PSL-registrable
//! domain, per magnitude.
//!
//! Domain-aggregated lists (Alexa, Majestic, Secrank, Tranco, Trexa) deviate
//! little; Umbrella (FQDNs) and CrUX (origins) deviate heavily — which is why
//! the normalization step matters and why it can only *under*state those two
//! lists' accuracy (Section 4.2).

use topple_lists::{BucketedList, ListSource, Normalizer, RankedList};

use crate::error::CoreError;
use crate::study::Study;

/// Deviation of one list at each magnitude.
#[derive(Debug, Clone)]
pub struct DeviationRow {
    /// The list.
    pub source: ListSource,
    /// `(magnitude label, magnitude, percent of raw entries deviating)`.
    pub cells: Vec<(&'static str, usize, f64)>,
}

fn ranked_deviation(norm: &mut Normalizer<'_>, list: &RankedList, k: usize) -> f64 {
    let truncated = RankedList {
        source: list.source,
        entries: list.entries.iter().take(k).cloned().collect(),
    };
    norm.ranked(&truncated).deviation_percent()
}

fn bucketed_deviation(norm: &mut Normalizer<'_>, list: &BucketedList, k: usize) -> f64 {
    let truncated = BucketedList {
        source: list.source,
        entries: list
            .entries
            .iter()
            .filter(|e| e.bucket as usize <= k)
            .cloned()
            .collect(),
    };
    norm.bucketed(&truncated).deviation_percent()
}

/// Computes Table 2 for every list at the world's scaled magnitudes.
///
/// One [`Normalizer`] is shared across every (list, magnitude) cell, so each
/// distinct raw entry is PSL-mapped exactly once even though the magnitudes
/// re-cover the same list prefixes (the outcome per raw entry is memoized;
/// the per-cell deviation arithmetic is unchanged).
pub fn table2(study: &Study) -> Result<Vec<DeviationRow>, CoreError> {
    let magnitudes = study.magnitudes();
    let alexa_month = study.alexa_daily.last().ok_or(CoreError::EmptyWindow)?;
    let umbrella_month = study.umbrella_daily.last().ok_or(CoreError::EmptyWindow)?;
    let mut norm = Normalizer::new(&study.world.psl);
    let rows = ListSource::ALL
        .iter()
        .map(|&source| {
            let cells = magnitudes
                .iter()
                .map(|&(label, k)| {
                    let pct = match source {
                        ListSource::Alexa => ranked_deviation(&mut norm, alexa_month, k),
                        ListSource::Umbrella => ranked_deviation(&mut norm, umbrella_month, k),
                        ListSource::Majestic => ranked_deviation(&mut norm, &study.majestic, k),
                        ListSource::Secrank => ranked_deviation(&mut norm, &study.secrank, k),
                        ListSource::Tranco => ranked_deviation(&mut norm, &study.tranco, k),
                        ListSource::Trexa => ranked_deviation(&mut norm, &study.trexa, k),
                        ListSource::Crux => bucketed_deviation(&mut norm, &study.crux, k),
                    };
                    (label, k, pct)
                })
                .collect();
            DeviationRow { source, cells }
        })
        .collect();
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    #[test]
    fn shape_matches_paper() {
        let s = Study::run(WorldConfig::small(241)).unwrap();
        let rows = table2(&s).unwrap();
        let get = |src: ListSource| -> f64 {
            rows.iter()
                .find(|r| r.source == src)
                .unwrap()
                .cells
                .last()
                .unwrap()
                .2
        };
        // Domain-aggregated lists deviate little…
        for src in [
            ListSource::Alexa,
            ListSource::Majestic,
            ListSource::Secrank,
            ListSource::Trexa,
        ] {
            assert!(get(src) < 20.0, "{src} deviates {:.1}%", get(src));
        }
        // …Umbrella (FQDNs) and CrUX (origins) deviate heavily.
        assert!(
            get(ListSource::Umbrella) > 40.0,
            "Umbrella {:.1}%",
            get(ListSource::Umbrella)
        );
        assert!(
            get(ListSource::Crux) > 40.0,
            "CrUX {:.1}%",
            get(ListSource::Crux)
        );
    }

    #[test]
    fn values_are_percentages() {
        let s = Study::run(WorldConfig::tiny(242)).unwrap();
        for row in table2(&s).unwrap() {
            for (_, _, pct) in row.cells {
                assert!((0.0..=100.0).contains(&pct));
            }
        }
    }
}
