//! The analysis layer's typed error.
//!
//! Every fallible figure/table function returns [`CoreError`] instead of
//! panicking: a failed analysis must not abort a study that other analyses
//! could still complete, and `topple-lint` denies `unwrap`/`expect`/`panic!`
//! throughout the library crates.

use std::fmt;

use topple_lists::ListSource;
use topple_sim::WorldError;
use topple_stats::StatsError;

/// Anything that stops an analysis from producing its figure or table.
#[derive(Debug)]
pub enum CoreError {
    /// The study window holds no ingested days.
    EmptyWindow,
    /// An evaluation was asked about a list it does not contain.
    MissingList(ListSource),
    /// A statistics kernel rejected its input.
    Stats(StatsError),
    /// Re-running the world for a scenario failed.
    World(WorldError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyWindow => write!(f, "the study window has no ingested days"),
            CoreError::MissingList(src) => write!(f, "list {src} absent from the evaluation"),
            CoreError::Stats(e) => write!(f, "statistics kernel failed: {e}"),
            CoreError::World(e) => write!(f, "world generation failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            CoreError::World(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<WorldError> for CoreError {
    fn from(e: WorldError) -> Self {
        CoreError::World(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: CoreError = StatsError::ZeroVariance.into();
        assert!(e.to_string().contains("statistics kernel"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(CoreError::EmptyWindow
            .to_string()
            .contains("no ingested days"));
        let m = CoreError::MissingList(ListSource::Alexa).to_string();
        assert!(m.to_lowercase().contains("alexa"));
    }
}
