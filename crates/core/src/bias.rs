//! Figures 4 and 7: top-list performance broken down by client platform and
//! client country, using the Chrome telemetry metrics (Section 6.2–6.3).
//!
//! Lists are compared against each (country, platform) Chrome ranking; cells
//! are then averaged across countries (Figure 4, platform bias) or across
//! platforms (Figure 7, country bias). CrUX is excluded — it derives from the
//! same data source (Section 6.2).

use topple_lists::ListSource;
use topple_sim::{Country, Platform};
use topple_vantage::ChromeMetric;

use crate::compare::{similarity_ids, IdCut};
use crate::consistency::chrome_cell_ids;
use crate::parallel;
use crate::study::Study;

/// Lists evaluated in the bias analyses (everything but CrUX).
pub fn bias_lists() -> Vec<ListSource> {
    ListSource::ALL
        .into_iter()
        .filter(|&s| s != ListSource::Crux)
        .collect()
}

/// One cell of the platform/country bias analysis.
#[derive(Debug, Clone, Copy)]
pub struct BiasCell {
    /// Mean Jaccard across the averaged dimension.
    pub jaccard: f64,
    /// Mean Spearman across the averaged dimension (NaN if never computable).
    pub spearman: f64,
}

/// Figure 4: per-(list, platform) similarity, averaged over countries.
#[derive(Debug, Clone)]
pub struct PlatformBias {
    /// Lists (rows).
    pub lists: Vec<ListSource>,
    /// Platforms (columns): Windows, Android.
    pub platforms: Vec<Platform>,
    /// Cells `[list][platform]`.
    pub cells: Vec<Vec<BiasCell>>,
}

/// Figure 7: per-(list, country) similarity, averaged over platforms.
#[derive(Debug, Clone)]
pub struct CountryBias {
    /// Lists (rows).
    pub lists: Vec<ListSource>,
    /// Countries (columns), Section 6.1's eleven.
    pub countries: Vec<Country>,
    /// Cells `[list][country]`.
    pub cells: Vec<Vec<BiasCell>>,
}

fn cell_similarity(
    study: &Study,
    source: ListSource,
    country: Country,
    platform: Platform,
    metric: ChromeMetric,
    k: usize,
) -> Option<(f64, f64)> {
    let chrome = chrome_cell_ids(
        study,
        country,
        platform,
        metric,
        study.world.config.crux_privacy_threshold,
    );
    if chrome.len() < 5 {
        return None;
    }
    let chrome_top = IdCut::new(&chrome[..k.min(chrome.len())]);
    let list_top = IdCut::new(study.index().monthly(source).top_ids(k));
    let sim = similarity_ids(&list_top, &chrome_top);
    Some((sim.jaccard, sim.spearman.map(|s| s.rho).unwrap_or(f64::NAN)))
}

fn average_cells(samples: &[(f64, f64)]) -> BiasCell {
    let n = samples.len() as f64;
    if samples.is_empty() {
        return BiasCell {
            jaccard: f64::NAN,
            spearman: f64::NAN,
        };
    }
    let j = samples.iter().map(|s| s.0).sum::<f64>() / n;
    let rhos: Vec<f64> = samples
        .iter()
        .map(|s| s.1)
        .filter(|v| !v.is_nan())
        .collect();
    let r = if rhos.is_empty() {
        f64::NAN
    } else {
        rhos.iter().sum::<f64>() / rhos.len() as f64
    };
    BiasCell {
        jaccard: j,
        spearman: r,
    }
}

/// Computes Figure 4 (platform bias) using completed page loads at
/// magnitude `k`. List rows are independent and fan out over the study's
/// worker pool (index-ordered fold, so worker count never shows in output).
pub fn figure4(study: &Study, k: usize) -> PlatformBias {
    let lists = bias_lists();
    let platforms = vec![Platform::Windows, Platform::Android];
    let workers = study.world.config.effective_workers();
    let cells = parallel::map_indexed(lists.len(), workers, |li| {
        let src = lists[li];
        platforms
            .iter()
            .map(|&p| {
                let samples: Vec<(f64, f64)> = Country::EVALUATED
                    .iter()
                    .filter_map(|&c| {
                        cell_similarity(study, src, c, p, ChromeMetric::CompletedLoads, k)
                    })
                    .collect();
                average_cells(&samples)
            })
            .collect()
    });
    PlatformBias {
        lists,
        platforms,
        cells,
    }
}

/// Computes Figure 7 (country bias) using completed page loads at
/// magnitude `k`. List rows fan out like [`figure4`]'s.
pub fn figure7(study: &Study, k: usize) -> CountryBias {
    let lists = bias_lists();
    let countries: Vec<Country> = Country::EVALUATED.to_vec();
    let workers = study.world.config.effective_workers();
    let cells = parallel::map_indexed(lists.len(), workers, |li| {
        let src = lists[li];
        countries
            .iter()
            .map(|&c| {
                let samples: Vec<(f64, f64)> = [Platform::Windows, Platform::Android]
                    .iter()
                    .filter_map(|&p| {
                        cell_similarity(study, src, c, p, ChromeMetric::CompletedLoads, k)
                    })
                    .collect();
                average_cells(&samples)
            })
            .collect()
    });
    CountryBias {
        lists,
        countries,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    fn study() -> Study {
        Study::run(WorldConfig::small(281)).unwrap()
    }

    #[test]
    fn crux_is_excluded() {
        assert!(!bias_lists().contains(&ListSource::Crux));
        assert_eq!(bias_lists().len(), 6);
    }

    #[test]
    fn figure4_shape() {
        let s = study();
        let f4 = figure4(&s, s.world.sites.len() / 10);
        assert_eq!(f4.platforms, vec![Platform::Windows, Platform::Android]);
        assert_eq!(f4.cells.len(), 6);
        for row in &f4.cells {
            assert_eq!(row.len(), 2);
        }
    }

    #[test]
    fn platform_gap_is_small_and_mostly_desktop_leaning() {
        // The paper: lists approximate desktop behaviour better, but the
        // delta is small. At simulation scale (mobile-majority population;
        // see EXPERIMENTS.md D4) we assert the weaker, robust form: no list
        // is dramatically better on mobile, and the majority do not clearly
        // favour Android. "Clearly" means an absolute Jaccard margin: at
        // this scale the per-platform gaps are hundredths (measured ≤0.017
        // across epochs 1 and 2 at this seed), so a relative threshold
        // degenerates into a coin flip on the epoch's stream realization.
        let s = study();
        let f4 = figure4(&s, s.world.sites.len() / 100);
        let mut android_favoured = 0;
        for (li, list) in f4.lists.iter().enumerate() {
            let win = f4.cells[li][0].jaccard;
            let android = f4.cells[li][1].jaccard;
            if !(win.is_finite() && android.is_finite()) {
                continue;
            }
            assert!(
                win >= android * 0.75,
                "{list}: mobile advantage too large (win={win:.3} android={android:.3})"
            );
            if android > win + 0.025 {
                android_favoured += 1;
            }
        }
        assert!(
            android_favoured * 2 <= f4.lists.len(),
            "most lists should not clearly favour Android ({android_favoured}/{})",
            f4.lists.len()
        );
    }

    #[test]
    fn secrank_matches_china_best() {
        let s = study();
        let f7 = figure7(&s, s.world.sites.len() / 10);
        let li = f7
            .lists
            .iter()
            .position(|&l| l == ListSource::Secrank)
            .unwrap();
        let ci = f7
            .countries
            .iter()
            .position(|&c| c == Country::China)
            .unwrap();
        let china = f7.cells[li][ci].jaccard;
        let others_max = f7.cells[li]
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != ci)
            .map(|(_, c)| c.jaccard)
            .filter(|v| v.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        if china.is_finite() && others_max.is_finite() {
            assert!(
                china >= others_max,
                "Secrank should match China best: CN={china:.3}, max other={others_max:.3}"
            );
        }
    }
}
