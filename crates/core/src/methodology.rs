//! The paper's core evaluation methodology (Section 4.3): compare each top
//! list against Cloudflare metrics *on the subset of Cloudflare-served
//! sites*, head-to-head at equal sizes.
//!
//! For a top list `L` and magnitude `k`: take `L`'s top-`k` normalized
//! domains, keep the `n ≤ k` of them that the `cf_ray` probe confirms are
//! Cloudflare-served, and compare that ranked subset against the top-`n`
//! Cloudflare domains under the metric being evaluated.

use topple_lists::{DomainId, NormalizedList};
use topple_psl::DomainName;

use crate::compare::{similarity, similarity_ids, IdCut, ListSimilarity};
use crate::index::ListColumns;
use crate::study::Study;

/// Result of evaluating one list against one Cloudflare metric at one
/// magnitude.
#[derive(Debug, Clone, Copy)]
pub struct Evaluation {
    /// Jaccard + Spearman of the head-to-head comparison.
    pub similarity: ListSimilarity,
    /// How many of the list's top-k domains were Cloudflare-served (the `n`
    /// of the head-to-head).
    pub cf_subset_size: usize,
    /// The magnitude `k` evaluated.
    pub magnitude: usize,
}

/// Filters a normalized list's top-`k` to Cloudflare-served domains, in list
/// order (the paper's cf_ray HEAD-probe step).
pub fn cf_subset<'a>(study: &Study, list: &'a NormalizedList, k: usize) -> Vec<&'a DomainName> {
    list.top_domains(k)
        .into_iter()
        .filter(|d| study.world.is_cloudflare(d))
        .collect()
}

/// Evaluates a normalized top list against one ranked Cloudflare metric
/// (best-first domains) at magnitude `k`.
pub fn against_cloudflare(
    study: &Study,
    list: &NormalizedList,
    cf_ranked: &[DomainName],
    k: usize,
) -> Evaluation {
    let subset = cf_subset(study, list, k);
    let n = subset.len();
    let cf_top: Vec<&DomainName> = cf_ranked.iter().take(n).collect();
    let mut sim = similarity(&subset, &cf_top);
    if !list.ordered {
        // Rank-magnitude lists (CrUX) cannot be rank-correlated (Section 4.4).
        sim.spearman = None;
    }
    Evaluation {
        similarity: sim,
        cf_subset_size: n,
        magnitude: k,
    }
}

/// Interned-columnar equivalent of [`against_cloudflare`]: the list's CF
/// subset is a precomputed prefix view ([`ListColumns::cf_subset_ids`]) and
/// the head-to-head runs over id cuts. Byte-identical to the string path
/// (`tests/analysis_equivalence.rs`).
pub fn against_cloudflare_ids(list: &ListColumns, cf_ranked: &[DomainId], k: usize) -> Evaluation {
    let subset = list.cf_subset_ids(k);
    let n = subset.len();
    let cf_top = &cf_ranked[..n.min(cf_ranked.len())];
    let mut sim = similarity_ids(&IdCut::new(subset), &IdCut::new(cf_top));
    if !list.ordered {
        // Rank-magnitude lists (CrUX) cannot be rank-correlated (Section 4.4).
        sim.spearman = None;
    }
    Evaluation {
        similarity: sim,
        cf_subset_size: n,
        magnitude: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_lists::ListSource;
    use topple_sim::WorldConfig;
    use topple_vantage::CfMetric;

    fn study() -> Study {
        Study::run(WorldConfig::tiny(211)).unwrap()
    }

    #[test]
    fn subset_contains_only_cf_domains() {
        let s = study();
        let list = s.normalized(ListSource::Tranco);
        let subset = cf_subset(&s, list, 100);
        assert!(!subset.is_empty());
        for d in &subset {
            assert!(s.world.is_cloudflare(d));
        }
    }

    #[test]
    fn head_to_head_sizes_match() {
        let s = study();
        let metric = CfMetric::final_seven()[0];
        let cf = s.cf_monthly_domains(metric);
        let list = s.normalized(ListSource::Umbrella);
        let ev = against_cloudflare(&s, list, &cf, 100);
        assert_eq!(ev.magnitude, 100);
        assert!(ev.cf_subset_size <= 100);
        assert!(ev.similarity.jaccard >= 0.0 && ev.similarity.jaccard <= 1.0);
    }

    #[test]
    fn crux_never_gets_spearman() {
        let s = study();
        let metric = CfMetric::final_seven()[0];
        let cf = s.cf_monthly_domains(metric);
        let ev = against_cloudflare(&s, s.normalized(ListSource::Crux), &cf, 400);
        assert!(ev.similarity.spearman.is_none());
    }

    #[test]
    fn perfect_list_scores_one() {
        // Evaluating the CF metric against itself must give JI = 1, rho = 1.
        let s = study();
        let metric = CfMetric::final_seven()[0];
        let cf = s.cf_monthly_domains(metric);
        let k = 50.min(cf.len());
        // Build a synthetic normalized list from the CF ranking itself.
        let ranked = topple_lists::RankedList::from_sorted_names(
            ListSource::Tranco,
            cf.iter().take(k).map(|d| d.as_str().to_owned()).collect(),
        );
        let norm = topple_lists::normalize_ranked(&s.world.psl, &ranked);
        let ev = against_cloudflare(&s, &norm, &cf, k);
        assert!((ev.similarity.jaccard - 1.0).abs() < 1e-12);
        let rho = ev.similarity.spearman.unwrap().rho;
        assert!((rho - 1.0).abs() < 1e-9);
    }
}
