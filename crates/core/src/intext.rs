//! Reproduces the paper's *in-text* numbers from Section 3.2–3.3 — the
//! redundancy findings that justified collapsing 21 filter-aggregation
//! combinations down to seven:
//!
//! * all requests vs 200-only: ρ ≈ 0.97, JI ≈ 0.84 ("the vast majority of
//!   requests are successful");
//! * empty-referer… vs top-5 browsers: ρ ≈ 0.92, JI ≈ 0.77 (we report the
//!   referer filter against top-browsers, its published proxy);
//! * unique IP vs unique (IP, UA): ρ ≈ 0.99, JI ≈ 0.95 ("nearly identical");
//! * the bookends, all requests vs root page: ρ ≈ 0.41, JI ≈ 0.28 (the least
//!   correlated pair).

use topple_vantage::{CfAgg, CfFilter, CfMetric};

use crate::compare::{similarity_ids, IdCut};
use crate::error::CoreError;
use crate::study::Study;

/// One §3.2 redundancy pair with measured agreement.
#[derive(Debug, Clone)]
pub struct RedundancyPair {
    /// Human-readable description matching the paper's sentence.
    pub claim: &'static str,
    /// First metric.
    pub a: CfMetric,
    /// Second metric.
    pub b: CfMetric,
    /// Paper's reported Spearman ρ.
    pub paper_rho: f64,
    /// Paper's reported Jaccard index.
    pub paper_ji: f64,
    /// Measured Spearman ρ (single day, like the paper's Figure 8 run).
    pub rho: f64,
    /// Measured Jaccard index.
    pub ji: f64,
}

/// Computes the Section 3.2 pairs on the first day's full metric suite at
/// magnitude `k`.
pub fn section_3_2(study: &Study, k: usize) -> Result<Vec<RedundancyPair>, CoreError> {
    let day = study.cdn.first_day().ok_or(CoreError::EmptyWindow)?;
    let specs: [(&'static str, CfMetric, CfMetric, f64, f64); 4] = [
        (
            "non-200 filtering does not appreciably affect results",
            CfMetric {
                filter: CfFilter::AllRequests,
                agg: CfAgg::Raw,
            },
            CfMetric {
                filter: CfFilter::Status200,
                agg: CfAgg::Raw,
            },
            0.97,
            0.84,
        ),
        (
            "referer filter is similar to top-5 browsers",
            CfMetric {
                filter: CfFilter::Referer,
                agg: CfAgg::Raw,
            },
            CfMetric {
                filter: CfFilter::TopBrowsers,
                agg: CfAgg::Raw,
            },
            0.92,
            0.77,
        ),
        (
            "unique IP is nearly identical to unique (IP, UA)",
            CfMetric {
                filter: CfFilter::AllRequests,
                agg: CfAgg::UniqueIp,
            },
            CfMetric {
                filter: CfFilter::AllRequests,
                agg: CfAgg::UniqueIpUa,
            },
            0.99,
            0.95,
        ),
        (
            "the page-load bookends disagree most",
            CfMetric {
                filter: CfFilter::AllRequests,
                agg: CfAgg::Raw,
            },
            CfMetric {
                filter: CfFilter::RootPage,
                agg: CfAgg::Raw,
            },
            0.41,
            0.28,
        ),
    ];
    let pairs = specs
        .into_iter()
        .map(|(claim, a, b, paper_rho, paper_ji)| {
            let ra = study.index().cf_ranked_ids(day.metric(a));
            let rb = study.index().cf_ranked_ids(day.metric(b));
            let sa = IdCut::new(&ra[..k.min(ra.len())]);
            let sb = IdCut::new(&rb[..k.min(rb.len())]);
            let sim = similarity_ids(&sa, &sb);
            RedundancyPair {
                claim,
                a,
                b,
                paper_rho,
                paper_ji,
                rho: sim.spearman.map(|s| s.rho).unwrap_or(f64::NAN),
                ji: sim.jaccard,
            }
        })
        .collect();
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    #[test]
    fn redundancy_pairs_match_paper_shape() {
        let s = Study::run(WorldConfig::small(601)).unwrap();
        let k = s.world.sites.len() / 10;
        let pairs = section_3_2(&s, k).unwrap();
        assert_eq!(pairs.len(), 4);
        // Redundant pairs correlate strongly…
        assert!(pairs[0].rho > 0.9, "all vs 200: {}", pairs[0].rho);
        assert!(pairs[1].rho > 0.85, "referer vs top5: {}", pairs[1].rho);
        assert!(pairs[2].rho > 0.95, "ip vs ip-ua: {}", pairs[2].rho);
        // …and the bookends are the weakest of the four.
        let bookends = pairs[3].rho;
        for p in &pairs[..3] {
            assert!(bookends < p.rho, "bookends ({bookends}) must be weakest");
        }
        // Jaccard ordering mirrors Spearman ordering across the pairs.
        assert!(pairs[3].ji < pairs[2].ji);
    }
}
