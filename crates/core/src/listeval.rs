//! Figure 2: every top list evaluated against the seven Cloudflare metrics.
//!
//! Following Section 4.1, every comparison is computed **per day** — the
//! day's list snapshot against the day's metric scores — and the resulting
//! Jaccard/Spearman values are averaged over the window. Produces the lists
//! × metrics heatmaps plus the per-list JI ranges quoted in Section 5.1, and
//! checks the headline result: all request/requestor metrics rank the lists'
//! accuracy identically (ρ = 1.0 between metric orderings).

use topple_lists::{DomainId, ListSource};
use topple_stats::corr::spearman;
use topple_vantage::CfMetric;

use crate::error::CoreError;
use crate::methodology::against_cloudflare_ids;
use crate::parallel;
use crate::study::Study;

/// The full Figure 2 result.
#[derive(Debug, Clone)]
pub struct ListEvaluation {
    /// Row labels (lists, paper order).
    pub lists: Vec<ListSource>,
    /// Column labels (the seven metrics).
    pub metrics: Vec<CfMetric>,
    /// Jaccard heatmap `[list][metric]`.
    pub jaccard: Vec<Vec<f64>>,
    /// Spearman heatmap `[list][metric]` (NaN for CrUX / tiny intersections).
    pub spearman: Vec<Vec<f64>>,
    /// Magnitude evaluated.
    pub k: usize,
}

impl ListEvaluation {
    /// Jaccard range per list across the seven metrics (the values the paper
    /// quotes as e.g. "CrUX JI = 0.23–0.43").
    pub fn jaccard_ranges(&self) -> Vec<(ListSource, f64, f64)> {
        self.lists
            .iter()
            .enumerate()
            .map(|(i, &src)| {
                let row = &self.jaccard[i];
                let lo = row.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (src, lo, hi)
            })
            .collect()
    }

    /// The accuracy ordering of lists under one metric (best first), by JI.
    pub fn ordering_under_metric(&self, metric_idx: usize) -> Vec<ListSource> {
        let mut order: Vec<(ListSource, f64)> = self
            .lists
            .iter()
            .enumerate()
            .map(|(i, &src)| (src, self.jaccard[i][metric_idx]))
            .collect();
        order.sort_by(|a, b| b.1.total_cmp(&a.1));
        order.into_iter().map(|(s, _)| s).collect()
    }

    /// Spearman correlation between the list-accuracy orderings induced by
    /// each pair of metrics (the paper: ρ = 1.0 for all pairs).
    pub fn metric_agreement(&self) -> Vec<Vec<f64>> {
        let m = self.metrics.len();
        let mut out = vec![vec![1.0; m]; m];
        for (a, row) in out.iter_mut().enumerate() {
            for (b, cell) in row.iter_mut().enumerate() {
                if a == b {
                    continue;
                }
                let xs: Vec<f64> = (0..self.lists.len()).map(|i| self.jaccard[i][a]).collect();
                let ys: Vec<f64> = (0..self.lists.len()).map(|i| self.jaccard[i][b]).collect();
                *cell = spearman(&xs, &ys).map(|s| s.rho).unwrap_or(f64::NAN);
            }
        }
        out
    }
}

/// Daily Jaccard series of one list against one final metric (index into
/// [`CfMetric::final_seven`]) at magnitude `k` — the sample the
/// window-average and its bootstrap confidence interval are computed from.
pub fn daily_ji_series(study: &Study, source: ListSource, metric_idx: usize, k: usize) -> Vec<f64> {
    let n_days = study.world.config.days.len();
    let workers = study.world.config.effective_workers();
    parallel::map_indexed(n_days, workers, |day| {
        let cf = study
            .index()
            .cf_ranked_ids(study.cdn.daily_final(metric_idx, day));
        let cols = study.index().daily(source, day);
        against_cloudflare_ids(cols, &cf, k).similarity.jaccard
    })
}

/// Bootstrap 95% confidence interval on a list's window-mean Jaccard against
/// the all-requests metric (resampling days).
pub fn mean_ji_ci(
    study: &Study,
    source: ListSource,
    k: usize,
) -> Result<topple_stats::bootstrap::BootstrapCi, CoreError> {
    let series = daily_ji_series(study, source, 0, k);
    Ok(topple_stats::bootstrap::mean_ci(
        &series,
        1_000,
        0.05,
        study.world.config.seed,
    )?)
}

/// Evaluates every list against every final metric at magnitude `k`,
/// averaging daily comparisons over the window (Section 4.1).
///
/// Days are independent (each reads the study's precomputed daily columns
/// and builds its own grid of cells), so they fan out over the study's
/// worker pool; the window average then folds the per-day grids **in day
/// order**, which keeps every float sum in the sequential order and the
/// result byte-identical at any worker count.
pub fn figure2(study: &Study, k: usize) -> ListEvaluation {
    let metrics: Vec<CfMetric> = CfMetric::final_seven().to_vec();
    let lists: Vec<ListSource> = ListSource::ALL.to_vec();
    let n_days = study.world.config.days.len();
    let workers = study.world.config.effective_workers();
    let mut ji_sum = vec![vec![0.0; metrics.len()]; lists.len()];
    let mut rho_sum = vec![vec![0.0; metrics.len()]; lists.len()];
    let mut rho_n = vec![vec![0usize; metrics.len()]; lists.len()];

    /// One day's cells: `[list][metric] -> (JI, rho)`.
    type DayGrid = Vec<Vec<(f64, Option<f64>)>>;
    // One grid per day, computed in parallel.
    let day_grids: Vec<DayGrid> = parallel::map_indexed(n_days, workers, |day| {
        // The day's reference rankings, one per metric.
        let cf_rankings: Vec<Vec<DomainId>> = (0..metrics.len())
            .map(|mi| study.index().cf_ranked_ids(study.cdn.daily_final(mi, day)))
            .collect();
        lists
            .iter()
            .map(|&src| {
                // Daily columns for the providers that publish daily, the
                // static window columns for the rest.
                let cols = study.index().daily(src, day);
                cf_rankings
                    .iter()
                    .map(|cf| {
                        let ev = against_cloudflare_ids(cols, cf, k);
                        (ev.similarity.jaccard, ev.similarity.spearman.map(|s| s.rho))
                    })
                    .collect()
            })
            .collect()
    });

    for grid in day_grids {
        for (li, row) in grid.iter().enumerate() {
            for (mi, &(ji, rho)) in row.iter().enumerate() {
                ji_sum[li][mi] += ji;
                if let Some(r) = rho {
                    rho_sum[li][mi] += r;
                    rho_n[li][mi] += 1;
                }
            }
        }
    }

    let jaccard: Vec<Vec<f64>> = ji_sum
        .into_iter()
        .map(|row| row.into_iter().map(|v| v / n_days as f64).collect())
        .collect();
    let spearman_m: Vec<Vec<f64>> = rho_sum
        .into_iter()
        .zip(rho_n)
        .map(|(row, ns)| {
            row.into_iter()
                .zip(ns)
                .map(|(v, n)| if n > 0 { v / n as f64 } else { f64::NAN })
                .collect()
        })
        .collect();
    ListEvaluation {
        lists,
        metrics,
        jaccard,
        spearman: spearman_m,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    #[test]
    fn shape_and_bounds() {
        let s = Study::run(WorldConfig::tiny(251)).unwrap();
        let ev = figure2(&s, 40);
        assert_eq!(ev.lists.len(), 7);
        assert_eq!(ev.metrics.len(), 7);
        for row in &ev.jaccard {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        // CrUX row must be NaN in the Spearman heatmap.
        let crux_i = ev
            .lists
            .iter()
            .position(|&s| s == ListSource::Crux)
            .unwrap();
        assert!(ev.spearman[crux_i].iter().all(|v| v.is_nan()));
    }

    #[test]
    fn crux_wins_by_jaccard() {
        let s = Study::run(WorldConfig::small(252)).unwrap();
        let k = s.world.sites.len() / 10;
        let ev = figure2(&s, k);
        let mean = |src: ListSource| {
            let i = ev.lists.iter().position(|&x| x == src).unwrap();
            ev.jaccard[i].iter().sum::<f64>() / 7.0
        };
        let crux = mean(ListSource::Crux);
        for other in [ListSource::Alexa, ListSource::Majestic, ListSource::Secrank] {
            assert!(
                crux > mean(other),
                "CrUX ({crux:.3}) should beat {other} ({:.3})",
                mean(other)
            );
        }
    }

    #[test]
    fn metric_orderings_agree() {
        // The paper's headline: metrics agree on which lists are accurate.
        // At small simulation scale adjacent lists (Tranco/Trexa) can swap,
        // so assert strong — not perfect — ordering agreement plus the
        // stable endpoints: CrUX at the top and Secrank at the bottom under
        // every metric.
        let s = Study::run(WorldConfig::small(253)).unwrap();
        let k = s.world.sites.len() / 10;
        let ev = figure2(&s, k);
        let agreement = ev.metric_agreement();
        for (a, row) in agreement.iter().enumerate() {
            for (b, &rho) in row.iter().enumerate() {
                if a != b {
                    assert!(rho > 0.5, "metrics {a} and {b} disagree: rho = {rho}");
                }
            }
        }
        for mi in 0..ev.metrics.len() {
            let order = ev.ordering_under_metric(mi);
            let crux_pos = order.iter().position(|&s| s == ListSource::Crux).unwrap();
            let secrank_pos = order
                .iter()
                .position(|&s| s == ListSource::Secrank)
                .unwrap();
            assert!(
                crux_pos <= 1,
                "CrUX should lead under metric {mi}: pos {crux_pos}"
            );
            assert!(
                secrank_pos >= 4,
                "Secrank should trail under metric {mi}: pos {secrank_pos}"
            );
        }
    }
}
