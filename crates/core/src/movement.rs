//! Figure 5: rank-magnitude movement between Cloudflare buckets and list
//! buckets (Section 5.3).
//!
//! Cloudflare buckets come from the two page-load bookend metrics (all HTTP
//! requests and root-page loads); only domains both bookends place into the
//! same bucket are analyzed. For each such domain also present in a top list,
//! the flow `cloudflare bucket → list bucket` is recorded. "Overranked" means
//! the list put the domain into a more-popular (smaller) bucket than
//! Cloudflare did.

use topple_lists::{DomainId, ListSource};
use topple_vantage::{CfAgg, CfFilter, CfMetric};

use crate::index::ListColumns;
use crate::study::Study;

/// Sentinel for "no bucket" in the dense per-id bucket maps (bucket counts
/// are tiny — at most the number of magnitudes).
const NO_BUCKET: u8 = u8::MAX;

/// Rank-magnitude movement of one list against the Cloudflare bookends.
#[derive(Debug, Clone)]
pub struct MovementReport {
    /// The list analyzed.
    pub source: ListSource,
    /// Bucket sizes, ascending (scaled 1K/10K/100K/1M).
    pub magnitudes: Vec<usize>,
    /// Flow counts: `flows[cf_bucket_idx][list_bucket_idx]`; the extra final
    /// column counts domains in the CF bucket but absent from the list.
    pub flows: Vec<Vec<usize>>,
    /// Per list bucket: `(bucket, measured domains, % overranked, % overranked
    /// by ≥ 2 orders of magnitude)`.
    pub overranking: Vec<BucketOverranking>,
}

/// Overranking summary for one list bucket.
#[derive(Debug, Clone, Copy)]
pub struct BucketOverranking {
    /// The list bucket magnitude.
    pub magnitude: usize,
    /// Domains in the list bucket that Cloudflare measured (bookend-agreed).
    pub measured: usize,
    /// Share whose Cloudflare bucket is less popular than the list bucket.
    pub overranked: f64,
    /// Share overranked by two or more orders of magnitude.
    pub overranked_two_plus: f64,
}

/// Index of the smallest magnitude `m` with `position < m`, or `None` when
/// beyond the largest.
fn bucket_of(position: usize, magnitudes: &[usize]) -> Option<usize> {
    magnitudes.iter().position(|&m| position < m)
}

/// Computes the bookend-agreed Cloudflare bucket per domain id, dense over
/// the study's domain table (`NO_BUCKET` = unmeasured or bookend-disagreed).
fn cloudflare_buckets(study: &Study, magnitudes: &[usize]) -> Vec<u8> {
    let n = study.index().table().len();
    let bucket_map = |ranking: &[DomainId]| -> Vec<u8> {
        let mut m = vec![NO_BUCKET; n];
        for (pos, id) in ranking.iter().enumerate() {
            if let Some(b) = bucket_of(pos, magnitudes) {
                m[id.index()] = b as u8;
            }
        }
        m
    };
    let a = bucket_map(&study.cf_monthly_ids(CfMetric {
        filter: CfFilter::AllRequests,
        agg: CfAgg::Raw,
    }));
    let b = bucket_map(&study.cf_monthly_ids(CfMetric {
        filter: CfFilter::RootPage,
        agg: CfAgg::Raw,
    }));
    a.iter()
        .zip(&b)
        .map(|(&x, &y)| if x == y { x } else { NO_BUCKET })
        .collect()
}

/// Computes the movement report for one list.
pub fn figure5(study: &Study, source: ListSource) -> MovementReport {
    let magnitudes: Vec<usize> = study.magnitudes().iter().map(|&(_, k)| k).collect();
    let cf_buckets = cloudflare_buckets(study, &magnitudes);
    let cols = study.index().monthly(source);
    let list_buckets = list_bucket_map(cols, &magnitudes, study.index().table().len());

    let nb = magnitudes.len();
    let mut flows = vec![vec![0usize; nb + 1]; nb];
    for (idx, &cfb) in cf_buckets.iter().enumerate() {
        if cfb == NO_BUCKET {
            continue;
        }
        match list_buckets[idx] {
            NO_BUCKET => flows[cfb as usize][nb] += 1,
            lb => flows[cfb as usize][lb as usize] += 1,
        }
    }

    // Overranking per list bucket: among bookend-measured domains the list
    // placed in bucket lb, how many did Cloudflare place deeper?
    let mut overranking = Vec::with_capacity(nb);
    for (lb, &magnitude) in magnitudes.iter().enumerate().take(nb) {
        let mut measured = 0usize;
        let mut over = 0usize;
        let mut over2 = 0usize;
        for (idx, &lbu) in list_buckets.iter().enumerate() {
            // `NO_BUCKET` can never equal a real bucket index (nb ≤ 4).
            if lbu as usize != lb {
                continue;
            }
            let cfb = cf_buckets[idx];
            if cfb != NO_BUCKET {
                measured += 1;
                if (cfb as usize) > lb {
                    over += 1;
                }
                if (cfb as usize) >= lb + 2 {
                    over2 += 1;
                }
            }
        }
        overranking.push(BucketOverranking {
            magnitude,
            measured,
            overranked: if measured > 0 {
                100.0 * over as f64 / measured as f64
            } else {
                0.0
            },
            overranked_two_plus: if measured > 0 {
                100.0 * over2 as f64 / measured as f64
            } else {
                0.0
            },
        });
    }

    MovementReport {
        source,
        magnitudes,
        flows,
        overranking,
    }
}

/// Bucket index per domain id for a list's columns, dense over the domain
/// table (`NO_BUCKET` = past the largest magnitude). For ordered lists the
/// bucket comes from the position; CrUX buckets are already published.
fn list_bucket_map(cols: &ListColumns, magnitudes: &[usize], table_len: usize) -> Vec<u8> {
    let mut m = vec![NO_BUCKET; table_len];
    if cols.ordered {
        for (pos, id) in cols.ids.iter().enumerate() {
            if let Some(b) = bucket_of(pos, magnitudes) {
                m[id.index()] = b as u8;
            }
        }
    } else {
        for (id, &bucket) in cols.ids.iter().zip(&cols.values) {
            if let Some(b) = magnitudes.iter().position(|&x| x == bucket as usize) {
                m[id.index()] = b as u8;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    #[test]
    fn bucket_of_boundaries() {
        let mags = [100, 1_000, 10_000];
        assert_eq!(bucket_of(0, &mags), Some(0));
        assert_eq!(bucket_of(99, &mags), Some(0));
        assert_eq!(bucket_of(100, &mags), Some(1));
        assert_eq!(bucket_of(9_999, &mags), Some(2));
        assert_eq!(bucket_of(10_000, &mags), None);
    }

    #[test]
    fn flows_are_consistent() {
        let s = crate::study::Study::run(WorldConfig::small(261)).unwrap();
        for src in [ListSource::Alexa, ListSource::Crux] {
            let rep = figure5(&s, src);
            // Every bookend-agreed CF domain lands in exactly one flow cell.
            let total_flows: usize = rep.flows.iter().flatten().sum();
            let mags: Vec<usize> = s.magnitudes().iter().map(|&(_, k)| k).collect();
            let cf = cloudflare_buckets(&s, &mags);
            let measured = cf.iter().filter(|&&b| b != NO_BUCKET).count();
            assert_eq!(total_flows, measured);
            for b in &rep.overranking {
                assert!((0.0..=100.0).contains(&b.overranked));
                assert!(b.overranked_two_plus <= b.overranked + 1e-9);
            }
        }
    }

    #[test]
    fn alexa_overranks_more_than_crux() {
        let s = crate::study::Study::run(WorldConfig::small(262)).unwrap();
        let alexa = figure5(&s, ListSource::Alexa);
        let crux = figure5(&s, ListSource::Crux);
        // Compare overranking at the second-smallest magnitude (the paper's
        // top-10K analysis), where both lists have measurable mass.
        let pick = |r: &MovementReport| {
            r.overranking
                .iter()
                .find(|b| b.measured >= 10)
                .map(|b| b.overranked)
        };
        if let (Some(a), Some(c)) = (pick(&alexa), pick(&crux)) {
            assert!(
                a >= c,
                "Alexa should overrank at least as much as CrUX: {a:.1}% vs {c:.1}%"
            );
        }
    }
}
