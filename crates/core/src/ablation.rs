//! Ablations of the methodology's design choices (DESIGN.md §4 extensions).
//!
//! The paper asserts several methodological choices without showing the
//! counterfactual; these functions measure them:
//!
//! * **PSL normalization** (§4.2): "Without normalization, all correlations
//!   are lower and this appears to be a strictly worse alternative."
//! * **Tranco window length**: the 30-day window trades freshness for
//!   stability; sweep it.
//! * **CrUX privacy threshold**: privacy cuts list size — how fast does
//!   accuracy degrade as the threshold rises?

use std::collections::HashSet;

use topple_lists::{normalize_ranked, tranco, ListSource};
use topple_psl::DomainName;
use topple_stats::sets::jaccard;
use topple_vantage::CfMetric;

use crate::error::CoreError;
use crate::methodology::against_cloudflare;
use crate::study::Study;

/// Jaccard with and without PSL normalization, per list.
#[derive(Debug, Clone, Copy)]
pub struct NormalizationAblation {
    /// The list.
    pub source: ListSource,
    /// Jaccard with PSL normalization (the paper's method).
    pub normalized: f64,
    /// Jaccard comparing the raw published names directly.
    pub raw: f64,
}

/// Measures the effect of PSL normalization on the Figure 2 comparison at
/// magnitude `k`, against the all-requests metric.
pub fn normalization(study: &Study, k: usize) -> Result<Vec<NormalizationAblation>, CoreError> {
    let metric = CfMetric::final_seven()[0];
    let cf_domains = study.cf_monthly_domains(metric);
    let alexa_month = study.alexa_daily.last().ok_or(CoreError::EmptyWindow)?;
    let umbrella_month = study.umbrella_daily.last().ok_or(CoreError::EmptyWindow)?;
    let rows = ListSource::ALL
        .iter()
        .map(|&source| {
            let norm = study.normalized(source);
            let normalized = against_cloudflare(study, norm, &cf_domains, k)
                .similarity
                .jaccard;

            // Raw variant: take the list's top-k published names verbatim
            // and skip the PSL grouping step. The cf_ray probe still works
            // (it is a network fact about the zone, independent of list
            // processing), but the published strings — FQDNs, origins — are
            // intersected with Cloudflare's domain names as-is.
            let raw_names: Vec<String> = match source {
                ListSource::Alexa => collect_raw(alexa_month, k),
                ListSource::Umbrella => collect_raw(umbrella_month, k),
                ListSource::Majestic => collect_raw(&study.majestic, k),
                ListSource::Secrank => collect_raw(&study.secrank, k),
                ListSource::Tranco => collect_raw(&study.tranco, k),
                ListSource::Trexa => collect_raw(&study.trexa, k),
                ListSource::Crux => study
                    .crux
                    .names_within(k as u32)
                    .map(str::to_owned)
                    .collect(),
            };
            let raw_cf: Vec<String> = raw_names
                .into_iter()
                .filter(|n| {
                    // Probe the host behind the published name.
                    let host = n.split_once("://").map(|(_, rest)| rest).unwrap_or(n);
                    host.parse::<DomainName>()
                        .ok()
                        .and_then(|d| study.world.psl.registrable_domain(&d).or(Some(d)))
                        .map(|d| study.world.is_cloudflare(&d))
                        .unwrap_or(false)
                })
                .collect();
            let n = raw_cf.len();
            // topple-lint: allow(string-set): ablation compares raw un-normalized names, which have no interned ids
            let cf_set: HashSet<&str> = cf_domains.iter().take(n).map(|d| d.as_str()).collect();
            // topple-lint: allow(string-set): same raw-name path as above
            let raw_set: HashSet<&str> = raw_cf.iter().map(String::as_str).collect();
            let raw = if n == 0 {
                0.0
            } else {
                jaccard(&raw_set, &cf_set)
            };
            NormalizationAblation {
                source,
                normalized,
                raw,
            }
        })
        .collect();
    Ok(rows)
}

fn collect_raw(list: &topple_lists::RankedList, k: usize) -> Vec<String> {
    list.top_names(k).map(str::to_owned).collect()
}

/// Accuracy of Tranco rebuilt over trailing windows of different lengths.
pub fn tranco_window(study: &Study, windows: &[usize], k: usize) -> Vec<(usize, f64)> {
    let metric = CfMetric::final_seven()[0];
    let cf_domains = study.cf_monthly_domains(metric);
    let n_days = study.alexa_daily.len();
    windows
        .iter()
        .map(|&w| {
            let w = w.min(n_days);
            let mut inputs: Vec<&topple_lists::RankedList> = Vec::new();
            inputs.extend(study.alexa_daily[n_days - w..].iter());
            inputs.extend(study.umbrella_daily[n_days - w..].iter());
            for _ in 0..w {
                inputs.push(&study.majestic);
            }
            let list = tranco::build(&inputs, study.world.sites.len());
            let norm = normalize_ranked(&study.world.psl, &list);
            let ji = against_cloudflare(study, &norm, &cf_domains, k)
                .similarity
                .jaccard;
            (w, ji)
        })
        .collect()
}

/// CrUX accuracy and size as the privacy threshold rises.
pub fn crux_threshold(study: &Study, thresholds: &[u32], k: usize) -> Vec<(u32, usize, f64)> {
    let metric = CfMetric::final_seven()[0];
    let cf_domains = study.cf_monthly_domains(metric);
    let magnitudes: Vec<usize> = study.magnitudes().iter().map(|&(_, m)| m).collect();
    thresholds
        .iter()
        .map(|&t| {
            // Rebuild the public list at threshold t.
            let ranked = study.chrome.global_completed_list(t);
            let mut entries = Vec::new();
            for (pos, (origin, _)) in ranked.iter().enumerate() {
                let Some(&bucket) = magnitudes.iter().find(|&&m| pos < m) else {
                    break;
                };
                entries.push(topple_lists::BucketedEntry {
                    name: topple_vantage::ChromeVantage::origin_text(&study.world, *origin),
                    bucket: bucket as u32,
                });
            }
            let list = topple_lists::BucketedList {
                source: ListSource::Crux,
                entries,
            };
            let len = list.len();
            let norm = topple_lists::normalize_bucketed(&study.world.psl, &list);
            let ji = against_cloudflare(study, &norm, &cf_domains, k)
                .similarity
                .jaccard;
            (t, len, ji)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    fn study() -> Study {
        Study::run(WorldConfig::small(301)).unwrap()
    }

    #[test]
    fn normalization_helps_name_shaped_lists() {
        // §4.2's claim: skipping normalization lowers correlations, most
        // dramatically for Umbrella (FQDNs) and CrUX (origins).
        let s = study();
        let k = s.world.sites.len() / 10;
        let rows = normalization(&s, k).unwrap();
        for row in &rows {
            assert!(
                row.normalized >= row.raw - 0.05,
                "{}: normalization should not hurt ({:.3} vs raw {:.3})",
                row.source,
                row.normalized,
                row.raw
            );
        }
        let umbrella = rows
            .iter()
            .find(|r| r.source == ListSource::Umbrella)
            .unwrap();
        assert!(
            umbrella.normalized > umbrella.raw + 0.05,
            "Umbrella must benefit materially: {:.3} vs {:.3}",
            umbrella.normalized,
            umbrella.raw
        );
    }

    #[test]
    fn longer_tranco_windows_do_not_hurt() {
        let s = study();
        let k = s.world.sites.len() / 10;
        let sweep = tranco_window(&s, &[1, 7, 28], k);
        assert_eq!(sweep.len(), 3);
        let first = sweep.first().unwrap().1;
        let last = sweep.last().unwrap().1;
        assert!(
            last >= first - 0.05,
            "28-day window ({last:.3}) vs 1-day ({first:.3})"
        );
    }

    #[test]
    fn privacy_threshold_shrinks_the_list() {
        let s = study();
        let k = s.world.sites.len() / 10;
        let sweep = crux_threshold(&s, &[1, 3, 10, 30], k);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1,
                "higher threshold must not grow the list"
            );
        }
        // At an absurd threshold the list collapses.
        let harsh = crux_threshold(&s, &[10_000], k);
        assert_eq!(harsh[0].1, 0);
    }
}
