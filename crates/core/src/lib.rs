//! The paper's evaluation framework — the primary contribution reproduced.
//!
//! Given a simulated world ([`topple_sim`]), its vantage observations
//! ([`topple_vantage`]), and the constructed top lists ([`topple_lists`]),
//! this crate runs every analysis in the paper's evaluation:
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Table 1 — Cloudflare coverage of top lists | [`coverage`] |
//! | Table 2 — PSL deviation per list | [`psl_dev`] |
//! | Table 3 — odds of inclusion by category | [`category`] |
//! | Figure 1 — intra-Cloudflare consistency (7 metrics) | [`consistency`] |
//! | Figure 2 — lists vs Cloudflare metrics | [`listeval`] |
//! | Figure 3 — daily temporal stability | [`temporal`] |
//! | Figure 4 — performance by client platform | [`bias`] |
//! | Figure 5 — rank-magnitude movement | [`movement`] |
//! | Figure 6 — intra-Chrome consistency | [`consistency`] |
//! | Figure 7 — performance by client country | [`bias`] |
//! | Figure 8 — all 21 filter-aggregations, single day | [`consistency`] |
//!
//! [`study::Study::run`] orchestrates the whole pipeline once (parallel day
//! generation, sequential ordered ingestion) and caches everything the
//! analyses need; the `topple-experiments` binary renders each artifact via
//! [`report`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod attribution;
pub mod bias;
pub mod category;
pub mod compare;
pub mod consistency;
pub mod coverage;
pub mod error;
pub mod index;
pub mod intext;
pub mod listeval;
pub mod manipulation;
pub mod methodology;
pub mod movement;
pub mod parallel;
pub mod psl_dev;
pub mod report;
pub mod study;
pub mod temporal;

pub use compare::{
    jaccard_domains, similarity, similarity_ids, spearman_intersection, IdCut, ListSimilarity,
};
pub use error::CoreError;
pub use index::{ListColumns, StudyIndex};
pub use methodology::{against_cloudflare, against_cloudflare_ids, cf_subset, Evaluation};
pub use study::Study;
