//! Figure 3: daily correlation between top lists and the all-HTTP-requests
//! metric over the measurement window (Section 5.4).
//!
//! Daily snapshots are used where the list has them (Alexa, Umbrella); the
//! slow-moving lists (Majestic, Secrank, Tranco, Trexa, CrUX) are fixed
//! within the month, exactly as their real counterparts effectively are.

use topple_lists::ListSource;
use topple_stats::timeseries::{dominant_period, weekday_split, WeekdaySplit};

use crate::methodology::against_cloudflare_ids;
use crate::parallel;
use crate::study::Study;

/// Daily similarity series for one list.
#[derive(Debug, Clone)]
pub struct TemporalSeries {
    /// The list.
    pub source: ListSource,
    /// Daily Jaccard indices vs all-HTTP-requests.
    pub jaccard: Vec<f64>,
    /// Daily Spearman ρ (NaN where uncomputable; all-NaN for CrUX).
    pub spearman: Vec<f64>,
    /// Weekend flags per day.
    pub weekend: Vec<bool>,
}

impl TemporalSeries {
    /// Weekday/weekend contrast of the Jaccard series.
    pub fn jaccard_split(&self) -> Option<WeekdaySplit> {
        weekday_split(&self.jaccard, &self.weekend).ok()
    }

    /// Dominant period of the Jaccard series (weekly periodicity shows as 7).
    pub fn jaccard_period(&self) -> Option<(usize, f64)> {
        dominant_period(&self.jaccard, self.jaccard.len().saturating_sub(2).min(10)).ok()
    }
}

/// Computes daily series for every list at magnitude `k`.
///
/// Days fan out over the study's worker pool; each day ranks the reference
/// metric **once** and compares every source's precomputed daily columns
/// against it (the old shape re-normalized every static list — Majestic,
/// Secrank, Tranco, Trexa, CrUX — for every single day). The per-source
/// series is then a transpose of the per-day rows, index-ordered, so the
/// output is byte-identical at any worker count.
pub fn figure3(study: &Study, k: usize) -> Vec<TemporalSeries> {
    let n_days = study.world.config.days.len();
    let workers = study.world.config.effective_workers();
    let weekend: Vec<bool> = study
        .world
        .config
        .days
        .iter()
        .map(|d| d.weekday().is_weekend())
        .collect();

    // One (JI, rho) row per day, one entry per source.
    let day_rows: Vec<Vec<(f64, f64)>> = parallel::map_indexed(n_days, workers, |day| {
        // The day's reference: CF all-HTTP-requests ranking, computed once
        // and shared by all seven sources.
        let cf_ranked = study
            .index()
            .cf_ranked_ids(study.cdn.daily_all_requests(day));
        ListSource::ALL
            .iter()
            .map(|&source| {
                let cols = study.index().daily(source, day);
                let ev = against_cloudflare_ids(cols, &cf_ranked, k);
                (
                    ev.similarity.jaccard,
                    ev.similarity.spearman.map(|s| s.rho).unwrap_or(f64::NAN),
                )
            })
            .collect()
    });

    ListSource::ALL
        .iter()
        .enumerate()
        .map(|(si, &source)| TemporalSeries {
            source,
            jaccard: day_rows.iter().map(|row| row[si].0).collect(),
            spearman: day_rows.iter().map(|row| row[si].1).collect(),
            weekend: weekend.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    #[test]
    fn series_cover_every_day() {
        let s = Study::run(WorldConfig::tiny(271)).unwrap();
        let series = figure3(&s, 40);
        assert_eq!(series.len(), 7);
        for ts in &series {
            assert_eq!(ts.jaccard.len(), 7);
            assert!(ts.jaccard.iter().all(|v| (0.0..=1.0).contains(v)));
            if ts.source == ListSource::Crux {
                assert!(ts.spearman.iter().all(|v| v.is_nan()));
            }
        }
    }

    #[test]
    fn list_ordering_stable_over_days() {
        // The paper: daily variation rarely changes which list is best.
        let s = Study::run(WorldConfig::small(272)).unwrap();
        let k = s.world.sites.len() / 10;
        let series = figure3(&s, k);
        let crux = series
            .iter()
            .find(|t| t.source == ListSource::Crux)
            .unwrap();
        let secrank = series
            .iter()
            .find(|t| t.source == ListSource::Secrank)
            .unwrap();
        let days_crux_wins = crux
            .jaccard
            .iter()
            .zip(&secrank.jaccard)
            .filter(|(c, s)| c > s)
            .count();
        assert!(
            days_crux_wins * 10 >= crux.jaccard.len() * 9,
            "CrUX should beat Secrank on ~every day ({days_crux_wins}/{})",
            crux.jaccard.len()
        );
    }

    #[test]
    fn splits_computable_on_full_window() {
        let s = Study::run(WorldConfig {
            n_sites: 800,
            n_clients: 500,
            ..WorldConfig::small(273)
        })
        .unwrap();
        let series = figure3(&s, 80);
        for ts in series {
            let split = ts.jaccard_split().unwrap();
            assert!(split.weekday_mean.is_finite() && split.weekend_mean.is_finite());
        }
    }
}
