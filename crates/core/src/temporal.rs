//! Figure 3: daily correlation between top lists and the all-HTTP-requests
//! metric over the measurement window (Section 5.4).
//!
//! Daily snapshots are used where the list has them (Alexa, Umbrella); the
//! slow-moving lists (Majestic, Secrank, Tranco, Trexa, CrUX) are fixed
//! within the month, exactly as their real counterparts effectively are.

use topple_lists::{normalize_bucketed, normalize_ranked, ListSource};
use topple_psl::DomainName;
use topple_stats::timeseries::{dominant_period, weekday_split, WeekdaySplit};

use crate::methodology::against_cloudflare;
use crate::study::Study;

/// Daily similarity series for one list.
#[derive(Debug, Clone)]
pub struct TemporalSeries {
    /// The list.
    pub source: ListSource,
    /// Daily Jaccard indices vs all-HTTP-requests.
    pub jaccard: Vec<f64>,
    /// Daily Spearman ρ (NaN where uncomputable; all-NaN for CrUX).
    pub spearman: Vec<f64>,
    /// Weekend flags per day.
    pub weekend: Vec<bool>,
}

impl TemporalSeries {
    /// Weekday/weekend contrast of the Jaccard series.
    pub fn jaccard_split(&self) -> Option<WeekdaySplit> {
        weekday_split(&self.jaccard, &self.weekend).ok()
    }

    /// Dominant period of the Jaccard series (weekly periodicity shows as 7).
    pub fn jaccard_period(&self) -> Option<(usize, f64)> {
        dominant_period(&self.jaccard, self.jaccard.len().saturating_sub(2).min(10)).ok()
    }
}

/// Computes daily series for every list at magnitude `k`.
pub fn figure3(study: &Study, k: usize) -> Vec<TemporalSeries> {
    let n_days = study.world.config.days.len();
    let weekend: Vec<bool> = study
        .world
        .config
        .days
        .iter()
        .map(|d| d.weekday().is_weekend())
        .collect();

    ListSource::ALL
        .iter()
        .map(|&source| {
            let mut jaccard = Vec::with_capacity(n_days);
            let mut spearman = Vec::with_capacity(n_days);
            for day in 0..n_days {
                // The day's reference: CF all-HTTP-requests ranking.
                let scores = study.cdn.daily_all_requests(day);
                let cf_ranked: Vec<DomainName> = study
                    .cf_ranked_domains(scores)
                    .into_iter()
                    .cloned()
                    .collect();
                // The day's list snapshot.
                let norm = match source {
                    ListSource::Alexa => {
                        normalize_ranked(&study.world.psl, &study.alexa_daily[day])
                    }
                    ListSource::Umbrella => {
                        normalize_ranked(&study.world.psl, &study.umbrella_daily[day])
                    }
                    ListSource::Majestic => normalize_ranked(&study.world.psl, &study.majestic),
                    ListSource::Secrank => normalize_ranked(&study.world.psl, &study.secrank),
                    ListSource::Tranco => normalize_ranked(&study.world.psl, &study.tranco),
                    ListSource::Trexa => normalize_ranked(&study.world.psl, &study.trexa),
                    ListSource::Crux => normalize_bucketed(&study.world.psl, &study.crux),
                };
                let ev = against_cloudflare(study, &norm, &cf_ranked, k);
                jaccard.push(ev.similarity.jaccard);
                spearman.push(ev.similarity.spearman.map(|s| s.rho).unwrap_or(f64::NAN));
            }
            TemporalSeries {
                source,
                jaccard,
                spearman,
                weekend: weekend.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    #[test]
    fn series_cover_every_day() {
        let s = Study::run(WorldConfig::tiny(271)).unwrap();
        let series = figure3(&s, 40);
        assert_eq!(series.len(), 7);
        for ts in &series {
            assert_eq!(ts.jaccard.len(), 7);
            assert!(ts.jaccard.iter().all(|v| (0.0..=1.0).contains(v)));
            if ts.source == ListSource::Crux {
                assert!(ts.spearman.iter().all(|v| v.is_nan()));
            }
        }
    }

    #[test]
    fn list_ordering_stable_over_days() {
        // The paper: daily variation rarely changes which list is best.
        let s = Study::run(WorldConfig::small(272)).unwrap();
        let k = s.world.sites.len() / 10;
        let series = figure3(&s, k);
        let crux = series
            .iter()
            .find(|t| t.source == ListSource::Crux)
            .unwrap();
        let secrank = series
            .iter()
            .find(|t| t.source == ListSource::Secrank)
            .unwrap();
        let days_crux_wins = crux
            .jaccard
            .iter()
            .zip(&secrank.jaccard)
            .filter(|(c, s)| c > s)
            .count();
        assert!(
            days_crux_wins * 10 >= crux.jaccard.len() * 9,
            "CrUX should beat Secrank on ~every day ({days_crux_wins}/{})",
            crux.jaccard.len()
        );
    }

    #[test]
    fn splits_computable_on_full_window() {
        let s = Study::run(WorldConfig {
            n_sites: 800,
            n_clients: 500,
            ..WorldConfig::small(273)
        })
        .unwrap();
        let series = figure3(&s, 80);
        for ts in series {
            let split = ts.jaccard_split().unwrap();
            assert!(split.weekday_mean.is_finite() && split.weekend_mean.is_finite());
        }
    }
}
