//! List-manipulation experiments (extension; paper §2 / Le Pochat et al.).
//!
//! Top lists are attack targets: ranking an attacker's domain makes it look
//! reputable to systems that whitelist "popular" sites \[26\]. Tranco's Dowdall
//! aggregation raises the cost — an attacker who captures one provider for
//! one day gains little. This module quantifies that defence inside the
//! framework: forge the head of one provider's daily snapshots for a chosen
//! number of days and measure the rank the attacker attains in the
//! aggregated list.

use topple_lists::{tranco, RankedList};

use crate::study::Study;

/// The forged domain injected by the attacker.
pub const ATTACKER_DOMAIN: &str = "attacker-controlled.example";

/// Result of one attack scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Days of the window on which the attacker controlled the input list.
    pub days_controlled: usize,
    /// Rank forced on the controlled input (1 = head).
    pub injected_rank: u32,
    /// Rank attained in the aggregated Tranco-style list, if it charted.
    pub attained_rank: Option<u32>,
}

/// Injects `domain` at `rank` into a cloned list (shifting everything at or
/// below that rank down by one).
pub fn inject(list: &RankedList, domain: &str, rank: u32) -> RankedList {
    assert!(rank >= 1, "ranks are 1-based");
    let mut names: Vec<String> = Vec::with_capacity(list.len() + 1);
    let pos = (rank as usize - 1).min(list.len());
    for e in list.entries.iter().take(pos) {
        names.push(e.name.clone());
    }
    names.push(domain.to_owned());
    for e in list.entries.iter().skip(pos) {
        if e.name != domain {
            names.push(e.name.clone());
        }
    }
    RankedList::from_sorted_names(list.source, names)
}

/// Runs the Tranco capture experiment: the attacker controls the Alexa daily
/// snapshot (injecting [`ATTACKER_DOMAIN`] at `injected_rank`) for the first
/// `days_controlled` days of the window, and the aggregate is rebuilt from
/// otherwise-authentic inputs.
pub fn tranco_capture(study: &Study, days_controlled: usize, injected_rank: u32) -> AttackOutcome {
    let n_days = study.alexa_daily.len();
    let days_controlled = days_controlled.min(n_days);
    let forged: Vec<RankedList> = study
        .alexa_daily
        .iter()
        .enumerate()
        .map(|(d, list)| {
            if d < days_controlled {
                inject(list, ATTACKER_DOMAIN, injected_rank)
            } else {
                list.clone()
            }
        })
        .collect();
    let umbrella_domains: Vec<RankedList> = study
        .umbrella_daily
        .iter()
        .map(|l| topple_lists::normalize_ranked(&study.world.psl, l).to_ranked_list())
        .collect();
    let mut inputs: Vec<&RankedList> = Vec::new();
    inputs.extend(forged.iter());
    inputs.extend(umbrella_domains.iter());
    for _ in 0..n_days {
        inputs.push(&study.majestic);
    }
    let aggregated = tranco::build(&inputs, study.world.sites.len());
    let attained_rank = aggregated
        .entries
        .iter()
        .find(|e| e.name == ATTACKER_DOMAIN)
        .map(|e| e.rank);
    AttackOutcome {
        days_controlled,
        injected_rank,
        attained_rank,
    }
}

/// Sweeps attack durations and returns the attained Tranco rank per scenario.
pub fn capture_sweep(study: &Study, durations: &[usize], injected_rank: u32) -> Vec<AttackOutcome> {
    durations
        .iter()
        .map(|&d| tranco_capture(study, d, injected_rank))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_lists::ListSource;
    use topple_sim::WorldConfig;

    #[test]
    fn inject_places_domain_at_rank() {
        let base = RankedList::from_sorted_names(
            ListSource::Alexa,
            vec!["a.com".into(), "b.com".into(), "c.com".into()],
        );
        let forged = inject(&base, "evil.example", 2);
        let names: Vec<&str> = forged.top_names(4).collect();
        assert_eq!(names, vec!["a.com", "evil.example", "b.com", "c.com"]);
        // Injection at a rank beyond the end appends.
        let tail = inject(&base, "evil.example", 99);
        assert_eq!(tail.entries.last().unwrap().name, "evil.example");
        // Injecting an already-present domain doesn't duplicate it.
        let again = inject(&forged, "evil.example", 1);
        let count = again
            .entries
            .iter()
            .filter(|e| e.name == "evil.example")
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn sustained_control_beats_single_day() {
        let s = Study::run(WorldConfig::tiny(501)).unwrap();
        let outcomes = capture_sweep(&s, &[1, 7], 1);
        let one_day = outcomes[0].attained_rank.expect("charted");
        let week = outcomes[1].attained_rank.expect("charted");
        assert!(
            week < one_day,
            "a week of control (rank {week}) must beat one day (rank {one_day})"
        );
    }

    #[test]
    fn single_day_capture_does_not_reach_the_head() {
        // The Dowdall defence: rank 1 on one of seven Alexa days lands well
        // below rank 1 in the aggregate.
        let s = Study::run(WorldConfig::tiny(502)).unwrap();
        let outcome = tranco_capture(&s, 1, 1);
        let attained = outcome.attained_rank.expect("charted");
        assert!(attained > 3, "one-day capture attained rank {attained}");
    }

    #[test]
    fn full_window_control_reaches_the_head_region() {
        // Even with every Alexa day at rank 1, two authentic providers still
        // out-vote the attacker for the very top; landing in the top handful
        // is the ceiling of a single-provider capture.
        let s = Study::run(WorldConfig::tiny(503)).unwrap();
        let n_days = s.alexa_daily.len();
        let outcome = tranco_capture(&s, n_days, 1);
        let attained = outcome.attained_rank.expect("charted");
        assert!(
            attained <= 10,
            "full-window capture attained only rank {attained}"
        );
    }
}
