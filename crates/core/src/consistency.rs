//! Intra-source metric consistency matrices (Figures 1, 6, and 8).
//!
//! Compares popularity metrics *from the same vantage* against one another:
//! pairwise Jaccard of each metric's top-k set and Spearman of the
//! intersection ranks. Figure 1 runs the paper's chosen seven Cloudflare
//! metrics on a month of data; Figure 8 runs all 21 on a single day;
//! Figure 6 runs the three Chrome metrics per (country, platform) and
//! averages the cells.

use topple_lists::DomainId;
use topple_psl::DomainName;
use topple_sim::{Country, Platform};
use topple_vantage::{CfMetric, ChromeMetric, ScoreVec};

use crate::compare::{similarity, similarity_ids, IdCut};
use crate::error::CoreError;
use crate::parallel;
use crate::study::Study;

/// A labelled square similarity matrix.
#[derive(Debug, Clone)]
pub struct ConsistencyMatrix {
    /// Row/column labels.
    pub labels: Vec<String>,
    /// Pairwise Jaccard indices.
    pub jaccard: Vec<Vec<f64>>,
    /// Pairwise Spearman correlations (NaN where uncomputable).
    pub spearman: Vec<Vec<f64>>,
    /// The magnitude (top-k) compared at.
    pub k: usize,
}

impl ConsistencyMatrix {
    /// Off-diagonal Jaccard range `(min, max)` — the paper's
    /// "intra-Cloudflare band" that external lists are judged against.
    pub fn jaccard_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..self.labels.len() {
            for j in 0..self.labels.len() {
                if i != j {
                    lo = lo.min(self.jaccard[i][j]);
                    hi = hi.max(self.jaccard[i][j]);
                }
            }
        }
        (lo, hi)
    }
}

/// Builds a consistency matrix from per-metric best-first domain rankings.
///
/// Reference string-path implementation, kept for ad-hoc name rankings and
/// the equivalence tests; study analyses use [`matrix_from_id_rankings`].
pub fn matrix_from_rankings(
    labels: Vec<String>,
    rankings: &[Vec<DomainName>],
    k: usize,
) -> ConsistencyMatrix {
    let n = rankings.len();
    let mut jaccard = vec![vec![0.0; n]; n];
    let mut spearman = vec![vec![f64::NAN; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                jaccard[i][j] = 1.0;
                spearman[i][j] = 1.0;
                continue;
            }
            let a: Vec<&DomainName> = rankings[i].iter().take(k).collect();
            let b: Vec<&DomainName> = rankings[j].iter().take(k).collect();
            let sim = similarity(&a, &b);
            jaccard[i][j] = sim.jaccard;
            spearman[i][j] = sim.spearman.map(|s| s.rho).unwrap_or(f64::NAN);
        }
    }
    ConsistencyMatrix {
        labels,
        jaccard,
        spearman,
        k,
    }
}

/// Builds a consistency matrix from per-metric best-first *id* rankings,
/// fanning rows out over `workers` threads.
///
/// Every cell is independent and the fold is row-index-ordered, so the
/// matrix is byte-identical at any worker count (`tests/determinism.rs`).
/// Each ranking's top-`k` cut is prepared once as an [`IdCut`]; cells are
/// then hash-free merge-walks.
pub fn matrix_from_id_rankings(
    labels: Vec<String>,
    rankings: &[Vec<DomainId>],
    k: usize,
    workers: usize,
) -> ConsistencyMatrix {
    let n = rankings.len();
    let cuts: Vec<IdCut> = rankings
        .iter()
        .map(|r| IdCut::new(&r[..k.min(r.len())]))
        .collect();
    let rows = parallel::map_indexed(n, workers, |i| {
        let mut jrow = vec![0.0; n];
        let mut srow = vec![f64::NAN; n];
        for j in 0..n {
            if i == j {
                jrow[j] = 1.0;
                srow[j] = 1.0;
                continue;
            }
            let sim = similarity_ids(&cuts[i], &cuts[j]);
            jrow[j] = sim.jaccard;
            srow[j] = sim.spearman.map(|s| s.rho).unwrap_or(f64::NAN);
        }
        (jrow, srow)
    });
    let (jaccard, spearman) = rows.into_iter().unzip();
    ConsistencyMatrix {
        labels,
        jaccard,
        spearman,
        k,
    }
}

/// Figure 1: the paper's seven Cloudflare metrics on month-averaged data.
pub fn intra_cloudflare_final(study: &Study, k: usize) -> ConsistencyMatrix {
    let metrics = CfMetric::final_seven();
    let rankings: Vec<Vec<DomainId>> = metrics.iter().map(|&m| study.cf_monthly_ids(m)).collect();
    matrix_from_id_rankings(
        metrics.iter().map(|m| m.label()).collect(),
        &rankings,
        k,
        study.world.config.effective_workers(),
    )
}

/// Figure 8: all 21 filter-aggregation combinations on the first day.
pub fn intra_cloudflare_full(study: &Study, k: usize) -> Result<ConsistencyMatrix, CoreError> {
    let metrics = CfMetric::full_suite();
    let day = study.cdn.first_day().ok_or(CoreError::EmptyWindow)?;
    let rankings: Vec<Vec<DomainId>> = metrics
        .iter()
        .map(|&m| {
            let scores: &ScoreVec = day.metric(m);
            study.index().cf_ranked_ids(scores)
        })
        .collect();
    Ok(matrix_from_id_rankings(
        metrics.iter().map(|m| m.label()).collect(),
        &rankings,
        k,
        study.world.config.effective_workers(),
    ))
}

/// Figure 6: intra-Chrome consistency — pairwise similarity of the three
/// telemetry metrics computed per (country, platform) cell and averaged.
pub fn intra_chrome(study: &Study, k: usize) -> ConsistencyMatrix {
    let metrics = ChromeMetric::ALL;
    let n = metrics.len();
    let mut jaccard_sum = vec![vec![0.0; n]; n];
    let mut spearman_sum = vec![vec![0.0; n]; n];
    let mut cells = 0.0f64;
    let threshold = study.world.config.crux_privacy_threshold;
    let workers = study.world.config.effective_workers();
    for country in Country::EVALUATED {
        for platform in [Platform::Windows, Platform::Android] {
            // Per-cell rankings, normalized to domains.
            let rankings: Vec<Vec<DomainId>> = metrics
                .iter()
                .map(|&m| chrome_cell_ids(study, country, platform, m, threshold))
                .collect();
            if rankings.iter().any(|r| r.len() < 10) {
                continue; // cell too thin to compare
            }
            let m = matrix_from_id_rankings(
                metrics.iter().map(|x| x.label().to_owned()).collect(),
                &rankings,
                k,
                workers,
            );
            for i in 0..n {
                for j in 0..n {
                    jaccard_sum[i][j] += m.jaccard[i][j];
                    spearman_sum[i][j] += if m.spearman[i][j].is_nan() {
                        0.0
                    } else {
                        m.spearman[i][j]
                    };
                }
            }
            cells += 1.0;
        }
    }
    for row in jaccard_sum.iter_mut().chain(spearman_sum.iter_mut()) {
        for v in row {
            *v /= cells.max(1.0);
        }
    }
    ConsistencyMatrix {
        labels: metrics.iter().map(|m| m.label().to_owned()).collect(),
        jaccard: jaccard_sum,
        spearman: spearman_sum,
        k,
    }
}

/// Best-first id ranking of one Chrome telemetry cell (origins collapsed to
/// registrable domains, keeping each domain's best position).
///
/// Site domains are unique in the world, so deduplicating by site index is
/// exactly the string path's "first appearance of the domain wins" — without
/// building a string set per cell.
pub fn chrome_cell_ids(
    study: &Study,
    country: Country,
    platform: Platform,
    metric: ChromeMetric,
    privacy_threshold: u32,
) -> Vec<DomainId> {
    let list = study
        .chrome
        .country_platform_list(country, platform, metric, privacy_threshold);
    let mut seen = vec![false; study.world.sites.len()];
    let mut out = Vec::new();
    for ((site, _host), _score) in list {
        if !seen[site.index()] {
            seen[site.index()] = true;
            out.push(study.index().site_id(site));
        }
    }
    out
}

/// [`chrome_cell_ids`] resolved back to domain names (the string-path form,
/// used by the equivalence tests and ad-hoc reporting).
pub fn chrome_cell_domains(
    study: &Study,
    country: Country,
    platform: Platform,
    metric: ChromeMetric,
    privacy_threshold: u32,
) -> Vec<DomainName> {
    chrome_cell_ids(study, country, platform, metric, privacy_threshold)
        .into_iter()
        .map(|id| study.index().table().name(id).clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    fn study() -> Study {
        Study::run(WorldConfig::tiny(221)).unwrap()
    }

    #[test]
    fn matrices_are_symmetric_with_unit_diagonal() {
        let s = study();
        let m = intra_cloudflare_final(&s, 40);
        assert_eq!(m.labels.len(), 7);
        for i in 0..7 {
            assert!((m.jaccard[i][i] - 1.0).abs() < 1e-12);
            for j in 0..7 {
                assert!((m.jaccard[i][j] - m.jaccard[j][i]).abs() < 1e-12);
                assert!(m.jaccard[i][j] >= 0.0 && m.jaccard[i][j] <= 1.0);
            }
        }
    }

    #[test]
    fn full_suite_has_21_metrics() {
        let s = study();
        let m = intra_cloudflare_full(&s, 40).unwrap();
        assert_eq!(m.labels.len(), 21);
    }

    #[test]
    fn redundant_filters_correlate_strongly() {
        // Section 3.2: all-requests vs 200-only should be nearly identical.
        let s = Study::run(WorldConfig::small(222)).unwrap();
        let m = intra_cloudflare_full(&s, 400).unwrap();
        let idx_all = 0; // all-req/raw
        let idx_200 = CfMetric {
            filter: topple_vantage::CfFilter::Status200,
            agg: topple_vantage::CfAgg::Raw,
        }
        .index();
        assert!(
            m.spearman[idx_all][idx_200] > 0.9,
            "all vs 200-only rho = {}",
            m.spearman[idx_all][idx_200]
        );
        assert!(m.jaccard[idx_all][idx_200] > 0.7);
    }

    #[test]
    fn bookends_disagree_most() {
        // All-requests vs root-page should be among the least-similar pairs
        // of the final seven (Section 3.3).
        let s = Study::run(WorldConfig::small(223)).unwrap();
        let m = intra_cloudflare_final(&s, 400);
        // Index 0 = all-req/raw, index 2 = root-page/raw in final_seven order.
        let bookend_ji = m.jaccard[0][2];
        let (lo, hi) = m.jaccard_range();
        assert!(
            bookend_ji <= (lo + hi) / 2.0,
            "bookends should sit low in the band"
        );
    }

    #[test]
    fn intra_chrome_has_three_metrics() {
        let s = Study::run(WorldConfig::small(224)).unwrap();
        let m = intra_chrome(&s, 400);
        assert_eq!(m.labels.len(), 3);
        // Chrome metrics come from one data source: strong correlation.
        for i in 0..3 {
            for j in 0..3 {
                if i != j && !m.spearman[i][j].is_nan() && m.spearman[i][j] != 0.0 {
                    assert!(
                        m.spearman[i][j] > 0.3,
                        "chrome metrics should correlate: {}",
                        m.spearman[i][j]
                    );
                }
            }
        }
    }
}
