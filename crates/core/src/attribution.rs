//! Bias-mechanism attribution (extension; paper §7).
//!
//! The paper closes with "we find that there are biases in top lists, but we
//! do not answer conclusively why these biases arise". A simulator can: turn
//! each modelled mechanism off, re-run the world, and measure how much of a
//! list's inaccuracy that mechanism explains. This is the counterfactual
//! experiment the real study could never run.

use topple_lists::ListSource;
use topple_sim::{Mechanisms, WorldConfig};
use topple_vantage::CfMetric;

use crate::error::CoreError;
use crate::listeval;
use crate::study::Study;

/// One counterfactual scenario's outcome.
#[derive(Debug, Clone)]
pub struct AttributionRow {
    /// Scenario label ("baseline", "no certify", …).
    pub scenario: &'static str,
    /// Mean Figure-2 Jaccard of the Alexa list across the seven metrics.
    pub alexa_ji: f64,
    /// Mean Jaccard of the Umbrella list.
    pub umbrella_ji: f64,
    /// Mean Jaccard of the CrUX list.
    pub crux_ji: f64,
}

fn mean_ji(ev: &listeval::ListEvaluation, src: ListSource) -> Result<f64, CoreError> {
    let i = ev
        .lists
        .iter()
        .position(|&x| x == src)
        .ok_or(CoreError::MissingList(src))?;
    Ok(ev.jaccard[i].iter().sum::<f64>() / ev.jaccard[i].len() as f64)
}

/// Runs the attribution study: the baseline world plus one world per
/// disabled mechanism, evaluated at the scaled top-"100K" magnitude.
///
/// `base` supplies seed and scale; each scenario re-runs the full pipeline,
/// so prefer small configurations.
pub fn mechanism_attribution(base: WorldConfig) -> Result<Vec<AttributionRow>, CoreError> {
    let scenarios: [(&'static str, Mechanisms); 5] = [
        ("baseline (all mechanisms on)", Mechanisms::default()),
        (
            "no Certify inflation",
            Mechanisms {
                certify: false,
                ..Mechanisms::default()
            },
        ),
        (
            "no private browsing",
            Mechanisms {
                private_browsing: false,
                ..Mechanisms::default()
            },
        ),
        (
            "no panel demographic aversion",
            Mechanisms {
                panel_aversion: false,
                ..Mechanisms::default()
            },
        ),
        (
            "no DNS TTL distortion",
            Mechanisms {
                dns_ttl_distortion: false,
                ..Mechanisms::default()
            },
        ),
    ];
    scenarios
        .into_iter()
        .map(|(scenario, mechanisms)| {
            let config = WorldConfig {
                mechanisms,
                ..base.clone()
            };
            let study = Study::run(config)?;
            let mags = study.magnitudes();
            let k = mags[mags.len().saturating_sub(2)].1;
            let ev = listeval::figure2(&study, k);
            Ok(AttributionRow {
                scenario,
                alexa_ji: mean_ji(&ev, ListSource::Alexa)?,
                umbrella_ji: mean_ji(&ev, ListSource::Umbrella)?,
                crux_ji: mean_ji(&ev, ListSource::Crux)?,
            })
        })
        .collect()
}

/// Sanity accessor: which CF metric the attribution evaluates against (all
/// seven via Figure 2; exported for documentation purposes).
pub fn reference_metrics() -> [CfMetric; 7] {
    CfMetric::final_seven()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabling_mechanisms_improves_the_affected_list() {
        let rows = mechanism_attribution(WorldConfig::tiny(701)).unwrap();
        assert_eq!(rows.len(), 5);
        let baseline = &rows[0];
        let no_certify = &rows[1];
        // Without Certify inflation the Alexa list can only get better (or
        // stay put within noise).
        assert!(
            no_certify.alexa_ji >= baseline.alexa_ji - 0.03,
            "removing Certify must not hurt Alexa: {:.3} vs baseline {:.3}",
            no_certify.alexa_ji,
            baseline.alexa_ji
        );
        // CrUX is unaffected by panel-side mechanisms.
        for row in &rows[1..2] {
            assert!(
                (row.crux_ji - baseline.crux_ji).abs() < 0.08,
                "{}: CrUX moved from {:.3} to {:.3}",
                row.scenario,
                baseline.crux_ji,
                row.crux_ji
            );
        }
    }

    #[test]
    fn counterfactual_worlds_share_ground_truth_shape() {
        // Disabling a measurement mechanism must not change the underlying
        // world much: site domains and categories stay identical.
        use topple_sim::World;
        let a = World::generate(WorldConfig::tiny(702)).unwrap();
        let b = World::generate(WorldConfig {
            mechanisms: Mechanisms {
                certify: false,
                ..Mechanisms::default()
            },
            ..WorldConfig::tiny(702)
        })
        .unwrap();
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.category, y.category);
            assert!((x.weight - y.weight).abs() < 1e-12);
            assert_eq!(y.certify_boost, 1.0);
        }
    }
}
