//! Study orchestration: run the world once, feed every vantage, build every
//! list, and cache what the experiments need.

use std::collections::HashMap;

use topple_lists::{
    alexa, crux, majestic, normalize_bucketed, normalize_ranked, secrank, tranco, trexa, umbrella,
    BucketedList, ListSource, NormalizedList, RankedList,
};
use topple_psl::DomainName;
use topple_sim::{Resolver, World, WorldConfig, WorldError};
use topple_vantage::{
    CdnVantage, CfMetric, ChromeVantage, CrawlerVantage, DnsVantage, PanelVantage, ScoreVec,
};

/// How many Alexa picks per Tranco pick in the Trexa interleave.
const TREXA_ALEXA_WEIGHT: usize = 2;

/// A fully-materialized study: the world, every vantage's accumulated view,
/// and every top list.
pub struct Study {
    /// The simulated world.
    pub world: World,
    /// The Cloudflare-style CDN vantage.
    pub cdn: CdnVantage,
    /// Chrome telemetry.
    pub chrome: ChromeVantage,
    /// The Umbrella resolver.
    pub umbrella_dns: DnsVantage,
    /// The Chinese resolver behind Secrank.
    pub china_dns: DnsVantage,
    /// The extension panel.
    pub panel: PanelVantage,
    /// The link-graph crawl.
    pub crawl: CrawlerVantage,
    /// Daily Alexa lists (trailing-window construction).
    pub alexa_daily: Vec<RankedList>,
    /// Daily Umbrella lists.
    pub umbrella_daily: Vec<RankedList>,
    /// The Majestic list (crawl-derived; essentially static within a month).
    pub majestic: RankedList,
    /// The Secrank list (monthly voting).
    pub secrank: RankedList,
    /// The Tranco list (Dowdall over the whole window).
    pub tranco: RankedList,
    /// The Trexa list.
    pub trexa: RankedList,
    /// The CrUX bucketed list.
    pub crux: BucketedList,
    /// Month-representative normalized lists, one per source.
    normalized: HashMap<ListSource, NormalizedList>,
}

impl Study {
    /// Runs the full pipeline at the given configuration.
    ///
    /// Day *traffic generation* is parallelized across worker threads (days
    /// are RNG-independent); ingestion is sequential and ordered so that
    /// vantages with day-indexed state stay consistent.
    pub fn run(config: WorldConfig) -> Result<Study, WorldError> {
        let world = World::generate(config)?;
        let n_days = world.config.days.len();
        let list_len = world.sites.len();

        let mut cdn = CdnVantage::new(&world);
        let mut chrome = ChromeVantage::new(&world);
        let mut umbrella_dns = DnsVantage::new(Resolver::Umbrella);
        let mut china_dns = DnsVantage::new(Resolver::ChinaVoting);
        let mut panel = PanelVantage::new(&world);

        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(6);
        let mut day = 0usize;
        while day < n_days {
            let batch = (day..(day + workers).min(n_days)).collect::<Vec<_>>();
            let traffics = std::thread::scope(|s| {
                let world = &world;
                let handles: Vec<_> = batch
                    .iter()
                    .map(|&d| s.spawn(move || world.simulate_day(d)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(t) => t,
                        // A worker panic is already fatal; re-raise it on the
                        // orchestrating thread with context.
                        #[allow(clippy::panic)]
                        // topple-lint: allow(panic): propagating a child-thread panic, not originating one
                        Err(_) => panic!("day simulation worker panicked"),
                    })
                    .collect::<Vec<_>>()
            });
            for t in &traffics {
                cdn.ingest_day(&world, t);
                chrome.ingest_day(&world, t);
                umbrella_dns.ingest_day(&world, t);
                china_dns.ingest_day(&world, t);
                panel.ingest_day(&world, t);
            }
            day += batch.len();
        }

        // The crawl is time-independent within the window.
        let crawl = CrawlerVantage::crawl(&world, 25, usize::MAX);

        // Daily lists.
        let alexa_daily: Vec<RankedList> = (0..n_days)
            .map(|d| alexa::build_daily(&world, &panel, d, n_days, list_len))
            .collect();
        // Umbrella daily snapshots fold a short trailing window (see the
        // builder's docs for the scale rationale).
        let umbrella_daily: Vec<RankedList> = (0..n_days)
            .map(|d| umbrella::build_daily(&world, &umbrella_dns, d, 3, list_len))
            .collect();
        let majestic = majestic::build(&world, &crawl, list_len);
        let secrank = secrank::build(&world, &china_dns, n_days, list_len);

        // Tranco: Dowdall over every daily snapshot of its three inputs
        // (Majestic's list is stable, so each day contributes the same one).
        // Real Tranco aggregates at pay-level-domain granularity, so
        // Umbrella's FQDN entries are PSL-filtered first.
        let umbrella_domains: Vec<RankedList> = umbrella_daily
            .iter()
            .map(|l| normalize_ranked(&world.psl, l).to_ranked_list())
            .collect();
        let mut tranco_inputs: Vec<&RankedList> = Vec::new();
        tranco_inputs.extend(alexa_daily.iter());
        tranco_inputs.extend(umbrella_domains.iter());
        for _ in 0..n_days {
            tranco_inputs.push(&majestic);
        }
        let tranco = tranco::build(&tranco_inputs, list_len);
        #[allow(clippy::expect_used)]
        // topple-lint: allow(unwrap): WorldConfig::validate rejects an empty day window
        let alexa_month = alexa_daily.last().expect("window is non-empty");
        let trexa = trexa::build(&tranco, alexa_month, TREXA_ALEXA_WEIGHT, list_len);

        let magnitudes: Vec<usize> = world
            .config
            .rank_magnitudes()
            .iter()
            .map(|&(_, k)| k)
            .collect();
        let crux = crux::build(&world, &chrome, &magnitudes);

        // Month-representative normalized lists.
        let mut normalized = HashMap::new();
        normalized.insert(ListSource::Alexa, normalize_ranked(&world.psl, alexa_month));
        normalized.insert(
            ListSource::Umbrella,
            normalize_ranked(
                &world.psl,
                &umbrella::build_monthly(&world, &umbrella_dns, list_len),
            ),
        );
        normalized.insert(
            ListSource::Majestic,
            normalize_ranked(&world.psl, &majestic),
        );
        normalized.insert(ListSource::Secrank, normalize_ranked(&world.psl, &secrank));
        normalized.insert(ListSource::Tranco, normalize_ranked(&world.psl, &tranco));
        normalized.insert(ListSource::Trexa, normalize_ranked(&world.psl, &trexa));
        normalized.insert(ListSource::Crux, normalize_bucketed(&world.psl, &crux));

        Ok(Study {
            world,
            cdn,
            chrome,
            umbrella_dns,
            china_dns,
            panel,
            crawl,
            alexa_daily,
            umbrella_daily,
            majestic,
            secrank,
            tranco,
            trexa,
            crux,
            normalized,
        })
    }

    /// The month-representative normalized list for a source.
    pub fn normalized(&self, source: ListSource) -> &NormalizedList {
        &self.normalized[&source]
    }

    /// The scaled rank magnitudes of this study's world.
    pub fn magnitudes(&self) -> Vec<(&'static str, usize)> {
        self.world.config.rank_magnitudes()
    }

    /// Ranked Cloudflare domains for a metric score vector (best first).
    pub fn cf_ranked_domains(&self, scores: &ScoreVec) -> Vec<&DomainName> {
        topple_vantage::ranked_sites(scores)
            .into_iter()
            .map(|(site, _)| &self.world.sites[site.index()].domain)
            .collect()
    }

    /// Ranked Cloudflare domains for a monthly metric.
    pub fn cf_monthly_domains(&self, metric: CfMetric) -> Vec<DomainName> {
        let scores = self.cdn.monthly(metric);
        topple_vantage::ranked_sites(&scores)
            .into_iter()
            .map(|(site, _)| self.world.sites[site.index()].domain.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_runs_on_tiny_world() {
        let s = Study::run(WorldConfig::tiny(201)).unwrap();
        assert_eq!(s.alexa_daily.len(), 7);
        assert_eq!(s.umbrella_daily.len(), 7);
        assert!(!s.majestic.is_empty());
        assert!(!s.tranco.is_empty());
        assert!(!s.trexa.is_empty());
        assert!(!s.crux.is_empty());
        assert_eq!(s.cdn.days(), 7);
        for src in ListSource::ALL {
            assert!(!s.normalized(src).is_empty(), "{src} normalized empty");
        }
    }

    #[test]
    fn deterministic_end_to_end() {
        let a = Study::run(WorldConfig::tiny(202)).unwrap();
        let b = Study::run(WorldConfig::tiny(202)).unwrap();
        assert_eq!(a.tranco, b.tranco);
        assert_eq!(a.secrank, b.secrank);
        assert_eq!(a.crux.to_csv(), b.crux.to_csv());
        let m = CfMetric::final_seven()[0];
        assert_eq!(a.cf_monthly_domains(m), b.cf_monthly_domains(m));
    }

    #[test]
    fn cf_domains_are_cloudflare_served() {
        let s = Study::run(WorldConfig::tiny(203)).unwrap();
        for m in CfMetric::final_seven() {
            for d in s.cf_monthly_domains(m).iter().take(50) {
                assert!(
                    s.world.is_cloudflare(d),
                    "{d} in CF metric but not CF-served"
                );
            }
        }
    }
}
