//! Study orchestration: run the world once, feed every vantage, build every
//! list, and cache what the experiments need.
//!
//! Day simulation *and* per-day vantage observation run fused on a worker
//! pool (`WorldConfig::workers` / `TOPPLE_WORKERS`): each worker streams a
//! day's events straight into all five vantage builders as the simulator
//! generates them ([`topple_vantage::DayScratch`] — no materialized
//! `DayTraffic`, per-day working state in pooled reusable scratch) and
//! condenses it into mergeable [`DayShards`]; the orchestrating thread
//! folds completed shards into the vantage accumulators in strict day
//! order. The fold order — not the workers' completion order — is what
//! reaches the accumulators, so results are byte-identical at any worker
//! count (`tests/determinism.rs`), and the bounded channel keeps at most
//! `O(workers)` days of shards in flight.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use topple_lists::{
    alexa, crux, majestic, secrank, tranco, trexa, umbrella, BucketedList, DomainId, DomainTable,
    ListSource, NormalizedList, Normalizer, RankedList,
};
use topple_psl::DomainName;
use topple_sim::{Resolver, World, WorldConfig, WorldError};
use topple_vantage::{
    CdnVantage, CfMetric, ChromeVantage, CrawlerVantage, DayScratch, DayShards, DnsVantage,
    PanelVantage, ScoreVec, ScratchPool,
};

use crate::index::{ColumnsSet, ListColumns, StudyIndex};

/// How many Alexa picks per Tranco pick in the Trexa interleave.
const TREXA_ALEXA_WEIGHT: usize = 2;

/// The month-representative normalized list of every source, stored as one
/// field per source so lookup is infallible by construction (no map, no
/// missing-key panic path).
struct NormalizedSet {
    alexa: NormalizedList,
    umbrella: NormalizedList,
    majestic: NormalizedList,
    secrank: NormalizedList,
    tranco: NormalizedList,
    trexa: NormalizedList,
    crux: NormalizedList,
}

impl NormalizedSet {
    fn get(&self, source: ListSource) -> &NormalizedList {
        match source {
            ListSource::Alexa => &self.alexa,
            ListSource::Umbrella => &self.umbrella,
            ListSource::Majestic => &self.majestic,
            ListSource::Secrank => &self.secrank,
            ListSource::Tranco => &self.tranco,
            ListSource::Trexa => &self.trexa,
            ListSource::Crux => &self.crux,
        }
    }
}

/// The five traffic-ingesting vantage accumulators a study folds shards
/// into, bundled so the pipeline can pass them around as one unit.
struct Accumulators {
    cdn: CdnVantage,
    chrome: ChromeVantage,
    umbrella_dns: DnsVantage,
    china_dns: DnsVantage,
    panel: PanelVantage,
}

impl Accumulators {
    fn new(world: &World) -> Self {
        Accumulators {
            cdn: CdnVantage::new(world),
            chrome: ChromeVantage::new(world),
            umbrella_dns: DnsVantage::new(Resolver::Umbrella),
            china_dns: DnsVantage::new(Resolver::ChinaVoting),
            panel: PanelVantage::new(world),
        }
    }

    /// Folds one day's shards in. Must be called in ascending day order —
    /// the vantages assert it.
    fn fold(&mut self, world: &World, shards: DayShards) {
        self.cdn.ingest_shard(shards.cdn);
        self.chrome.ingest_shard(shards.chrome);
        self.umbrella_dns.ingest_shard(world, shards.umbrella);
        self.china_dns.ingest_shard(world, shards.china);
        self.panel.ingest_shard(shards.panel);
    }
}

/// Simulates and ingests every day of the window through the fused
/// streaming pipeline ([`DayScratch::observe_day`]): each day's traffic is
/// observed by all five vantages as it is generated, with no materialized
/// `DayTraffic` and all per-day working state in reusable scratch.
///
/// With one worker this runs inline with zero threading overhead, reusing a
/// single [`DayScratch`] across the window. With more, a pool of workers
/// pulls day indices from a shared counter, checks a `DayScratch` out of a
/// shared [`ScratchPool`] (so warmed-up capacity is reused across days
/// regardless of which worker lands on them), condenses the day into
/// mergeable [`DayShards`], and sends the result over a bounded channel;
/// the orchestrating thread reorders arrivals and folds them in strict day
/// order. The channel bound (2× workers) caps how far simulation can run
/// ahead of ingestion, bounding memory to `O(workers)` days.
fn run_days(world: &World, acc: &mut Accumulators, workers: usize) {
    let n_days = world.config.days.len();
    if workers <= 1 || n_days <= 1 {
        let mut scratch = DayScratch::new(world);
        for d in 0..n_days {
            acc.fold(world, scratch.observe_day(world, d));
        }
        return;
    }

    let (tx, rx) = mpsc::sync_channel::<(usize, DayShards)>(workers * 2);
    let next_day = AtomicUsize::new(0);
    let pool = ScratchPool::new();
    std::thread::scope(|s| {
        for _ in 0..workers.min(n_days) {
            let tx = tx.clone();
            let next_day = &next_day;
            let pool = &pool;
            s.spawn(move || loop {
                let d = next_day.fetch_add(1, Ordering::Relaxed);
                if d >= n_days {
                    break;
                }
                let mut scratch = pool.checkout_or(|| DayScratch::new(world));
                let shards = scratch.observe_day(world, d);
                pool.put_back(scratch);
                // The receiver only disappears once every day has been
                // folded (or the orchestrator is unwinding); either way the
                // remaining work is moot.
                if tx.send((d, shards)).is_err() {
                    break;
                }
            });
        }
        drop(tx); // the fold loop's recv() must not wait on this clone

        // Reorder out-of-completion-order arrivals and fold in day order.
        let mut pending: BTreeMap<usize, DayShards> = BTreeMap::new();
        let mut next_fold = 0usize;
        while next_fold < n_days {
            let Ok((d, shards)) = rx.recv() else {
                // All workers exited early; a worker panic is about to be
                // propagated by the scope itself.
                break;
            };
            pending.insert(d, shards);
            while let Some(shards) = pending.remove(&next_fold) {
                acc.fold(world, shards);
                next_fold += 1;
            }
        }
    });
}

/// A fully-materialized study: the world, every vantage's accumulated view,
/// and every top list.
pub struct Study {
    /// The simulated world.
    pub world: World,
    /// The Cloudflare-style CDN vantage.
    pub cdn: CdnVantage,
    /// Chrome telemetry.
    pub chrome: ChromeVantage,
    /// The Umbrella resolver.
    pub umbrella_dns: DnsVantage,
    /// The Chinese resolver behind Secrank.
    pub china_dns: DnsVantage,
    /// The extension panel.
    pub panel: PanelVantage,
    /// The link-graph crawl.
    pub crawl: CrawlerVantage,
    /// Daily Alexa lists (trailing-window construction).
    pub alexa_daily: Vec<RankedList>,
    /// Daily Umbrella lists.
    pub umbrella_daily: Vec<RankedList>,
    /// The Majestic list (crawl-derived; essentially static within a month).
    pub majestic: RankedList,
    /// The Secrank list (monthly voting).
    pub secrank: RankedList,
    /// The Tranco list (Dowdall over the whole window).
    pub tranco: RankedList,
    /// The Trexa list.
    pub trexa: RankedList,
    /// The CrUX bucketed list.
    pub crux: BucketedList,
    /// Month-representative normalized lists, one per source.
    normalized: NormalizedSet,
    /// The interned columnar analysis index (see [`crate::index`]).
    index: StudyIndex,
}

impl Study {
    /// Runs the full pipeline at the given configuration.
    ///
    /// Day simulation *and* vantage observation run on
    /// `config.effective_workers()` worker threads (days are
    /// RNG-independent and shard construction is pure); the shards are then
    /// folded into the accumulators in strict day order, so the worker
    /// count never affects results.
    pub fn run(config: WorldConfig) -> Result<Study, WorldError> {
        let workers = config.effective_workers();
        let world = World::generate(config)?;
        let n_days = world.config.days.len();
        let list_len = world.sites.len();

        let mut acc = Accumulators::new(&world);
        run_days(&world, &mut acc, workers);
        let Accumulators {
            cdn,
            chrome,
            umbrella_dns,
            china_dns,
            panel,
        } = acc;

        // The crawl is time-independent within the window.
        let crawl = CrawlerVantage::crawl(&world, 25, usize::MAX);

        // Daily lists.
        let alexa_daily: Vec<RankedList> = (0..n_days)
            .map(|d| alexa::build_daily(&world, &panel, d, n_days, list_len))
            .collect();
        // Umbrella daily snapshots fold a short trailing window (see the
        // builder's docs for the scale rationale).
        let umbrella_daily: Vec<RankedList> = (0..n_days)
            .map(|d| umbrella::build_daily(&world, &umbrella_dns, d, 3, list_len))
            .collect();
        let majestic = majestic::build(&world, &crawl, list_len);
        let secrank = secrank::build(&world, &china_dns, n_days, list_len);

        // Every normalization from here on shares one `Normalizer`: the
        // world's site domains are interned first (so site `i` has domain id
        // `i`), and the memoized PSL cache maps each distinct raw entry to
        // its registrable domain exactly once for the whole study.
        let mut table = DomainTable::with_capacity(world.sites.len());
        let site_ids: Vec<DomainId> = world
            .sites
            .iter()
            .map(|s| table.intern(&s.domain))
            .collect();
        let mut norm = Normalizer::with_table(&world.psl, table);

        // Tranco: Dowdall over every daily snapshot of its three inputs
        // (Majestic's list is stable, so each day contributes the same one).
        // Real Tranco aggregates at pay-level-domain granularity, so
        // Umbrella's FQDN entries are PSL-filtered first.
        let umbrella_domains: Vec<RankedList> = umbrella_daily
            .iter()
            .map(|l| norm.ranked(l).to_ranked_list())
            .collect();
        let mut tranco_inputs: Vec<&RankedList> = Vec::new();
        tranco_inputs.extend(alexa_daily.iter());
        tranco_inputs.extend(umbrella_domains.iter());
        for _ in 0..n_days {
            tranco_inputs.push(&majestic);
        }
        let tranco = tranco::build(&tranco_inputs, list_len);
        #[allow(clippy::expect_used)]
        // topple-lint: allow(unwrap): WorldConfig::validate rejects an empty day window
        let alexa_month = alexa_daily.last().expect("window is non-empty");
        let trexa = trexa::build(&tranco, alexa_month, TREXA_ALEXA_WEIGHT, list_len);

        let magnitudes: Vec<usize> = world
            .config
            .rank_magnitudes()
            .iter()
            .map(|&(_, k)| k)
            .collect();
        let crux = crux::build(&world, &chrome, &magnitudes);

        // Month-representative normalized lists, one per source — the struct
        // makes "every source has one" a compile-time fact.
        let normalized = NormalizedSet {
            alexa: norm.ranked(alexa_month),
            umbrella: norm.ranked(&umbrella::build_monthly(&world, &umbrella_dns, list_len)),
            majestic: norm.ranked(&majestic),
            secrank: norm.ranked(&secrank),
            tranco: norm.ranked(&tranco),
            trexa: norm.ranked(&trexa),
            crux: norm.bucketed(&crux),
        };

        // Daily snapshots, normalized once here — analyses only ever see the
        // id columns, never a re-normalization inside a day loop. The
        // `NormalizedList`s are transient; only the columns survive.
        let alexa_daily_norm: Vec<NormalizedList> =
            alexa_daily.iter().map(|l| norm.ranked(l)).collect();
        let umbrella_daily_norm: Vec<NormalizedList> =
            umbrella_daily.iter().map(|l| norm.ranked(l)).collect();

        // Interning is complete: freeze the table and precompute the
        // CDN-served flag per id (one `is_cloudflare` probe per distinct
        // domain for the whole study).
        let table = norm.into_table();
        let is_cf: Vec<bool> = table
            .names()
            .iter()
            .map(|n| world.is_cloudflare(n))
            .collect();
        let cf = |id: DomainId| is_cf[id.index()];
        let monthly = ColumnsSet {
            alexa: ListColumns::from_normalized(&normalized.alexa, cf),
            umbrella: ListColumns::from_normalized(&normalized.umbrella, cf),
            majestic: ListColumns::from_normalized(&normalized.majestic, cf),
            secrank: ListColumns::from_normalized(&normalized.secrank, cf),
            tranco: ListColumns::from_normalized(&normalized.tranco, cf),
            trexa: ListColumns::from_normalized(&normalized.trexa, cf),
            crux: ListColumns::from_normalized(&normalized.crux, cf),
        };
        let alexa_cols: Vec<ListColumns> = alexa_daily_norm
            .iter()
            .map(|nl| ListColumns::from_normalized(nl, cf))
            .collect();
        let umbrella_cols: Vec<ListColumns> = umbrella_daily_norm
            .iter()
            .map(|nl| ListColumns::from_normalized(nl, cf))
            .collect();
        let index = StudyIndex::new(table, site_ids, is_cf, monthly, alexa_cols, umbrella_cols);

        Ok(Study {
            world,
            cdn,
            chrome,
            umbrella_dns,
            china_dns,
            panel,
            crawl,
            alexa_daily,
            umbrella_daily,
            majestic,
            secrank,
            tranco,
            trexa,
            crux,
            normalized,
            index,
        })
    }

    /// The interned columnar analysis index (domain table, id columns,
    /// CF-served flags).
    pub fn index(&self) -> &StudyIndex {
        &self.index
    }

    /// The month-representative normalized list for a source. Infallible:
    /// every source's list is a plain struct field, filled at construction.
    pub fn normalized(&self, source: ListSource) -> &NormalizedList {
        self.normalized.get(source)
    }

    /// The scaled rank magnitudes of this study's world.
    pub fn magnitudes(&self) -> Vec<(&'static str, usize)> {
        self.world.config.rank_magnitudes()
    }

    /// Ranked Cloudflare domains for a metric score vector (best first).
    pub fn cf_ranked_domains(&self, scores: &ScoreVec) -> Vec<&DomainName> {
        topple_vantage::ranked_sites(scores)
            .into_iter()
            .map(|(site, _)| &self.world.sites[site.index()].domain)
            .collect()
    }

    /// Ranked Cloudflare domains for a monthly metric.
    pub fn cf_monthly_domains(&self, metric: CfMetric) -> Vec<DomainName> {
        let scores = self.cdn.monthly(metric);
        topple_vantage::ranked_sites(&scores)
            .into_iter()
            .map(|(site, _)| self.world.sites[site.index()].domain.clone())
            .collect()
    }

    /// Ranked Cloudflare domain ids for a monthly metric — the id-space form
    /// of [`Self::cf_monthly_domains`], identically ordered.
    pub fn cf_monthly_ids(&self, metric: CfMetric) -> Vec<DomainId> {
        let scores = self.cdn.monthly(metric);
        self.index.cf_ranked_ids(&scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_runs_on_tiny_world() {
        let s = Study::run(WorldConfig::tiny(201)).unwrap();
        assert_eq!(s.alexa_daily.len(), 7);
        assert_eq!(s.umbrella_daily.len(), 7);
        assert!(!s.majestic.is_empty());
        assert!(!s.tranco.is_empty());
        assert!(!s.trexa.is_empty());
        assert!(!s.crux.is_empty());
        assert_eq!(s.cdn.days(), 7);
        for src in ListSource::ALL {
            assert!(!s.normalized(src).is_empty(), "{src} normalized empty");
        }
    }

    #[test]
    fn deterministic_end_to_end() {
        let a = Study::run(WorldConfig::tiny(202)).unwrap();
        let b = Study::run(WorldConfig::tiny(202)).unwrap();
        assert_eq!(a.tranco, b.tranco);
        assert_eq!(a.secrank, b.secrank);
        assert_eq!(a.crux.to_csv(), b.crux.to_csv());
        let m = CfMetric::final_seven()[0];
        assert_eq!(a.cf_monthly_domains(m), b.cf_monthly_domains(m));
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let seq = Study::run(WorldConfig {
            workers: Some(1),
            ..WorldConfig::tiny(204)
        })
        .unwrap();
        let par = Study::run(WorldConfig {
            workers: Some(3),
            ..WorldConfig::tiny(204)
        })
        .unwrap();
        assert_eq!(seq.tranco, par.tranco);
        assert_eq!(seq.secrank, par.secrank);
        assert_eq!(seq.trexa, par.trexa);
        assert_eq!(seq.crux.to_csv(), par.crux.to_csv());
        let m = CfMetric::final_seven()[0];
        assert_eq!(seq.cf_monthly_domains(m), par.cf_monthly_domains(m));
    }

    #[test]
    fn cf_domains_are_cloudflare_served() {
        let s = Study::run(WorldConfig::tiny(203)).unwrap();
        for m in CfMetric::final_seven() {
            for d in s.cf_monthly_domains(m).iter().take(50) {
                assert!(
                    s.world.is_cloudflare(d),
                    "{d} in CF metric but not CF-served"
                );
            }
        }
    }
}
