//! Deterministic fan-out for the analysis stage's embarrassingly parallel
//! loops (per-day comparisons, matrix rows).
//!
//! Mirrors the ingestion pipeline's guarantee (`study::run_days`, DESIGN.md
//! §10): workers pull indices from a shared counter and send results over a
//! channel, but the output vector is assembled *by index*, so the caller sees
//! exactly the sequential result regardless of completion order or worker
//! count. Each cell is computed independently (no shared float accumulators),
//! which is what makes the index-ordered fold byte-identical to `workers = 1`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Computes `f(0..n)` on `workers` threads, returning results in index order.
///
/// With `workers <= 1` (or a trivial `n`) this runs inline with zero
/// threading overhead — that path *is* the reference semantics, and the
/// pooled path reproduces it byte-for-byte because every `f(i)` is
/// independent and the fold is by index, not by arrival.
pub fn map_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The receiver only disappears if the orchestrator is
                // unwinding; remaining work is moot either way.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx); // the collection loop's recv() must not wait on this clone

        while let Ok((i, v)) = rx.recv() {
            slots[i] = Some(v);
        }
    });
    // Every index was sent exactly once unless a worker panicked, and a
    // worker panic propagates out of the scope above before we get here.
    #[allow(clippy::expect_used)]
    slots
        .into_iter()
        // topple-lint: allow(unwrap): unreachable by construction — the scope re-raises worker panics
        .map(|s| s.expect("every index computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_at_any_width() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(
                map_indexed(37, workers, |i| i * i),
                expected,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn results_keep_index_order_not_completion_order() {
        // Early indices sleep longest, so completion order is reversed; the
        // output must still be index-ordered.
        let out = map_indexed(6, 3, |i| {
            std::thread::sleep(std::time::Duration::from_millis((6 - i as u64) * 3));
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }
}
