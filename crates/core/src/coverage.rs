//! Table 1: Cloudflare coverage of top lists — the percent of each list's
//! top-k (normalized) domains that the cf_ray probe confirms are served by
//! the CDN.

use topple_lists::ListSource;

use crate::study::Study;

/// Coverage of one list at each magnitude.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// The list.
    pub source: ListSource,
    /// `(magnitude label, magnitude, percent Cloudflare-served)`.
    pub cells: Vec<(&'static str, usize, f64)>,
}

/// Computes Table 1 for every list at the world's scaled magnitudes.
///
/// Runs entirely on the study index: each cell is two prefix lengths
/// ([`crate::index::ListColumns::top_len`] and the precomputed CF-subset
/// prefix) — no per-cell probing or set building.
pub fn table1(study: &Study) -> Vec<CoverageRow> {
    let magnitudes = study.magnitudes();
    ListSource::ALL
        .iter()
        .map(|&source| {
            let cols = study.index().monthly(source);
            let cells = magnitudes
                .iter()
                .map(|&(label, k)| {
                    let total = cols.top_len(k);
                    let cf = cols.cf_subset_ids(k).len();
                    let pct = if total == 0 {
                        0.0
                    } else {
                        100.0 * cf as f64 / total as f64
                    };
                    (label, k, pct)
                })
                .collect();
            CoverageRow { source, cells }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    #[test]
    fn coverage_is_percentage() {
        let s = Study::run(WorldConfig::tiny(231)).unwrap();
        let rows = table1(&s);
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(!row.cells.is_empty());
            for &(_, _, pct) in &row.cells {
                assert!((0.0..=100.0).contains(&pct), "{}: {pct}", row.source);
            }
        }
    }

    #[test]
    fn most_lists_have_nonzero_coverage() {
        let s = Study::run(WorldConfig::small(232)).unwrap();
        let rows = table1(&s);
        let with_coverage = rows
            .iter()
            .filter(|r| r.cells.iter().any(|&(_, _, p)| p > 5.0))
            .count();
        assert!(
            with_coverage >= 5,
            "only {with_coverage} lists saw CF sites"
        );
    }
}
