//! The study's interned, columnar analysis index.
//!
//! Built once by [`Study::run`](crate::study::Study::run): every domain a
//! study can mention — the world's site names plus every normalized list
//! entry — is interned into a dense [`DomainId`] space (site `i` is id `i`
//! by construction), and each list becomes a [`ListColumns`]: its normalized
//! entries as an id column in value order. Because normalized entries are
//! value-sorted, *every* magnitude cut (top-1K/10K/100K/1M) is a prefix view
//! of that one column — ordered lists by length, bucketed lists by binary
//! search — so all magnitudes share a single materialization. The
//! Cloudflare-served subset at any magnitude is likewise a prefix of one
//! precomputed `cf_ids` column via a running prefix count.
//!
//! Downstream, comparisons run over sorted-id slices
//! (`topple_stats::sets::jaccard_sorted`, [`crate::compare::similarity_ids`])
//! instead of hashing domain strings per call.

use topple_lists::{DomainId, DomainTable, ListSource, NormalizedList};
use topple_sim::SiteId;
use topple_vantage::ScoreVec;

/// One normalized list as dense-id columns.
#[derive(Debug, Clone)]
pub struct ListColumns {
    /// Entry ids in normalized (value-ascending) order — rank order for
    /// ordered lists.
    pub ids: Vec<DomainId>,
    /// The entry values (min rank, or min bucket), parallel to `ids`.
    pub values: Vec<u32>,
    /// Whether `values` are individual ranks (true) or bucket sizes (false).
    pub ordered: bool,
    /// Ids of Cloudflare-served entries, in list order.
    cf_ids: Vec<DomainId>,
    /// `cf_prefix[i]` = number of Cloudflare-served entries among the first
    /// `i` entries (length `ids.len() + 1`), so the CF subset of any top-k
    /// cut is the prefix `cf_ids[..cf_prefix[top_len(k)]]`.
    cf_prefix: Vec<u32>,
}

impl Default for ListColumns {
    /// An empty ordered list. `cf_prefix` still carries its leading 0 so the
    /// prefix-view invariant (`len() + 1` entries) holds for the empty case.
    fn default() -> Self {
        ListColumns {
            ids: Vec::new(),
            values: Vec::new(),
            ordered: true,
            cf_ids: Vec::new(),
            cf_prefix: vec![0],
        }
    }
}

impl ListColumns {
    /// Extracts the id columns from a normalized list, marking the
    /// Cloudflare-served entries via `is_cf`.
    pub fn from_normalized(list: &NormalizedList, is_cf: impl Fn(DomainId) -> bool) -> Self {
        let mut cf_ids = Vec::new();
        let mut cf_prefix = Vec::with_capacity(list.ids.len() + 1);
        cf_prefix.push(0);
        for &id in &list.ids {
            if is_cf(id) {
                cf_ids.push(id);
            }
            cf_prefix.push(cf_ids.len() as u32);
        }
        ListColumns {
            ids: list.ids.clone(),
            values: list.entries.iter().map(|&(_, v)| v).collect(),
            ordered: list.ordered,
            cf_ids,
            cf_prefix,
        }
    }

    /// Length of the top-`k` prefix: `k` entries for ordered lists,
    /// everything with bucket ≤ `k` for bucketed ones (a prefix because
    /// entries are value-sorted).
    pub fn top_len(&self, k: usize) -> usize {
        if self.ordered {
            k.min(self.ids.len())
        } else {
            self.values.partition_point(|&b| b as usize <= k)
        }
    }

    /// The top-`k` cut as an id slice (list order, best first).
    pub fn top_ids(&self, k: usize) -> &[DomainId] {
        &self.ids[..self.top_len(k)]
    }

    /// The Cloudflare-served subset of the top-`k` cut, in list order — the
    /// paper's cf_ray-probe filter, as a prefix view (no per-call filtering).
    pub fn cf_subset_ids(&self, k: usize) -> &[DomainId] {
        let cut = self.top_len(k);
        &self.cf_ids[..self.cf_prefix[cut] as usize]
    }

    /// Number of normalized entries.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The full Cloudflare-served id column, in list order (snapshot export).
    pub fn cf_ids(&self) -> &[DomainId] {
        &self.cf_ids
    }

    /// The running Cloudflare prefix counts, length `len() + 1` (snapshot
    /// export).
    pub fn cf_prefix(&self) -> &[u32] {
        &self.cf_prefix
    }

    /// Reassembles columns from their raw parts (snapshot import), checking
    /// every structural invariant the prefix-view accessors rely on; a
    /// corrupted or hand-built input fails closed instead of producing
    /// out-of-bounds cuts later.
    pub fn from_raw_parts(
        ids: Vec<DomainId>,
        values: Vec<u32>,
        ordered: bool,
        cf_ids: Vec<DomainId>,
        cf_prefix: Vec<u32>,
    ) -> Result<Self, &'static str> {
        if values.len() != ids.len() {
            return Err("values column length differs from ids column");
        }
        if cf_prefix.len() != ids.len() + 1 {
            return Err("cf_prefix length must be ids length + 1");
        }
        if cf_prefix.first() != Some(&0) {
            return Err("cf_prefix must start at 0");
        }
        if cf_prefix.windows(2).any(|w| w[1] < w[0] || w[1] - w[0] > 1) {
            return Err("cf_prefix must grow by 0 or 1 per entry");
        }
        if cf_prefix.last().copied().unwrap_or(0) as usize != cf_ids.len() {
            return Err("cf_prefix total differs from cf_ids length");
        }
        if values.windows(2).any(|w| w[1] < w[0]) {
            return Err("values column must be sorted ascending");
        }
        Ok(ListColumns {
            ids,
            values,
            ordered,
            cf_ids,
            cf_prefix,
        })
    }
}

/// Per-source monthly columns, one field per source so lookup is infallible
/// by construction (mirrors `study::NormalizedSet`).
#[derive(Debug, Clone)]
pub(crate) struct ColumnsSet {
    pub alexa: ListColumns,
    pub umbrella: ListColumns,
    pub majestic: ListColumns,
    pub secrank: ListColumns,
    pub tranco: ListColumns,
    pub trexa: ListColumns,
    pub crux: ListColumns,
}

impl ColumnsSet {
    fn get(&self, source: ListSource) -> &ListColumns {
        match source {
            ListSource::Alexa => &self.alexa,
            ListSource::Umbrella => &self.umbrella,
            ListSource::Majestic => &self.majestic,
            ListSource::Secrank => &self.secrank,
            ListSource::Tranco => &self.tranco,
            ListSource::Trexa => &self.trexa,
            ListSource::Crux => &self.crux,
        }
    }
}

/// The study-wide interning index: domain table, site↔id mapping, CDN-served
/// flags, and every list (monthly and daily) in columnar form.
#[derive(Debug)]
pub struct StudyIndex {
    table: DomainTable,
    /// `site_ids[site.index()]` is the site's domain id. Sites are interned
    /// first, so this is the identity mapping (`site i ⇒ id i`) — kept
    /// explicit so nothing downstream has to rely on the invariant.
    site_ids: Vec<DomainId>,
    /// `is_cf[id.index()]`: is the domain served by the Cloudflare-style CDN
    /// (`World::is_cloudflare`, precomputed per id).
    is_cf: Vec<bool>,
    monthly: ColumnsSet,
    alexa_daily: Vec<ListColumns>,
    umbrella_daily: Vec<ListColumns>,
}

impl StudyIndex {
    pub(crate) fn new(
        table: DomainTable,
        site_ids: Vec<DomainId>,
        is_cf: Vec<bool>,
        monthly: ColumnsSet,
        alexa_daily: Vec<ListColumns>,
        umbrella_daily: Vec<ListColumns>,
    ) -> Self {
        debug_assert_eq!(table.len(), is_cf.len());
        StudyIndex {
            table,
            site_ids,
            is_cf,
            monthly,
            alexa_daily,
            umbrella_daily,
        }
    }

    /// Reassembles an index from snapshot-loaded columns. `monthly` is
    /// consulted once per [`ListSource`]; daily snapshots exist only for the
    /// two providers that publish them (everything else serves its monthly
    /// columns from [`Self::daily`]).
    pub fn from_columns(
        table: DomainTable,
        site_ids: Vec<DomainId>,
        is_cf: Vec<bool>,
        mut monthly: impl FnMut(ListSource) -> ListColumns,
        alexa_daily: Vec<ListColumns>,
        umbrella_daily: Vec<ListColumns>,
    ) -> Self {
        let monthly = ColumnsSet {
            alexa: monthly(ListSource::Alexa),
            umbrella: monthly(ListSource::Umbrella),
            majestic: monthly(ListSource::Majestic),
            secrank: monthly(ListSource::Secrank),
            tranco: monthly(ListSource::Tranco),
            trexa: monthly(ListSource::Trexa),
            crux: monthly(ListSource::Crux),
        };
        StudyIndex::new(table, site_ids, is_cf, monthly, alexa_daily, umbrella_daily)
    }

    /// The study's domain table (id ↔ name).
    pub fn table(&self) -> &DomainTable {
        &self.table
    }

    /// The site → domain-id column (snapshot export).
    pub fn site_ids(&self) -> &[DomainId] {
        &self.site_ids
    }

    /// The per-id Cloudflare-served flags, dense over the table (snapshot
    /// export).
    pub fn cf_flags(&self) -> &[bool] {
        &self.is_cf
    }

    /// Daily Alexa columns, one per study day (snapshot export).
    pub fn alexa_daily(&self) -> &[ListColumns] {
        &self.alexa_daily
    }

    /// Daily Umbrella columns, one per study day (snapshot export).
    pub fn umbrella_daily(&self) -> &[ListColumns] {
        &self.umbrella_daily
    }

    /// The interned id of a site's domain.
    pub fn site_id(&self, site: SiteId) -> DomainId {
        self.site_ids[site.index()]
    }

    /// Whether the domain behind `id` is Cloudflare-served.
    pub fn is_cf(&self, id: DomainId) -> bool {
        self.is_cf[id.index()]
    }

    /// The month-representative columns of a source.
    pub fn monthly(&self, source: ListSource) -> &ListColumns {
        self.monthly.get(source)
    }

    /// The day-`day` columns of a source: the daily snapshot for providers
    /// that publish daily (Alexa, Umbrella), the static month list for the
    /// rest — normalized once at study construction, never re-derived in
    /// analysis loops.
    pub fn daily(&self, source: ListSource, day: usize) -> &ListColumns {
        match source {
            ListSource::Alexa => &self.alexa_daily[day],
            ListSource::Umbrella => &self.umbrella_daily[day],
            _ => self.monthly.get(source),
        }
    }

    /// Ranked Cloudflare domain ids for a metric score vector (best first) —
    /// the id-space equivalent of `Study::cf_ranked_domains`, sharing its
    /// ordering via `topple_vantage::ranked_site_ids`.
    pub fn cf_ranked_ids(&self, scores: &ScoreVec) -> Vec<DomainId> {
        topple_vantage::ranked_site_ids(scores)
            .into_iter()
            .map(|site| self.site_id(site))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_lists::Normalizer;
    use topple_psl::PublicSuffixList;

    fn columns(names: &[&str], cf: &[bool]) -> (ListColumns, Vec<DomainId>) {
        let psl = PublicSuffixList::builtin();
        let mut norm = Normalizer::new(&psl);
        let list = topple_lists::RankedList::from_sorted_names(
            ListSource::Tranco,
            names.iter().map(|s| s.to_string()).collect(),
        );
        let nl = norm.ranked(&list);
        let ids = nl.ids.clone();
        let cols = ListColumns::from_normalized(&nl, |id| cf[id.index()]);
        (cols, ids)
    }

    #[test]
    fn cuts_are_prefix_views() {
        let (cols, ids) = columns(
            &["a.com", "b.com", "c.com", "d.com"],
            &[true, false, true, true],
        );
        assert_eq!(cols.top_ids(2), &ids[..2]);
        assert_eq!(cols.top_ids(100), &ids[..]);
        // CF subset of the top-2 keeps list order and only CF-served ids.
        let sub = cols.cf_subset_ids(2);
        let expect: Vec<DomainId> = ids
            .iter()
            .take(2)
            .copied()
            .filter(|id| [true, false, true, true][id.index()])
            .collect();
        assert_eq!(sub, &expect[..]);
        // Full cut: 3 of 4 entries are CF.
        assert_eq!(cols.cf_subset_ids(4).len(), 3);
    }

    #[test]
    fn bucketed_top_len_by_partition_point() {
        let psl = PublicSuffixList::builtin();
        let mut norm = Normalizer::new(&psl);
        let list = topple_lists::BucketedList {
            source: ListSource::Crux,
            entries: vec![
                topple_lists::BucketedEntry {
                    name: "a.com".into(),
                    bucket: 10,
                },
                topple_lists::BucketedEntry {
                    name: "b.com".into(),
                    bucket: 100,
                },
                topple_lists::BucketedEntry {
                    name: "c.com".into(),
                    bucket: 100,
                },
            ],
        };
        let nl = norm.bucketed(&list);
        let cols = ListColumns::from_normalized(&nl, |_| true);
        assert_eq!(cols.top_len(10), 1);
        assert_eq!(cols.top_len(99), 1);
        assert_eq!(cols.top_len(100), 3);
        assert!(!cols.ordered);
    }
}
