//! Table 3: odds of website inclusion by category (Section 6.4).
//!
//! For each top list, every domain in the Cloudflare top-`k` (by all HTTP
//! requests, single day) is labelled included/excluded, and a logistic
//! regression of inclusion on a one-hot category indicator yields the odds
//! ratio of that category versus all others. Results are Bonferroni-corrected
//! over the 22 categories and reported only when `p < 0.01` after correction
//! (missing entries in the paper's table).

use topple_lists::ListSource;
use topple_sim::Category;
use topple_stats::logit::{fit_with_intercept, LogitOptions};
use topple_vantage::{CfAgg, CfFilter, CfMetric};

use crate::error::CoreError;
use crate::study::Study;

/// Odds ratio of inclusion for one (list, category) pair.
#[derive(Debug, Clone, Copy)]
pub struct CategoryOdds {
    /// The category.
    pub category: Category,
    /// Odds ratio of inclusion vs all other categories.
    pub odds_ratio: f64,
    /// Raw Wald p-value.
    pub p_value: f64,
    /// Whether the effect survives `p < 0.01` with Bonferroni correction
    /// over the category count (entries failing this print as "–").
    pub significant: bool,
}

/// Table 3 column for one list.
#[derive(Debug, Clone)]
pub struct CategoryColumn {
    /// The list.
    pub source: ListSource,
    /// One row per category (in `Category::ALL` order).
    pub rows: Vec<CategoryOdds>,
}

/// Computes Table 3 at Cloudflare magnitude `k` (the paper uses the top
/// 100K, i.e. the second-largest scaled magnitude, on a single day).
pub fn table3(study: &Study, k: usize) -> Result<Vec<CategoryColumn>, CoreError> {
    // Cloudflare's reference set: top-k domains by day-one all-HTTP-requests.
    let day = study.cdn.first_day().ok_or(CoreError::EmptyWindow)?;
    let scores = day.metric(CfMetric {
        filter: CfFilter::AllRequests,
        agg: CfAgg::Raw,
    });
    let cf_top: Vec<usize> = topple_vantage::ranked_sites(scores)
        .into_iter()
        .take(k)
        .map(|(site, _)| site.index())
        .collect();

    let columns = ListSource::ALL
        .iter()
        .map(|&source| {
            // Dense membership flag per interned domain id — one pass over
            // the list's id column, then O(1) membership per CF-top site.
            let cols = study.index().monthly(source);
            let mut member = vec![false; study.index().table().len()];
            for id in &cols.ids {
                member[id.index()] = true;
            }
            // Outcome per CF-top domain: included in the list anywhere?
            let outcomes: Vec<f64> = cf_top
                .iter()
                .map(|&i| {
                    let id = study.index().site_id(topple_sim::SiteId(i as u32));
                    f64::from(u8::from(member[id.index()]))
                })
                .collect();
            let categories: Vec<Category> = cf_top
                .iter()
                .map(|&i| study.world.sites[i].category)
                .collect();
            let rows = Category::ALL
                .iter()
                .map(|&cat| one_category(&outcomes, &categories, cat))
                .collect();
            CategoryColumn { source, rows }
        })
        .collect();
    Ok(columns)
}

fn one_category(outcomes: &[f64], categories: &[Category], cat: Category) -> CategoryOdds {
    let predictor: Vec<f64> = categories
        .iter()
        .map(|&c| f64::from(u8::from(c == cat)))
        .collect();
    // Degenerate designs (category absent, or all outcomes one class within
    // reachable data) are reported as insignificant, like the paper's dashes.
    let has_both_pred = predictor.contains(&1.0) && predictor.contains(&0.0);
    if !has_both_pred {
        return CategoryOdds {
            category: cat,
            odds_ratio: f64::NAN,
            p_value: 1.0,
            significant: false,
        };
    }
    match fit_with_intercept(&[predictor], outcomes, LogitOptions::default()) {
        Ok(fit) => {
            let c = fit.coefficients[1];
            let corrected_threshold = 0.01 / Category::COUNT as f64;
            CategoryOdds {
                category: cat,
                odds_ratio: c.odds_ratio(),
                p_value: c.p_value,
                significant: c.p_value < corrected_threshold && !fit.separation_suspected,
            }
        }
        Err(_) => CategoryOdds {
            category: cat,
            odds_ratio: f64::NAN,
            p_value: 1.0,
            significant: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    fn study() -> Study {
        Study::run(WorldConfig::small(291)).unwrap()
    }

    #[test]
    fn all_lists_and_categories_present() {
        let s = study();
        let t = table3(&s, s.world.sites.len() / 10).unwrap();
        assert_eq!(t.len(), 7);
        for col in &t {
            assert_eq!(col.rows.len(), Category::COUNT);
        }
    }

    #[test]
    fn odds_ratios_are_positive_when_defined() {
        let s = study();
        let t = table3(&s, s.world.sites.len() / 10).unwrap();
        for col in &t {
            for row in &col.rows {
                if row.odds_ratio.is_finite() {
                    assert!(row.odds_ratio > 0.0);
                }
                assert!((0.0..=1.0).contains(&row.p_value));
            }
        }
    }

    #[test]
    fn grey_content_underrepresented_in_panel_list() {
        // Alexa's panel cannot see private-mode traffic: adult sites should
        // show odds ratios below 1 (or be absent) for Alexa, while CrUX
        // should include them at materially better odds.
        let s = study();
        let t = table3(&s, s.world.sites.len() / 10).unwrap();
        let get = |src: ListSource, cat: Category| -> f64 {
            t.iter()
                .find(|c| c.source == src)
                .unwrap()
                .rows
                .iter()
                .find(|r| r.category == cat)
                .unwrap()
                .odds_ratio
        };
        let alexa_adult = get(ListSource::Alexa, Category::Adult);
        let crux_adult = get(ListSource::Crux, Category::Adult);
        if alexa_adult.is_finite() && crux_adult.is_finite() {
            assert!(
                crux_adult > alexa_adult,
                "CrUX adult odds ({crux_adult:.2}) should exceed Alexa ({alexa_adult:.2})"
            );
        }
    }
}
