//! `topple-lint` CLI.
//!
//! ```text
//! cargo run -p topple-lint                       # text report on the workspace
//! cargo run -p topple-lint -- --format json      # machine-readable report
//! cargo run -p topple-lint -- --suggest          # include fix suggestions
//! cargo run -p topple-lint -- --list-rules       # rule catalogue
//! cargo run -p topple-lint -- epoch emit         # print the computed manifest
//! cargo run -p topple-lint -- epoch emit --write # regenerate determinism.epoch.toml
//! cargo run -p topple-lint -- epoch verify       # check sources against the manifest
//! ```
//!
//! Exit codes: 0 clean (warnings allowed), 1 deny-level findings or epoch
//! drift, 2 usage or configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use topple_lint::{
    config::Severity, epoch, lex_workspace, lint_workspace, load_config, report, rules,
};

struct Options {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    suggest: bool,
    list_rules: bool,
    epoch: Option<EpochAction>,
}

/// What `topple-lint epoch ...` was asked to do.
enum EpochAction {
    Emit { write: bool },
    Verify,
}

const USAGE: &str = "usage: topple-lint [--root DIR] [--config FILE] [--format text|json] \
    [--suggest] [--list-rules] [epoch emit [--write] | epoch verify]";

/// The workspace root: `--root`, else the manifest dir's grandparent when
/// cargo provides it (crates/lint -> root), else the current directory.
fn default_root() -> PathBuf {
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let md = PathBuf::from(md);
        if let Some(root) = md.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: default_root(),
        config: None,
        json: false,
        suggest: false,
        list_rules: false,
        epoch: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "epoch" => {
                // `--emit`/`--verify` flag spellings are accepted too.
                opts.epoch = Some(match args.next().as_deref() {
                    Some("emit" | "--emit") => EpochAction::Emit { write: false },
                    Some("verify" | "--verify") => EpochAction::Verify,
                    _ => return Err("epoch needs `emit` or `verify`".into()),
                });
            }
            "--write" => match &mut opts.epoch {
                Some(EpochAction::Emit { write }) => *write = true,
                _ => return Err("--write only applies to `epoch emit`".into()),
            },
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--config" => {
                opts.config = Some(PathBuf::from(args.next().ok_or("--config needs a value")?));
            }
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                _ => return Err("--format must be `text` or `json`".into()),
            },
            "--suggest" => opts.suggest = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("topple-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in rules::RULES {
            println!("{:<20} {:<6} {}", r.id, r.builtin.name(), r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(action) = &opts.epoch {
        return run_epoch(&opts.root, action);
    }

    let config = match load_config(&opts.root, opts.config.as_deref()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("topple-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&opts.root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("topple-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let rendered = if opts.json {
        report::to_json(&report, opts.suggest)
    } else {
        report::to_text(&report, opts.suggest)
    };
    print!("{rendered}");

    if report.findings.iter().any(|f| f.severity == Severity::Deny) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `topple-lint epoch emit|verify`: compute the determinism-epoch manifest
/// from the sources and print, write, or compare it.
fn run_epoch(root: &std::path::Path, action: &EpochAction) -> ExitCode {
    let files = match lex_workspace(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("topple-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let analysis = epoch::analyze(&files);
    if !analysis.roots_found {
        eprintln!(
            "topple-lint: no determinism roots found (expected World::simulate_day_into \
             and/or Study::run)"
        );
        return ExitCode::from(2);
    }
    if let Some(msg) = epoch::epoch_const_mismatch(&analysis) {
        eprintln!("topple-lint: {msg}");
        return ExitCode::FAILURE;
    }
    match action {
        EpochAction::Emit { write } => {
            for &e in &analysis.epochs {
                let computed = epoch::Manifest::from_analysis(&analysis, e);
                let name = epoch::manifest_file(&analysis.epochs, e);
                let rendered = computed.render();
                if *write {
                    let path = root.join(&name);
                    if let Err(err) = std::fs::write(&path, &rendered) {
                        eprintln!("topple-lint: {}: {err}", path.display());
                        return ExitCode::from(2);
                    }
                    println!(
                        "wrote {} ({} draw sites, epoch {})",
                        path.display(),
                        computed.sites.len(),
                        computed.epoch
                    );
                } else {
                    if analysis.epochs.len() > 1 {
                        println!("# ==== {name} ====");
                    }
                    print!("{rendered}");
                }
            }
            ExitCode::SUCCESS
        }
        EpochAction::Verify => {
            let mut drift_total = 0usize;
            for &e in &analysis.epochs {
                let computed = epoch::Manifest::from_analysis(&analysis, e);
                let name = epoch::manifest_file(&analysis.epochs, e);
                let pinned = match epoch::Manifest::load(root, &name) {
                    Ok(Some(m)) => m,
                    Ok(None) => {
                        eprintln!(
                            "topple-lint: {name} not found; generate it with \
                             `topple-lint epoch emit --write`"
                        );
                        return ExitCode::from(2);
                    }
                    Err(err) => {
                        eprintln!("topple-lint: {err}");
                        return ExitCode::from(2);
                    }
                };
                let drift = epoch::drift(&computed, &pinned, &name);
                if drift.is_empty() {
                    println!(
                        "epoch {} verified: {} draw sites match {name}",
                        pinned.epoch,
                        pinned.sites.len()
                    );
                } else {
                    for msg in &drift {
                        eprintln!("epoch-drift: {msg}");
                    }
                    drift_total += drift.len();
                }
            }
            match drift_total {
                0 => ExitCode::SUCCESS,
                drift_total => {
                    eprintln!(
                        "topple-lint: determinism contract drifted ({drift_total} differences); \
                         if the change is intentional bump DETERMINISM_EPOCH, re-run `topple-lint \
                         epoch emit --write`, and re-pin tests/determinism.rs"
                    );
                    ExitCode::FAILURE
                }
            }
        }
    }
}
