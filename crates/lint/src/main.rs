//! `topple-lint` CLI.
//!
//! ```text
//! cargo run -p topple-lint                       # text report on the workspace
//! cargo run -p topple-lint -- --format json      # machine-readable report
//! cargo run -p topple-lint -- --suggest          # include fix suggestions
//! cargo run -p topple-lint -- --list-rules       # rule catalogue
//! ```
//!
//! Exit codes: 0 clean (warnings allowed), 1 deny-level findings, 2 usage or
//! configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use topple_lint::{config::Severity, lint_workspace, load_config, report, rules};

struct Options {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    suggest: bool,
    list_rules: bool,
}

const USAGE: &str = "usage: topple-lint [--root DIR] [--config FILE] [--format text|json] \
    [--suggest] [--list-rules]";

/// The workspace root: `--root`, else the manifest dir's grandparent when
/// cargo provides it (crates/lint -> root), else the current directory.
fn default_root() -> PathBuf {
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let md = PathBuf::from(md);
        if let Some(root) = md.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: default_root(),
        config: None,
        json: false,
        suggest: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--config" => {
                opts.config = Some(PathBuf::from(args.next().ok_or("--config needs a value")?));
            }
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                _ => return Err("--format must be `text` or `json`".into()),
            },
            "--suggest" => opts.suggest = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("topple-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in rules::RULES {
            println!("{:<14} {:<6} {}", r.id, r.builtin.name(), r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let config = match load_config(&opts.root, opts.config.as_deref()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("topple-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&opts.root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("topple-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let rendered = if opts.json {
        report::to_json(&report, opts.suggest)
    } else {
        report::to_text(&report, opts.suggest)
    };
    print!("{rendered}");

    if report.findings.iter().any(|f| f.severity == Severity::Deny) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
