//! The determinism-epoch contract: RNG taint analysis over the call graph.
//!
//! Every byte-identity guarantee in this workspace reduces to one property:
//! the *sequence* of RNG draws issued under the result roots never changes
//! without a versioned epoch bump. This module computes that sequence
//! statically — it marks every function that binds a `SmallRng` (parameter
//! or `substream(..)` binding) or issues a draw, walks the call graph from
//! [`ROOTS`], and emits each reachable draw site with its ordered draw-kind
//! signature. The result is compared against the checked-in
//! `determinism.epoch*.toml` manifests: any divergence is `epoch-drift`, RNG
//! consumed outside the reachable set is `rng-leak`, and the same
//! function-body machinery powers the cross-statement
//! `unordered-iteration` check the per-line rules cannot express.
//!
//! # Multiple live epochs
//!
//! A workspace may keep several draw-sequence universes alive at once (a
//! frozen reference generator next to its restructured successor). Epoch
//! membership is declared by function-name suffix: `simulate_day_epoch1`
//! belongs to epoch 1 only, `simulate_day_epoch2` to epoch 2 only, and
//! unsuffixed functions to every epoch. Each epoch gets its own reachable
//! set — computed by cutting the *other* epochs' suffixed functions out of
//! the traversal — and its own manifest file (`determinism.epoch1.toml`,
//! `determinism.epoch2.toml`; the suffix-free `determinism.epoch.toml` name
//! is kept for single-epoch workspaces).

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::config::{Config, Severity};
use crate::graph::{self, CallSite};
use crate::symbols::{self, FnSym};
use crate::{rules, Finding, LexedFile, LintError};

/// File name of the manifest at the workspace root (single-epoch form).
pub const MANIFEST_FILE: &str = "determinism.epoch.toml";

/// The manifest file name for one epoch of a workspace declaring `epochs`:
/// the bare [`MANIFEST_FILE`] when only one epoch is live, else the
/// per-epoch `determinism.epoch{N}.toml`.
pub fn manifest_file(epochs: &[u32], epoch: u32) -> String {
    if epochs.len() <= 1 {
        MANIFEST_FILE.to_owned()
    } else {
        format!("determinism.epoch{epoch}.toml")
    }
}

/// The epoch a function name claims membership of via an `_epoch{N}` suffix
/// (`simulate_day_epoch2` → `Some(2)`); `None` for epoch-neutral names.
fn epoch_suffix(name: &str) -> Option<u32> {
    let (_, tail) = name.rsplit_once("_epoch")?;
    (!tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()))
        .then(|| tail.parse().ok())
        .flatten()
}

/// The result roots: every draw reachable from these is part of the epoch
/// contract. `(owner, name)` pairs matched against the symbol table.
pub const ROOTS: &[(&str, &str)] = &[("World", "simulate_day_into"), ("Study", "run")];

/// One draw issued by a function body: a call-site offset plus its kind
/// (`substream`, `uniform`, `range`, `normal`, `poisson`, `chance`, `alias`,
/// or the callee name for nested draw functions).
#[derive(Debug, Clone)]
pub struct Draw {
    /// Absolute byte offset of the call in the file's masked text.
    pub at: usize,
    /// Canonical draw-kind label.
    pub kind: String,
}

/// The full workspace analysis: symbols, per-function draws, reachability.
#[derive(Debug)]
pub struct EpochAnalysis {
    /// Every function item in the workspace.
    pub fns: Vec<FnSym>,
    /// `draws[f]` — f's draw sites in source order.
    pub draws: Vec<Vec<Draw>>,
    /// Indices of functions reachable from [`ROOTS`] under *any* epoch.
    pub reachable: BTreeSet<usize>,
    /// Live epochs declared by `_epoch{N}` function suffixes, sorted;
    /// `[epoch_const or 1]` when no suffixed functions exist.
    pub epochs: Vec<u32>,
    /// Per-epoch reachability: the [`ROOTS`] traversal with every *other*
    /// epoch's suffixed functions cut out.
    pub reachable_by_epoch: BTreeMap<u32, BTreeSet<usize>>,
    /// Whether at least one root function was found.
    pub roots_found: bool,
    /// Value of the `DETERMINISM_EPOCH` constant found in the sources.
    pub epoch_const: Option<u32>,
    /// Cross-statement unordered-iteration findings: (fn index, offset,
    /// message).
    pub unordered: Vec<(usize, usize, String)>,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The binding name declared before the `:` that `head` runs up to
/// (`"rng: &mut rand::rngs::"` → `rng`), skipping `::` path separators.
fn binding_before_colon(head: &str) -> Option<String> {
    let b = head.as_bytes();
    let mut k = b.len();
    while k > 0 {
        k -= 1;
        if b[k] == b':' {
            if k > 0 && b[k - 1] == b':' {
                k -= 1;
                continue;
            }
            if b.get(k + 1) == Some(&b':') {
                continue;
            }
            let name: String = head[..k]
                .trim_end()
                .chars()
                .rev()
                .take_while(|&c| is_ident(c))
                .collect();
            let name: String = name.chars().rev().collect();
            return (!name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit()))
                .then_some(name);
        }
    }
    None
}

/// The `let [mut] NAME` binding that opens the statement `upto` sits in.
fn let_binding_of_stmt(masked: &str, range_lo: usize, upto: usize) -> Option<String> {
    let stmt_start = masked[range_lo..upto]
        .rfind([';', '{', '}'])
        .map(|p| range_lo + p + 1)
        .unwrap_or(range_lo);
    let stmt = &masked[stmt_start..upto];
    let let_at = rules::word_occurrences(stmt, "let").last().copied()?;
    let mut rest = stmt[let_at + 3..].trim_start();
    if let Some(r) = rest.strip_prefix("mut ") {
        rest = r.trim_start();
    }
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    (!name.is_empty()).then_some(name)
}

/// Identifiers bound to a `SmallRng` inside one function: `&mut SmallRng`
/// parameters plus `let [mut] x = substream(..)` / `SmallRng::..` bindings.
fn rng_idents(masked: &str, f: &FnSym, sites: &[CallSite]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let sig = &masked[f.sig_span.0..f.sig_span.1];
    for at in rules::word_occurrences(sig, "SmallRng") {
        if let Some(name) = binding_before_colon(&sig[..at]) {
            out.insert(name);
        }
    }
    for c in sites {
        let creates_rng = c.name == "substream"
            || (c.name == "seed_from_u64" && c.qualifier.as_deref() == Some("SmallRng"));
        if !creates_rng {
            continue;
        }
        if let Some(name) = let_binding_of_stmt(masked, f.body_span.0, c.at) {
            out.insert(name);
        }
    }
    out
}

/// Classifies one call site as a draw, if it consumes or derives RNG.
fn classify(c: &CallSite, masked: &str, rngs: &BTreeSet<String>) -> Option<String> {
    if c.name == "substream" {
        return Some("substream".to_owned());
    }
    if c.name == "seed_from_u64" && c.qualifier.as_deref() == Some("SmallRng") {
        return Some("seed".to_owned());
    }
    if c.method {
        if let Some(r) = &c.receiver {
            if rngs.contains(r) {
                return Some(match c.name.as_str() {
                    "random" => "uniform".to_owned(),
                    "random_range" => "range".to_owned(),
                    "random_bool" | "random_ratio" => "chance".to_owned(),
                    "next_u64" | "next_u32" => "word".to_owned(),
                    other => other.to_owned(),
                });
            }
        }
    }
    // RNG passed onward as an argument (a borrow/move, not as the receiver
    // of a nested call — `f(rng.random())` passes a value, not the stream).
    // Only depth-0 occurrences count: in `cast(table.sample(&mut rng))` the
    // stream flows into `sample`, which is its own call site.
    let args = &masked[c.args.0..c.args.1];
    for r in rngs {
        for at in rules::word_occurrences(args, r) {
            let depth = args[..at].bytes().filter(|&b| b == b'(').count() as isize
                - args[..at].bytes().filter(|&b| b == b')').count() as isize;
            if depth != 0 {
                continue;
            }
            let next = args[at + r.len()..].trim_start().chars().next();
            if next != Some('.') {
                return Some(match c.name.as_str() {
                    "normal" | "take_normal" => "normal".to_owned(),
                    "log_normal" | "take_log_normal" => "log-normal".to_owned(),
                    "poisson" | "take_poisson" => "poisson".to_owned(),
                    "chance" | "take_chance" => "chance".to_owned(),
                    "sample" => "alias".to_owned(),
                    // Batched (epoch-2) block samplers draw from the same
                    // stream; canonicalize to the scalar kind vocabulary.
                    "take_word" => "word".to_owned(),
                    "take_f64" => "uniform".to_owned(),
                    "take_index" => "range".to_owned(),
                    other => other.to_owned(),
                });
            }
        }
    }
    None
}

/// Finds the `DETERMINISM_EPOCH` constant's value in the sources.
fn find_epoch_const(files: &[LexedFile]) -> Option<u32> {
    for f in files {
        for at in rules::word_occurrences(&f.model.masked, "DETERMINISM_EPOCH") {
            let window = &f.model.masked[at..(at + 64).min(f.model.masked.len())];
            let Some(eq) = window.find('=') else { continue };
            let digits: String = window[eq + 1..]
                .trim_start()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if let Ok(v) = digits.parse() {
                return Some(v);
            }
        }
    }
    None
}

/// Cross-statement check: a binding collected from hash-container iteration
/// that is later consumed without an intervening sort.
fn check_unordered(
    masked: &str,
    ranges: &[(usize, usize)],
    hash_names: &BTreeSet<String>,
    out: &mut Vec<(usize, String)>,
) {
    for &(lo, hi) in ranges {
        let text = &masked[lo..hi];
        for name in hash_names {
            for at in rules::word_occurrences(text, name) {
                let after = text[at + name.len()..].trim_start();
                if !rules::ITER_METHODS.iter().any(|m| after.starts_with(m)) {
                    continue;
                }
                let stmt_end_rel = match text[at..].find(';') {
                    Some(p) => at + p,
                    None => continue,
                };
                if !text[at..stmt_end_rel].contains(".collect") {
                    continue;
                }
                let Some(binding) = let_binding_of_stmt(masked, lo, lo + at) else {
                    continue;
                };
                let rest = &text[stmt_end_rel..];
                let mut sorted = false;
                let mut consumed = false;
                for use_at in rules::word_occurrences(rest, &binding) {
                    let tail = rest[use_at + binding.len()..].trim_start();
                    if tail.starts_with(".sort") {
                        sorted = true;
                        break;
                    }
                    if tail.starts_with(".len()")
                        || tail.starts_with(".is_empty()")
                        || tail.starts_with(".capacity()")
                    {
                        continue;
                    }
                    consumed = true;
                }
                if !sorted && consumed {
                    out.push((
                        lo + at,
                        format!(
                            "`{binding}` collects `{name}` in hash-iteration order and is \
                             consumed without sorting"
                        ),
                    ));
                }
            }
        }
    }
}

/// Runs the full workspace analysis: symbols → call graph → taint →
/// reachability → unordered-iteration.
pub fn analyze(files: &[LexedFile]) -> EpochAnalysis {
    let fns = symbols::scan(files);
    let g = graph::build(files, &fns);
    let mut draws = Vec::with_capacity(fns.len());
    let mut unordered = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        let masked = &files[f.file].model.masked;
        let rngs = rng_idents(masked, f, &g.sites[i]);
        let mut fn_draws = Vec::new();
        for c in &g.sites[i] {
            if let Some(kind) = classify(c, masked, &rngs) {
                fn_draws.push(Draw { at: c.at, kind });
            }
        }
        draws.push(fn_draws);
        if !f.is_test {
            let ranges = symbols::own_body_ranges(&fns, i);
            let hash_names = rules::hash_container_names(masked);
            let mut hits = Vec::new();
            check_unordered(masked, &ranges, &hash_names, &mut hits);
            unordered.extend(hits.into_iter().map(|(at, msg)| (i, at, msg)));
        }
    }
    let roots: Vec<usize> = fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.is_test
                && ROOTS
                    .iter()
                    .any(|(o, n)| f.owner.as_deref() == Some(*o) && f.name == *n)
        })
        .map(|(i, _)| i)
        .collect();
    let roots_found = !roots.is_empty();
    let epoch_const = find_epoch_const(files);
    // Live epochs: the `_epoch{N}` suffix set over non-test functions, or
    // the single declared/default epoch when nothing is suffixed.
    let mut suffixes: BTreeSet<u32> = fns
        .iter()
        .filter(|f| !f.is_test)
        .filter_map(|f| epoch_suffix(&f.name))
        .collect();
    if suffixes.is_empty() {
        suffixes.insert(epoch_const.unwrap_or(1));
    }
    let epochs: Vec<u32> = suffixes.into_iter().collect();
    let mut reachable_by_epoch = BTreeMap::new();
    for &e in &epochs {
        let excluded: BTreeSet<usize> = fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && epoch_suffix(&f.name).is_some_and(|s| s != e))
            .map(|(i, _)| i)
            .collect();
        reachable_by_epoch.insert(e, graph::reachable_excluding(&g, &roots, &excluded));
    }
    let reachable = reachable_by_epoch
        .values()
        .flat_map(|s| s.iter().copied())
        .collect();
    EpochAnalysis {
        fns,
        draws,
        reachable,
        epochs,
        reachable_by_epoch,
        roots_found,
        epoch_const,
        unordered,
    }
}

/// A contract-level inconsistency between the `DETERMINISM_EPOCH` constant
/// and the epochs the sources declare: the constant (the *default* epoch)
/// must be the newest live one.
pub fn epoch_const_mismatch(a: &EpochAnalysis) -> Option<String> {
    let newest = *a.epochs.last()?;
    let konst = a.epoch_const?;
    (konst != newest).then(|| {
        format!(
            "DETERMINISM_EPOCH is {konst} but the newest epoch-suffixed \
             generator declares epoch {newest}"
        )
    })
}

/// The versioned draw-site contract: an epoch number plus each reachable
/// draw site's ordered kind signature, keyed by qualified function name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Declared epoch version.
    pub epoch: u32,
    /// `fn qname → ordered draw kinds`.
    pub sites: BTreeMap<String, Vec<String>>,
}

impl Manifest {
    /// Builds the manifest the current sources imply for one epoch, over
    /// that epoch's reachable set (falling back to the any-epoch union for
    /// an epoch the sources do not declare, so drift against a stale pinned
    /// file still reports site-level differences).
    pub fn from_analysis(a: &EpochAnalysis, epoch: u32) -> Manifest {
        let reachable = a.reachable_by_epoch.get(&epoch).unwrap_or(&a.reachable);
        let mut sites = BTreeMap::new();
        for &i in reachable {
            let f = &a.fns[i];
            if f.is_test || a.draws[i].is_empty() {
                continue;
            }
            sites.insert(
                f.qname.clone(),
                a.draws[i].iter().map(|d| d.kind.clone()).collect(),
            );
        }
        Manifest { epoch, sites }
    }

    /// Renders the manifest in its checked-in TOML form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# Determinism-epoch contract (generated by `topple-lint epoch emit --write`).\n\
             #\n\
             # Every function below is reachable from the result roots\n\
             # (World::simulate_day_into, Study::run) and issues seeded RNG draws; the\n\
             # `draws` list is its static draw-site sequence in source order. Any change\n\
             # here alters the byte-identical output contract: bump DETERMINISM_EPOCH in\n\
             # crates/sim, regenerate this file, and re-pin the snapshot digest in\n\
             # tests/determinism.rs (see DESIGN.md §14 for the workflow).\n\n",
        );
        out.push_str(&format!("epoch = {}\n", self.epoch));
        for (qname, draws) in &self.sites {
            out.push_str("\n[[site]]\n");
            out.push_str(&format!("fn = \"{qname}\"\n"));
            let kinds: Vec<String> = draws.iter().map(|d| format!("\"{d}\"")).collect();
            out.push_str(&format!("draws = [{}]\n", kinds.join(", ")));
        }
        out
    }

    /// Parses the checked-in TOML subset form.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut epoch = None;
        let mut sites = BTreeMap::new();
        let mut current: Option<(String, Vec<String>)> = None;
        let mut pending_site = false;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[site]]" {
                if let Some(done) = current.take() {
                    sites.insert(done.0, done.1);
                }
                pending_site = true;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("{MANIFEST_FILE}:{line_no}: expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "epoch" => {
                    epoch = Some(
                        value
                            .parse::<u32>()
                            .map_err(|_| format!("{MANIFEST_FILE}:{line_no}: bad epoch"))?,
                    );
                }
                "fn" if pending_site => {
                    let name = value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("{MANIFEST_FILE}:{line_no}: fn must be quoted"))?;
                    current = Some((name.to_owned(), Vec::new()));
                }
                "draws" => {
                    let inner = value
                        .strip_prefix('[')
                        .and_then(|v| v.strip_suffix(']'))
                        .ok_or_else(|| {
                            format!("{MANIFEST_FILE}:{line_no}: draws must be a list")
                        })?;
                    let kinds: Vec<String> = inner
                        .split(',')
                        .map(|s| s.trim().trim_matches('"').to_owned())
                        .filter(|s| !s.is_empty())
                        .collect();
                    match &mut current {
                        Some((_, draws)) => *draws = kinds,
                        None => {
                            return Err(format!("{MANIFEST_FILE}:{line_no}: draws before fn"));
                        }
                    }
                }
                other => {
                    return Err(format!("{MANIFEST_FILE}:{line_no}: unknown key `{other}`"));
                }
            }
        }
        if let Some(done) = current.take() {
            sites.insert(done.0, done.1);
        }
        Ok(Manifest {
            epoch: epoch.ok_or_else(|| format!("{MANIFEST_FILE}: missing `epoch = N`"))?,
            sites,
        })
    }

    /// Loads the named manifest from the workspace root, if present.
    pub fn load(root: &Path, file: &str) -> Result<Option<Manifest>, LintError> {
        let path = root.join(file);
        if !path.is_file() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&path).map_err(|source| LintError::Io {
            path: path.clone(),
            source,
        })?;
        Manifest::parse(&text)
            .map(Some)
            .map_err(|message| LintError::Config(crate::config::ConfigError { line: 0, message }))
    }
}

/// Human-readable differences between the computed and pinned manifests.
/// Empty means the contract holds. `file` names the pinned manifest in
/// messages.
pub fn drift(computed: &Manifest, pinned: &Manifest, file: &str) -> Vec<String> {
    let mut out = Vec::new();
    if computed.epoch != pinned.epoch {
        out.push(format!(
            "sources imply epoch {} but {file} declares epoch {}",
            computed.epoch, pinned.epoch
        ));
    }
    for (qname, draws) in &pinned.sites {
        match computed.sites.get(qname) {
            None => out.push(format!(
                "draw site removed: `{qname}` (pinned [{}])",
                draws.join(", ")
            )),
            Some(now) if now != draws => out.push(format!(
                "draw sequence changed in `{qname}`: pinned [{}], computed [{}]",
                draws.join(", "),
                now.join(", ")
            )),
            Some(_) => {}
        }
    }
    for (qname, draws) in &computed.sites {
        if !pinned.sites.contains_key(qname) {
            out.push(format!(
                "draw site added: `{qname}` (computed [{}])",
                draws.join(", ")
            ));
        }
    }
    out
}

/// Appends the graph-rule findings (`rng-leak`, `epoch-drift`,
/// `unordered-iteration`) for an analyzed workspace. `pinned` carries every
/// checked-in manifest as `(file name, manifest)`; drift is computed per
/// manifest against its own epoch's reachable set.
pub fn graph_findings(
    files: &[LexedFile],
    analysis: &EpochAnalysis,
    pinned: &[(String, Manifest)],
    config: &Config,
    findings: &mut Vec<Finding>,
) {
    let push = |findings: &mut Vec<Finding>,
                rule: &'static str,
                krate: &str,
                file: &str,
                line: usize,
                column: usize,
                message: String,
                suggestion: &'static str,
                snippet: String| {
        let builtin = rules::rule_info(rule)
            .map(|r| r.builtin)
            .unwrap_or(Severity::Warn);
        let severity = config.severity(krate, rule, builtin);
        if severity == Severity::Allow {
            return;
        }
        findings.push(Finding {
            krate: krate.to_owned(),
            file: file.to_owned(),
            rule,
            severity,
            line,
            column,
            message,
            suggestion,
            snippet,
        });
    };

    // rng-leak: RNG bound or drawn in a function outside the reachable set.
    for (i, f) in analysis.fns.iter().enumerate() {
        if f.is_test || analysis.reachable.contains(&i) {
            continue;
        }
        let masked = &files[f.file].model.masked;
        let has_rng = !analysis.draws[i].is_empty()
            || !rng_idents(
                masked,
                f,
                &[], // signature-only: body bindings imply draws already
            )
            .is_empty();
        if !has_rng {
            continue;
        }
        let model = &files[f.file].model;
        if let Some(d) = model.allow_for("rng-leak", f.line) {
            d.used.set(true);
            continue;
        }
        push(
            findings,
            "rng-leak",
            &f.krate,
            &files[f.file].rel,
            f.line,
            model.column_of(model.line_starts[f.line - 1]),
            format!(
                "`{}` consumes seeded RNG but is not reachable from the determinism roots",
                f.qname
            ),
            rules::SUGGEST_RNG_LEAK,
            model.raw_line(f.line).trim().to_owned(),
        );
    }

    // epoch-drift: computed contract vs each pinned per-epoch manifest,
    // plus the constant-vs-declared-epochs consistency check.
    let mut drift_msgs: Vec<(String, String)> = Vec::new();
    if let Some(msg) = epoch_const_mismatch(analysis) {
        drift_msgs.push((manifest_file(&analysis.epochs, analysis.epochs[0]), msg));
    }
    for (manifest_name, pinned) in pinned {
        let computed = Manifest::from_analysis(analysis, pinned.epoch);
        for msg in drift(&computed, pinned, manifest_name) {
            drift_msgs.push((manifest_name.clone(), msg));
        }
    }
    for (manifest_name, msg) in drift_msgs {
        // Anchor changed/added sites at their function; removed sites
        // (and epoch mismatches) at the manifest itself.
        let site = analysis
            .fns
            .iter()
            .find(|f| msg.contains(&format!("`{}`", f.qname)));
        let (krate, file, line, snippet) = match site {
            Some(f) => (
                f.krate.clone(),
                files[f.file].rel.clone(),
                f.line,
                files[f.file].model.raw_line(f.line).trim().to_owned(),
            ),
            None => {
                let krate = msg
                    .split('`')
                    .nth(1)
                    .and_then(|q| q.split("::").next())
                    .unwrap_or("workspace")
                    .to_owned();
                (krate, manifest_name, 1, String::new())
            }
        };
        push(
            findings,
            "epoch-drift",
            &krate,
            &file,
            line,
            1,
            msg,
            rules::SUGGEST_EPOCH_DRIFT,
            snippet,
        );
    }

    // unordered-iteration: cross-statement collect-then-consume.
    for &(i, at, ref msg) in &analysis.unordered {
        let f = &analysis.fns[i];
        let model = &files[f.file].model;
        let line = model.line_of(at);
        if model.is_test_line(line) {
            continue;
        }
        if let Some(d) = model.allow_for("unordered-iteration", line) {
            d.used.set(true);
            continue;
        }
        push(
            findings,
            "unordered-iteration",
            &f.krate,
            &files[f.file].rel,
            line,
            model.column_of(at),
            msg.clone(),
            rules::SUGGEST_UNORDERED,
            model.raw_line(line).trim().to_owned(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceModel;

    fn lex(src: &str) -> Vec<LexedFile> {
        vec![LexedFile {
            krate: "topple-sim".into(),
            rel: "crates/sim/src/lib.rs".into(),
            model: SourceModel::parse(src),
        }]
    }

    const SIM: &str = "\
pub const DETERMINISM_EPOCH: u32 = 3;
pub fn substream(seed: u64) -> SmallRng { SmallRng::seed_from_u64(seed) }
pub fn chance(rng: &mut SmallRng, p: f64) -> bool { rng.random::<f64>() < p }
struct World;
impl World {
    pub fn simulate_day_into(&self, seed: u64) {
        let mut rng = substream(seed);
        if chance(&mut rng, 0.5) { let _ = rng.random_range(0..4); }
    }
}
struct Study;
impl Study {
    pub fn run(w: &World) { w.simulate_day_into(7); }
}
fn stray(rng: &mut SmallRng) -> f64 { rng.random() }
";

    #[test]
    fn taint_reaches_through_the_graph() {
        let files = lex(SIM);
        let a = analyze(&files);
        assert!(a.roots_found);
        assert_eq!(a.epoch_const, Some(3));
        assert_eq!(a.epochs, [3], "no suffixed fns → the declared epoch");
        let m = Manifest::from_analysis(&a, 3);
        assert_eq!(m.epoch, 3);
        let names: Vec<&str> = m.sites.keys().map(String::as_str).collect();
        assert_eq!(
            names,
            [
                "topple-sim::lib::World::simulate_day_into",
                "topple-sim::lib::chance",
                "topple-sim::lib::substream",
            ],
            "{m:#?}"
        );
        assert_eq!(
            m.sites["topple-sim::lib::World::simulate_day_into"],
            ["substream", "chance", "range"]
        );
        assert_eq!(m.sites["topple-sim::lib::chance"], ["uniform"]);
        assert_eq!(m.sites["topple-sim::lib::substream"], ["seed"]);
        // `stray` consumes RNG but is unreachable.
        let stray = a
            .fns
            .iter()
            .position(|f| f.name == "stray")
            .expect("stray present");
        assert!(!a.reachable.contains(&stray));
        assert!(!a.draws[stray].is_empty());
    }

    #[test]
    fn manifest_round_trips_and_diffs() {
        let files = lex(SIM);
        let computed = Manifest::from_analysis(&analyze(&files), 3);
        let parsed = Manifest::parse(&computed.render()).expect("round trip");
        assert_eq!(parsed, computed);
        assert!(drift(&computed, &parsed, MANIFEST_FILE).is_empty());

        let mut pinned = computed.clone();
        pinned
            .sites
            .insert("topple-sim::lib::gone".into(), vec!["uniform".into()]);
        pinned
            .sites
            .get_mut("topple-sim::lib::chance")
            .map(|d| d.push("uniform".into()));
        pinned.sites.remove("topple-sim::lib::substream");
        pinned.epoch = 2;
        let msgs = drift(&computed, &pinned, MANIFEST_FILE);
        assert_eq!(msgs.len(), 4, "{msgs:#?}");
        assert!(msgs.iter().any(|m| m.contains("declares epoch 2")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("removed: `topple-sim::lib::gone`")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("changed in `topple-sim::lib::chance`")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("added: `topple-sim::lib::substream`")));
    }

    #[test]
    fn value_passing_calls_are_not_draws() {
        // `nav_host(mobile, rng.random())` passes a value, not the stream:
        // the inner `.random()` is the draw, the outer call is not.
        let src = "\
struct World;
impl World {
    pub fn simulate_day_into(&self, rng: &mut SmallRng) {
        let h = nav_host(true, rng.random());
        let i = widen(pick(rng));
    }
}
struct Study;
impl Study { pub fn run() {} }
fn nav_host(mobile: bool, coin: f64) -> u8 { 0 }
fn pick(rng: &mut SmallRng) -> u32 { rng.random() }
fn widen(x: u32) -> usize { x as usize }
";
        let files = lex(src);
        let m = Manifest::from_analysis(&analyze(&files), 1);
        assert_eq!(
            m.sites["topple-sim::lib::World::simulate_day_into"],
            ["uniform", "pick"],
            "{m:#?}"
        );
        assert!(!m.sites.contains_key("topple-sim::lib::nav_host"));
        // `widen` receives a drawn value, never the stream.
        assert!(!m.sites.contains_key("topple-sim::lib::widen"));
    }

    #[test]
    fn suffixed_variants_split_the_contract_per_epoch() {
        // A dispatcher root fanning out to per-epoch generator variants:
        // each epoch's manifest must contain only its own variant (plus the
        // shared helpers), and the batched draw names canonicalize.
        let src = "\
pub const DETERMINISM_EPOCH: u32 = 2;
struct World;
impl World {
    pub fn simulate_day_into(&self, seed: u64) {
        self.simulate_day_epoch1(seed);
        self.simulate_day_epoch2(seed);
    }
    fn simulate_day_epoch1(&self, seed: u64) {
        let mut rng = substream(seed);
        let _ = rng.random::<f64>();
    }
    fn simulate_day_epoch2(&self, seed: u64) {
        let mut rng = substream(seed);
        let _ = block.take_poisson(&mut rng, 2.0);
        let _ = block.take_index(&mut rng, 4);
    }
}
struct Study;
impl Study { pub fn run(w: &World) { w.simulate_day_into(7); } }
pub fn substream(seed: u64) -> SmallRng { SmallRng::seed_from_u64(seed) }
";
        let files = lex(src);
        let a = analyze(&files);
        assert_eq!(a.epochs, [1, 2]);
        assert!(epoch_const_mismatch(&a).is_none());
        assert_eq!(manifest_file(&a.epochs, 1), "determinism.epoch1.toml");

        let m1 = Manifest::from_analysis(&a, 1);
        let m2 = Manifest::from_analysis(&a, 2);
        assert!(m1
            .sites
            .contains_key("topple-sim::lib::World::simulate_day_epoch1"));
        assert!(!m1
            .sites
            .contains_key("topple-sim::lib::World::simulate_day_epoch2"));
        assert!(!m2
            .sites
            .contains_key("topple-sim::lib::World::simulate_day_epoch1"));
        assert_eq!(
            m2.sites["topple-sim::lib::World::simulate_day_epoch2"],
            ["substream", "poisson", "range"],
            "{m2:#?}"
        );
        // Shared helper appears in both epochs' contracts.
        assert!(m1.sites.contains_key("topple-sim::lib::substream"));
        assert!(m2.sites.contains_key("topple-sim::lib::substream"));
    }

    #[test]
    fn epoch_const_must_match_the_newest_variant() {
        let src = "\
pub const DETERMINISM_EPOCH: u32 = 1;
struct World;
impl World {
    pub fn simulate_day_into(&self, rng: &mut SmallRng) { self.simulate_day_epoch2(rng); }
    fn simulate_day_epoch2(&self, rng: &mut SmallRng) { let _ = rng.random::<f64>(); }
}
struct Study;
impl Study { pub fn run() {} }
";
        let files = lex(src);
        let a = analyze(&files);
        let msg = epoch_const_mismatch(&a).expect("constant lags the sources");
        assert!(msg.contains("DETERMINISM_EPOCH is 1"), "{msg}");
        assert!(msg.contains("epoch 2"), "{msg}");
    }

    #[test]
    fn unordered_iteration_flags_unsorted_consumption() {
        let src = "\
fn bad(m: &HashMap<u32, u32>) -> u32 {
    let mut v: Vec<u32> = m.keys().copied().collect();
    v.first().copied().unwrap_or(0)
}
fn good(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut v: Vec<u32> = m.keys().copied().collect();
    v.sort();
    v
}
";
        let files = lex(src);
        let a = analyze(&files);
        assert_eq!(a.unordered.len(), 1, "{:#?}", a.unordered);
        let (i, _, msg) = &a.unordered[0];
        assert_eq!(a.fns[*i].name, "bad");
        assert!(msg.contains("without sorting"), "{msg}");
    }
}
