//! Report rendering: machine-readable JSON and human-readable text.
//!
//! The JSON emitter is hand-rolled (the linter builds with zero
//! dependencies); the schema is versioned so CI consumers can pin it.

use std::fmt::Write as _;

use crate::{Finding, Report};

/// Escapes a string for a JSON double-quoted literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_finding(f: &Finding, suggest: bool) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"crate\": \"{}\", \"file\": \"{}\", \"line\": {}, \"column\": {}, \
         \"rule\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"",
        json_escape(&f.krate),
        json_escape(&f.file),
        f.line,
        f.column,
        json_escape(f.rule),
        f.severity.name(),
        json_escape(&f.message),
    );
    if suggest {
        let _ = write!(s, ", \"suggestion\": \"{}\"", json_escape(f.suggestion));
    }
    s.push('}');
    s
}

/// Renders the whole report as a JSON document (trailing newline included).
pub fn to_json(report: &Report, suggest: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": 1,");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(
        out,
        "  \"summary\": {{\"deny\": {}, \"warn\": {}}},",
        report.deny_count(),
        report.warn_count()
    );
    let body: Vec<String> = report
        .findings
        .iter()
        .map(|f| json_finding(f, suggest))
        .collect();
    if body.is_empty() {
        out.push_str("  \"findings\": []\n}\n");
    } else {
        out.push_str("  \"findings\": [\n");
        out.push_str(&body.join(",\n"));
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Renders the report in compiler-style text.
pub fn to_text(report: &Report, suggest: bool) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: {}[{}] {}",
            f.file,
            f.line,
            f.column,
            f.severity.name(),
            f.rule,
            f.message
        );
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "    | {}", f.snippet.trim());
        }
        if suggest {
            let _ = writeln!(out, "    = fix: {}", f.suggestion);
        }
    }
    let _ = writeln!(
        out,
        "topple-lint: {} file(s) scanned, {} deny, {} warn",
        report.files_scanned,
        report.deny_count(),
        report.warn_count()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Severity;

    fn sample() -> Report {
        Report {
            files_scanned: 2,
            findings: vec![Finding {
                krate: "topple-core".into(),
                file: "crates/core/src/study.rs".into(),
                rule: "unwrap",
                severity: Severity::Deny,
                line: 10,
                column: 7,
                message: "`.unwrap()` panics \"on\" the error path".into(),
                suggestion: "use ?",
                snippet: "x.unwrap();".into(),
            }],
        }
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let j = to_json(&sample(), true);
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("\\\"on\\\""));
        assert!(j.contains("\"deny\": 1"));
        assert!(j.contains("\"suggestion\": \"use ?\""));
        // Balanced braces/brackets (cheap structural check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn text_has_compiler_style_locations() {
        let t = to_text(&sample(), false);
        assert!(t.contains("crates/core/src/study.rs:10:7: deny[unwrap]"));
        assert!(!t.contains("fix:"));
        assert!(to_text(&sample(), true).contains("fix: use ?"));
    }

    #[test]
    fn empty_report_is_valid_json() {
        let r = Report {
            files_scanned: 0,
            findings: vec![],
        };
        let j = to_json(&r, false);
        assert!(j.contains("\"findings\": []"));
    }
}
