//! `topple-lint`: workspace-specific static analysis.
//!
//! The reproduction's claims rest on two properties ordinary tests cannot
//! guarantee exhaustively: every pipeline run with the same seed must produce
//! byte-identical lists (determinism), and library crates must fail with
//! typed errors rather than panics (a panic mid-study loses the run). This
//! crate walks every workspace source file and enforces those properties
//! statically; see `rules` for the rule set and `lexer` for why the analysis
//! is token-textual rather than AST-based.

pub mod config;
pub mod epoch;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod symbols;

use std::fmt;
use std::path::{Path, PathBuf};

use config::{Config, Severity};
use lexer::SourceModel;

/// One resolved finding: a rule violation with its effective severity.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Package name the file belongs to (e.g. `topple-core`).
    pub krate: String,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// Rule id.
    pub rule: &'static str,
    /// Effective severity after config resolution (never `Allow`).
    pub severity: Severity,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub suggestion: &'static str,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// A whole-workspace lint run.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
    /// All findings, ordered by (file, line, column).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings at deny severity.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Findings at warn severity.
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }
}

/// Anything that stops a lint run before a report exists.
#[derive(Debug)]
pub enum LintError {
    /// A file or directory could not be read.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// `lint.toml` is malformed.
    Config(config::ConfigError),
    /// The root does not look like the workspace.
    BadRoot(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            LintError::Config(e) => write!(f, "{e}"),
            LintError::BadRoot(p) => {
                write!(
                    f,
                    "{}: not a workspace root (no Cargo.toml with [workspace])",
                    p.display()
                )
            }
        }
    }
}

impl std::error::Error for LintError {}

impl From<config::ConfigError> for LintError {
    fn from(e: config::ConfigError) -> Self {
        LintError::Config(e)
    }
}

fn read(path: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(path).map_err(|source| LintError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// One lexed workspace source file: the unit the symbol/call-graph pass
/// works over (lexical rules see one file at a time; the epoch analysis
/// needs all of them at once).
pub struct LexedFile {
    /// Package name the file belongs to.
    pub krate: String,
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Masked + raw source with line tables.
    pub model: SourceModel,
}

/// A crate to lint: its package name and the source files under it.
struct CrateFiles {
    name: String,
    files: Vec<PathBuf>,
}

/// Pulls `name = "..."` out of a crate manifest's `[package]` table.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(v) = line.strip_prefix("name") {
                let v = v.trim_start().strip_prefix('=')?.trim();
                return Some(v.trim_matches('"').to_owned());
            }
        }
    }
    None
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for e in entries {
        let e = e.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        paths.push(e.path());
    }
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rs_files(&p, out)?;
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
    Ok(())
}

/// Finds every workspace crate's lintable sources: `src/` of each member
/// under `crates/`, plus the facade package's own `src/` if present. The
/// `vendor/` stand-ins, `tests/`, `benches/` and `examples/` are exempt —
/// the invariants apply to library and binary code, not to test harnesses.
fn workspace_crates(root: &Path) -> Result<Vec<CrateFiles>, LintError> {
    let root_manifest = read(&root.join("Cargo.toml"))?;
    if !root_manifest.contains("[workspace]") {
        return Err(LintError::BadRoot(root.to_path_buf()));
    }
    let mut crates = Vec::new();
    if let Some(name) = package_name(&root_manifest) {
        let src = root.join("src");
        if src.is_dir() {
            let mut files = Vec::new();
            rs_files(&src, &mut files)?;
            crates.push(CrateFiles { name, files });
        }
    }
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|source| LintError::Io {
            path: crates_dir.clone(),
            source,
        })?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        let manifest_path = member.join("Cargo.toml");
        if !manifest_path.is_file() {
            continue;
        }
        let Some(name) = package_name(&read(&manifest_path)?) else {
            continue;
        };
        let src = member.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&src, &mut files)?;
        crates.push(CrateFiles { name, files });
    }
    Ok(crates)
}

/// Resolves raw violations against the config and appends surviving ones.
fn resolve(
    model: &SourceModel,
    krate: &str,
    file: &str,
    config: &Config,
    raws: Vec<rules::RawViolation>,
    findings: &mut Vec<Finding>,
) {
    for v in raws {
        let builtin = rules::rule_info(v.rule)
            .map(|r| r.builtin)
            .unwrap_or(Severity::Warn);
        let severity = config.severity(krate, v.rule, builtin);
        if severity == Severity::Allow {
            continue;
        }
        findings.push(Finding {
            krate: krate.to_owned(),
            file: file.to_owned(),
            rule: v.rule,
            severity,
            line: v.line,
            column: v.column,
            message: v.message,
            suggestion: v.suggestion,
            snippet: model.raw_line(v.line).trim().to_owned(),
        });
    }
}

/// Lints one already-lexed file, resolving severities against the config.
fn lint_model(
    model: &SourceModel,
    krate: &str,
    file: &str,
    config: &Config,
    findings: &mut Vec<Finding>,
) {
    resolve(
        model,
        krate,
        file,
        config,
        rules::check_file(model),
        findings,
    );
}

/// Lints a single file path (used by tests and `--file`).
pub fn lint_file(path: &Path, krate: &str, config: &Config) -> Result<Vec<Finding>, LintError> {
    let text = read(path)?;
    let model = SourceModel::parse(&text);
    let mut findings = Vec::new();
    lint_model(
        &model,
        krate,
        &path.display().to_string().replace('\\', "/"),
        config,
        &mut findings,
    );
    Ok(findings)
}

/// Lexes every workspace source file once, for both the per-file lexical
/// rules and the cross-file symbol/call-graph pass.
pub fn lex_workspace(root: &Path) -> Result<Vec<LexedFile>, LintError> {
    let mut out = Vec::new();
    for krate in workspace_crates(root)? {
        for path in &krate.files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .display()
                .to_string()
                .replace('\\', "/");
            let text = read(path)?;
            out.push(LexedFile {
                krate: krate.name.clone(),
                rel,
                model: SourceModel::parse(&text),
            });
        }
    }
    Ok(out)
}

/// Lints the whole workspace rooted at `root`: per-file lexical rules, then
/// the call-graph pass (`rng-leak`, `unordered-iteration`, and — when
/// `determinism.epoch*.toml` manifests are checked in — `epoch-drift`).
pub fn lint_workspace(root: &Path, config: &Config) -> Result<Report, LintError> {
    let files = lex_workspace(root)?;
    let mut findings = Vec::new();
    for f in &files {
        resolve(
            &f.model,
            &f.krate,
            &f.rel,
            config,
            rules::check_lexical(&f.model),
            &mut findings,
        );
    }
    let analysis = epoch::analyze(&files);
    let mut pinned = Vec::new();
    for &e in &analysis.epochs {
        let name = epoch::manifest_file(&analysis.epochs, e);
        if let Some(m) = epoch::Manifest::load(root, &name)? {
            pinned.push((name, m));
        }
    }
    epoch::graph_findings(&files, &analysis, &pinned, config, &mut findings);
    // Directive audit last: the graph pass above may have consumed
    // `rng-leak` / `unordered-iteration` allows.
    for f in &files {
        resolve(
            &f.model,
            &f.krate,
            &f.rel,
            config,
            rules::check_directives_pass(&f.model),
            &mut findings,
        );
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.rule).cmp(&(&b.file, b.line, b.column, b.rule))
    });
    Ok(Report {
        files_scanned: files.len(),
        findings,
    })
}

/// Loads `lint.toml` from the root, or the built-in defaults if absent.
pub fn load_config(root: &Path, explicit: Option<&Path>) -> Result<Config, LintError> {
    let path = match explicit {
        Some(p) => p.to_path_buf(),
        None => {
            let p = root.join("lint.toml");
            if !p.is_file() {
                return Ok(Config::default());
            }
            p
        }
    };
    Ok(Config::parse(&read(&path)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_manifest() {
        let m =
            "[workspace]\nmembers = []\n\n[package]\nname = \"topple-core\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(m).as_deref(), Some("topple-core"));
        assert_eq!(package_name("[workspace]\n"), None);
    }

    #[test]
    fn severity_resolution_drops_allowed() {
        let cfg = Config::parse("[default]\nunwrap = \"allow\"\n").expect("parses");
        let model = SourceModel::parse("fn f() { x.unwrap(); }");
        let mut out = Vec::new();
        lint_model(&model, "topple-core", "f.rs", &cfg, &mut out);
        assert!(out.is_empty());
        let cfg = Config::parse("[default]\nunwrap = \"deny\"\n").expect("parses");
        lint_model(&model, "topple-core", "f.rs", &cfg, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Deny);
        assert_eq!(out[0].snippet, "fn f() { x.unwrap(); }");
    }
}
