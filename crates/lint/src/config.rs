//! `lint.toml` parsing: per-crate rule severities.
//!
//! The config format is a small TOML subset (tables, string values,
//! comments) parsed by hand — the linter itself must build offline with zero
//! dependencies:
//!
//! ```toml
//! [default]
//! unwrap = "deny"
//! indexing = "warn"
//!
//! [crate.topple-stats]
//! float-eq = "deny"
//! indexing = "allow"
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// How seriously a rule violation is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Not reported at all.
    Allow,
    /// Reported, does not fail the run.
    Warn,
    /// Reported and fails the run.
    Deny,
}

impl Severity {
    fn parse(s: &str) -> Option<Severity> {
        match s {
            "allow" => Some(Severity::Allow),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }

    /// Lowercase name, as written in config and reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A malformed configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in `lint.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Parsed configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Fallback severities by rule id.
    pub default: BTreeMap<String, Severity>,
    /// Per-crate overrides: crate name → rule id → severity.
    pub per_crate: BTreeMap<String, BTreeMap<String, Severity>>,
}

impl Config {
    /// The effective severity of `rule` inside `krate`, falling back to the
    /// `[default]` table and then to the rule's built-in default.
    pub fn severity(&self, krate: &str, rule: &str, builtin: Severity) -> Severity {
        if let Some(s) = self.per_crate.get(krate).and_then(|t| t.get(rule)) {
            return *s;
        }
        if let Some(s) = self.default.get(rule) {
            return *s;
        }
        builtin
    }

    /// Parses the `lint.toml` text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut section: Option<String> = None;
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = match raw_line.find('#') {
                Some(p) => &raw_line[..p],
                None => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                if name != "default" && !name.starts_with("crate.") {
                    return Err(ConfigError {
                        line: line_no,
                        message: format!(
                            "unknown section `[{name}]` (expected `[default]` or `[crate.<name>]`)"
                        ),
                    });
                }
                section = Some(name.to_owned());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("expected `key = \"value\"`, got `{line}`"),
                });
            };
            let key = key.trim().to_owned();
            let value = value.trim();
            let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("value for `{key}` must be a quoted string"),
                });
            };
            let Some(sev) = Severity::parse(value) else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!(
                        "unknown severity `{value}` for `{key}` (expected allow|warn|deny)"
                    ),
                });
            };
            match section.as_deref() {
                Some("default") => {
                    config.default.insert(key, sev);
                }
                Some(s) => {
                    let krate = s.trim_start_matches("crate.").to_owned();
                    config.per_crate.entry(krate).or_default().insert(key, sev);
                }
                None => {
                    return Err(ConfigError {
                        line: line_no,
                        message: "key outside any section".to_owned(),
                    });
                }
            }
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_overrides() {
        let c = Config::parse(
            "# comment\n[default]\nunwrap = \"deny\" # trailing\n\n[crate.topple-stats]\nunwrap = \"warn\"\n",
        )
        .expect("parses");
        assert_eq!(
            c.severity("topple-core", "unwrap", Severity::Allow),
            Severity::Deny
        );
        assert_eq!(
            c.severity("topple-stats", "unwrap", Severity::Allow),
            Severity::Warn
        );
        assert_eq!(
            c.severity("topple-core", "other", Severity::Warn),
            Severity::Warn
        );
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(Config::parse("[weird]\n").is_err());
        assert!(Config::parse("[default]\nunwrap deny\n").is_err());
        assert!(Config::parse("[default]\nunwrap = deny\n").is_err());
        assert!(Config::parse("[default]\nunwrap = \"fatal\"\n").is_err());
        assert!(Config::parse("orphan = \"deny\"\n").is_err());
    }
}
