//! A lightweight source model for Rust files.
//!
//! The environment builds fully offline, so `topple-lint` cannot use `syn`;
//! instead it lexes each file just far enough for its rules: comment and
//! string contents are masked out (so tokens inside them are never matched),
//! `#[cfg(test)]` module regions are identified by brace matching (so
//! test-only code is exempt from library rules), and `topple-lint:` control
//! comments are collected with their line numbers.

/// One `// topple-lint: allow(rule): justification` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The rule identifier inside `allow(..)`.
    pub rule: String,
    /// The justification after the second colon (may be empty — that itself
    /// is a violation).
    pub justification: String,
    /// Whether a rule consumed this directive.
    pub used: std::cell::Cell<bool>,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceModel {
    /// Code with comment and string interiors replaced by spaces; newlines
    /// preserved, so offsets and line numbers match the original.
    pub masked: String,
    /// Raw text (for rendering diagnostics).
    pub raw: String,
    /// Byte offset of each line start in `masked`/`raw`.
    pub line_starts: Vec<usize>,
    /// For each line (1-based index into `line_starts`), whether it lies
    /// inside a `#[cfg(test)]` region.
    pub in_test_region: Vec<bool>,
    /// For each line, whether it lies inside a
    /// `// topple-lint: hot-path-begin` … `hot-path-end` region — a stretch
    /// of per-event code where the `hot-alloc` rule denies heap allocation.
    pub in_hot_path: Vec<bool>,
    /// All `topple-lint:` control comments.
    pub allows: Vec<AllowDirective>,
}

impl SourceModel {
    /// Lexes a file.
    pub fn parse(raw: &str) -> SourceModel {
        let mut masked = String::with_capacity(raw.len());
        let mut comments: Vec<(usize, String)> = Vec::new();

        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        let mut line = 1usize;
        let n = bytes.len();

        while i < n {
            let c = bytes[i];
            match c {
                '/' if i + 1 < n && bytes[i + 1] == '/' => {
                    // Line comment: capture text, mask it out.
                    let start = i;
                    while i < n && bytes[i] != '\n' {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    comments.push((line, text));
                    for &m in &bytes[start..i] {
                        Self::mask_char(&mut masked, m);
                    }
                }
                '/' if i + 1 < n && bytes[i + 1] == '*' => {
                    // Block comment, possibly nested.
                    let mut depth = 1usize;
                    masked.push_str("  ");
                    i += 2;
                    while i < n && depth > 0 {
                        if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                            depth += 1;
                            masked.push_str("  ");
                            i += 2;
                        } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                            depth -= 1;
                            masked.push_str("  ");
                            i += 2;
                        } else {
                            if bytes[i] == '\n' {
                                masked.push('\n');
                                line += 1;
                            } else {
                                Self::mask_char(&mut masked, bytes[i]);
                            }
                            i += 1;
                        }
                    }
                }
                '"' => {
                    // String literal (the `r`/`b` prefix case is handled below).
                    masked.push('"');
                    i += 1;
                    while i < n {
                        match bytes[i] {
                            '\\' if i + 1 < n => {
                                masked.push(' ');
                                if bytes[i + 1] == '\n' {
                                    masked.push('\n');
                                    line += 1;
                                } else {
                                    Self::mask_char(&mut masked, bytes[i + 1]);
                                }
                                i += 2;
                            }
                            '"' => {
                                masked.push('"');
                                i += 1;
                                break;
                            }
                            '\n' => {
                                masked.push('\n');
                                line += 1;
                                i += 1;
                            }
                            _ => {
                                Self::mask_char(&mut masked, bytes[i]);
                                i += 1;
                            }
                        }
                    }
                }
                'r' | 'b' if Self::is_raw_string_start(&bytes, i) => {
                    // Raw string r"..", r#".."#, br#".."# etc.
                    let start = i;
                    while i < n && (bytes[i] == 'r' || bytes[i] == 'b') {
                        i += 1;
                    }
                    let mut hashes = 0usize;
                    while i < n && bytes[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    // Opening quote.
                    i += 1;
                    masked.extend(std::iter::repeat_n(' ', i - start));
                    'raw: while i < n {
                        if bytes[i] == '"' {
                            let mut j = i + 1;
                            let mut seen = 0usize;
                            while j < n && bytes[j] == '#' && seen < hashes {
                                seen += 1;
                                j += 1;
                            }
                            if seen == hashes {
                                masked.extend(std::iter::repeat_n(' ', j - i));
                                i = j;
                                break 'raw;
                            }
                        }
                        if bytes[i] == '\n' {
                            masked.push('\n');
                            line += 1;
                        } else {
                            Self::mask_char(&mut masked, bytes[i]);
                        }
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal or lifetime. A lifetime is `'` + ident with
                    // no closing quote right after.
                    if i + 2 < n && bytes[i + 1] == '\\' {
                        // Escaped char literal '\n', '\u{..}' etc.
                        masked.push('\'');
                        i += 1;
                        while i < n && bytes[i] != '\'' {
                            Self::mask_char(&mut masked, bytes[i]);
                            i += 1;
                        }
                        if i < n {
                            masked.push('\'');
                            i += 1;
                        }
                    } else if i + 2 < n && bytes[i + 2] == '\'' {
                        // Plain char literal 'x'.
                        masked.push('\'');
                        Self::mask_char(&mut masked, bytes[i + 1]);
                        masked.push('\'');
                        i += 3;
                    } else {
                        // Lifetime: copy through.
                        masked.push('\'');
                        i += 1;
                    }
                }
                '\n' => {
                    masked.push('\n');
                    line += 1;
                    i += 1;
                }
                _ => {
                    masked.push(c);
                    i += 1;
                }
            }
        }

        debug_assert_eq!(masked.len(), raw.len(), "masking must preserve byte length");
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(
                masked
                    .char_indices()
                    .filter(|&(_, c)| c == '\n')
                    .map(|(p, _)| p + 1),
            )
            .collect();
        let n_lines = line_starts.len();
        let in_test_region = Self::test_regions(&masked, &line_starts, n_lines);
        let in_hot_path = Self::hot_regions(&comments, n_lines);
        let allows = Self::parse_directives(&comments);

        SourceModel {
            masked,
            raw: raw.to_owned(),
            line_starts,
            in_test_region,
            in_hot_path,
            allows,
        }
    }

    /// Marks lines between `// topple-lint: hot-path-begin` and
    /// `// topple-lint: hot-path-end` markers (inclusive). Regions may not
    /// nest; an unclosed `begin` extends to end of file, so a forgotten
    /// `end` fails closed (more code checked, not less).
    fn hot_regions(comments: &[(usize, String)], n_lines: usize) -> Vec<bool> {
        let mut hot = vec![false; n_lines];
        let mut begin: Option<usize> = None;
        for (line, text) in comments {
            let Some(inner) = text.strip_prefix("//") else {
                continue;
            };
            if inner.starts_with('/') || inner.starts_with('!') {
                continue;
            }
            let Some(body) = inner.trim().strip_prefix("topple-lint:") else {
                continue;
            };
            match body.trim() {
                "hot-path-begin" => begin = begin.or(Some(*line)),
                "hot-path-end" => {
                    if let Some(b) = begin.take() {
                        for l in b..=*line {
                            if let Some(slot) = hot.get_mut(l - 1) {
                                *slot = true;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some(b) = begin {
            for slot in hot.iter_mut().skip(b - 1) {
                *slot = true;
            }
        }
        hot
    }

    /// Masks one source character, preserving its UTF-8 byte length so every
    /// byte offset after it stays aligned between `masked` and `raw`. A
    /// single-space mask for a multibyte char would shift all later
    /// `line_starts`, corrupting snippets and any span-based analysis.
    fn mask_char(masked: &mut String, c: char) {
        for _ in 0..c.len_utf8() {
            masked.push(' ');
        }
    }

    fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
        // Preceded by an identifier char → part of a name like `for_test`.
        if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
            return false;
        }
        let mut j = i;
        while j < bytes.len() && (bytes[j] == 'r' || bytes[j] == 'b') && j - i < 2 {
            j += 1;
        }
        if j == i || !bytes[i..j].contains(&'r') {
            return false;
        }
        while j < bytes.len() && bytes[j] == '#' {
            j += 1;
        }
        j < bytes.len() && bytes[j] == '"'
    }

    /// 1-based line number of a byte offset into `masked`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        }
    }

    /// 1-based column of a byte offset.
    pub fn column_of(&self, offset: usize) -> usize {
        let line = self.line_of(offset);
        offset - self.line_starts[line - 1] + 1
    }

    /// Whether a 1-based line is inside a `#[cfg(test)]` region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test_region.get(line - 1).copied().unwrap_or(false)
    }

    /// Whether a 1-based line lies inside a tagged hot-path region.
    pub fn is_hot_line(&self, line: usize) -> bool {
        self.in_hot_path.get(line - 1).copied().unwrap_or(false)
    }

    /// The raw text of a 1-based line, trimmed.
    pub fn raw_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(self.raw.len());
        self.raw.get(start..end).unwrap_or("").trim_end()
    }

    /// Finds an allow directive for `rule` on `line` or the line above it.
    pub fn allow_for(&self, rule: &str, line: usize) -> Option<&AllowDirective> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }

    fn test_regions(masked: &str, line_starts: &[usize], n_lines: usize) -> Vec<bool> {
        let mut flags = vec![false; n_lines];
        let bytes = masked.as_bytes();
        let mut search_from = 0usize;
        while let Some(rel) = masked[search_from..].find("#[cfg(test)]") {
            let attr_at = search_from + rel;
            search_from = attr_at + 12;
            // Find the opening brace of the annotated item (skipping further
            // attributes and the item header).
            let mut depth = 0i32;
            let mut open = None;
            for (off, &b) in bytes[attr_at..].iter().enumerate() {
                match b {
                    b'{' => {
                        open = Some(attr_at + off);
                        break;
                    }
                    b';' if depth == 0 => break, // e.g. `#[cfg(test)] use ..;`
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    _ => {}
                }
            }
            let Some(open_at) = open else { continue };
            // Brace-match to the region end.
            let mut braces = 0i32;
            let mut close_at = masked.len();
            for (off, &b) in bytes[open_at..].iter().enumerate() {
                match b {
                    b'{' => braces += 1,
                    b'}' => {
                        braces -= 1;
                        if braces == 0 {
                            close_at = open_at + off;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let first = match line_starts.binary_search(&attr_at) {
                Ok(i) => i + 1,
                Err(i) => i,
            };
            let last = match line_starts.binary_search(&close_at) {
                Ok(i) => i + 1,
                Err(i) => i,
            };
            for line in first..=last.min(n_lines) {
                flags[line - 1] = true;
            }
            search_from = close_at.min(masked.len());
        }
        flags
    }

    fn parse_directives(comments: &[(usize, String)]) -> Vec<AllowDirective> {
        let mut out = Vec::new();
        for (line, text) in comments {
            // Only plain `// topple-lint: ...` comments are directives; doc
            // comments merely *talking about* the syntax must not count.
            let Some(inner) = text.strip_prefix("//") else {
                continue;
            };
            if inner.starts_with('/') || inner.starts_with('!') {
                continue;
            }
            let Some(body) = inner.trim().strip_prefix("topple-lint:") else {
                continue;
            };
            let body = body.trim();
            let Some(rest) = body.strip_prefix("allow(") else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rule = rest[..close].trim().to_owned();
            let justification = rest[close + 1..]
                .trim()
                .strip_prefix(':')
                .map(|j| j.trim().to_owned())
                .unwrap_or_default();
            out.push(AllowDirective {
                line: *line,
                rule,
                justification,
                used: std::cell::Cell::new(false),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"HashMap.iter()\"; // HashMap::new()\nlet y = 1;";
        let m = SourceModel::parse(src);
        assert!(!m.masked.contains("HashMap"));
        assert!(m.masked.contains("let y = 1;"));
        assert_eq!(m.masked.len(), src.len());
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let p = r#\"panic!(\"no\")\"#; let c = '\\n'; let l: &'static str = \"x\";";
        let m = SourceModel::parse(src);
        assert!(!m.masked.contains("panic!"));
        assert!(m.masked.contains("'static"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still */ let ok = 1;";
        let m = SourceModel::parse(src);
        assert!(!m.masked.contains("outer"));
        assert!(m.masked.contains("let ok = 1;"));
    }

    #[test]
    fn finds_test_regions() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let m = SourceModel::parse(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(2));
        assert!(m.is_test_line(4));
        assert!(!m.is_test_line(6));
    }

    #[test]
    fn parses_allow_directives() {
        let src = "// topple-lint: allow(unwrap): infallible by construction\nx.unwrap();\n// topple-lint: allow(panic)\n";
        let m = SourceModel::parse(src);
        assert_eq!(m.allows.len(), 2);
        assert_eq!(m.allows[0].rule, "unwrap");
        assert_eq!(m.allows[0].justification, "infallible by construction");
        assert!(m.allow_for("unwrap", 2).is_some());
        assert!(m.allow_for("unwrap", 4).is_none());
        assert!(m.allows[1].justification.is_empty());
    }

    #[test]
    fn multibyte_comment_keeps_offsets_aligned() {
        // Regression: a non-ASCII char in a masked region used to shrink
        // `masked` by (len_utf8 - 1) bytes, shifting every later offset.
        let src = "// café note — review\nx.unwrap();\n";
        let m = SourceModel::parse(src);
        assert_eq!(m.masked.len(), src.len());
        assert_eq!(m.raw_line(2), "x.unwrap();");
    }

    #[test]
    fn multibyte_raw_string_keeps_offsets_aligned() {
        let src = "let s = r#\"→ arrow ← and π\"#;\nlet y = 2;\n";
        let m = SourceModel::parse(src);
        assert_eq!(m.masked.len(), src.len());
        assert!(!m.masked.contains("arrow"));
        assert_eq!(m.raw_line(2), "let y = 2;");
    }

    #[test]
    fn multibyte_char_and_string_literals_keep_offsets_aligned() {
        let src = "let c = 'é'; let s = \"ümlaut\"; let e = \"a\\né\";\nlet z = 3;\n";
        let m = SourceModel::parse(src);
        assert_eq!(m.masked.len(), src.len());
        assert_eq!(m.raw_line(2), "let z = 3;");
    }

    #[test]
    fn multibyte_block_comment_keeps_offsets_aligned() {
        let src = "/* outer /* köttbullar */ ✓ */ let ok = 1;\nlet t = 4;\n";
        let m = SourceModel::parse(src);
        assert_eq!(m.masked.len(), src.len());
        assert!(m.masked.contains("let ok = 1;"));
        assert_eq!(m.raw_line(2), "let t = 4;");
    }

    #[test]
    fn raw_string_with_embedded_quotes_and_hashes() {
        let src = "let p = r##\"quote \"#  inside\"##; x.unwrap();\n";
        let m = SourceModel::parse(src);
        assert_eq!(m.masked.len(), src.len());
        assert!(!m.masked.contains("inside"));
        assert!(m.masked.contains("x.unwrap();"));
    }

    #[test]
    fn line_and_column_mapping() {
        let src = "abc\ndefgh\nij";
        let m = SourceModel::parse(src);
        assert_eq!(m.line_of(0), 1);
        assert_eq!(m.line_of(4), 2);
        assert_eq!(m.column_of(6), 3);
        assert_eq!(m.raw_line(2), "defgh");
    }
}
