//! Cross-crate call graph over the symbol table.
//!
//! Resolution is name-based and conservative: a call site `name(..)` or
//! `recv.name(..)` edges to *every* workspace function with that simple name
//! (narrowed by the `Owner::` qualifier when one is written). That
//! over-approximates reachability — safe for the determinism-epoch analysis,
//! where a missed edge could hide a draw site but a spurious edge can only
//! include a function that really does consume RNG somewhere.

use std::collections::{BTreeMap, BTreeSet};

use crate::symbols::{FnSym, KEYWORDS};
use crate::LexedFile;

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Absolute byte offset of the callee identifier in the file's `masked`.
    pub at: usize,
    /// Callee simple name.
    pub name: String,
    /// `Owner::name(..)` qualifier segment, if written (maps `Self` to the
    /// enclosing impl type before storage).
    pub qualifier: Option<String>,
    /// Whether this is a method call (`recv.name(..)`).
    pub method: bool,
    /// The receiver identifier for simple method calls (`rng.random()` →
    /// `rng`); `None` for chained or non-ident receivers.
    pub receiver: Option<String>,
    /// Absolute byte span of the argument text (inside the parens).
    pub args: (usize, usize),
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Extracts every call site in the given masked-byte ranges of one file, in
/// source order.
pub fn call_sites(masked: &str, ranges: &[(usize, usize)], owner: Option<&str>) -> Vec<CallSite> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for &(lo, hi) in ranges {
        let mut i = lo;
        while i < hi {
            if !is_ident(bytes[i]) || bytes[i].is_ascii_digit() || (i > 0 && is_ident(bytes[i - 1]))
            {
                i += 1;
                continue;
            }
            let start = i;
            while i < hi && is_ident(bytes[i]) {
                i += 1;
            }
            let name = &masked[start..i];
            let mut j = i;
            while j < hi && (bytes[j] == b' ' || bytes[j] == b'\n') {
                j += 1;
            }
            // Macro invocation (`name!(..)`) — not a function call.
            if j < hi && bytes[j] == b'!' {
                continue;
            }
            // Turbofish between name and arguments.
            if j + 2 < hi && bytes[j] == b':' && bytes[j + 1] == b':' && bytes[j + 2] == b'<' {
                let mut depth = 0isize;
                let mut k = j + 2;
                while k < hi {
                    match bytes[k] {
                        b'<' => depth += 1,
                        b'>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                j = (k + 1).min(hi);
                while j < hi && (bytes[j] == b' ' || bytes[j] == b'\n') {
                    j += 1;
                }
            }
            if j >= hi || bytes[j] != b'(' || KEYWORDS.contains(&name) {
                continue;
            }
            // Argument span via paren matching (clamped to the range).
            let mut depth = 0isize;
            let mut k = j;
            let mut args_end = hi;
            while k < hi {
                match bytes[k] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            args_end = k;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            // What precedes the name: `.` (method), `::` (qualified), other.
            let mut p = start;
            while p > lo && bytes[p - 1].is_ascii_whitespace() {
                p -= 1;
            }
            let mut method = false;
            let mut qualifier = None;
            let mut receiver = None;
            if p > lo && bytes[p - 1] == b'.' {
                method = true;
                // Simple receiver: an identifier directly before the dot.
                let mut r = p - 1;
                while r > lo && is_ident(bytes[r - 1]) {
                    r -= 1;
                }
                if r < p - 1 && (r == lo || bytes[r - 1] != b'.') {
                    receiver = Some(masked[r..p - 1].to_owned());
                }
            } else if p > lo + 1 && bytes[p - 1] == b':' && bytes[p - 2] == b':' {
                let mut r = p - 2;
                while r > lo && is_ident(bytes[r - 1]) {
                    r -= 1;
                }
                if r < p - 2 {
                    let q = &masked[r..p - 2];
                    qualifier = Some(if q == "Self" {
                        owner.unwrap_or(q).to_owned()
                    } else {
                        q.to_owned()
                    });
                }
            }
            out.push(CallSite {
                at: start,
                name: name.to_owned(),
                qualifier,
                method,
                receiver,
                args: (j + 1, args_end),
            });
        }
    }
    out
}

/// The workspace call graph: per-function callee index lists plus the raw
/// call sites they were resolved from.
#[derive(Debug)]
pub struct CallGraph {
    /// `edges[f]` — indices of functions `f` may call (sorted, deduped).
    pub edges: Vec<Vec<usize>>,
    /// `sites[f]` — every call site in `f`'s own body, in source order.
    pub sites: Vec<Vec<CallSite>>,
}

/// Builds the call graph for the scanned symbol table. Test functions get
/// their call sites extracted (they may be roots of fixture analyses) but
/// resolution never targets them.
pub fn build(files: &[LexedFile], fns: &[FnSym]) -> CallGraph {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_owner_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        by_name.entry(&f.name).or_default().push(i);
        if let Some(o) = &f.owner {
            by_owner_name.entry((o, &f.name)).or_default().push(i);
        }
    }
    let mut edges = Vec::with_capacity(fns.len());
    let mut sites = Vec::with_capacity(fns.len());
    for (i, f) in fns.iter().enumerate() {
        let masked = &files[f.file].model.masked;
        let ranges = crate::symbols::own_body_ranges(fns, i);
        let cs = call_sites(masked, &ranges, f.owner.as_deref());
        let mut callees = BTreeSet::new();
        for c in &cs {
            let qualified = c
                .qualifier
                .as_deref()
                .and_then(|q| by_owner_name.get(&(q, c.name.as_str())));
            let targets = match qualified {
                Some(t) => t,
                None => match by_name.get(c.name.as_str()) {
                    Some(t) => t,
                    None => continue,
                },
            };
            callees.extend(targets.iter().copied());
        }
        edges.push(callees.into_iter().collect());
        sites.push(cs);
    }
    CallGraph { edges, sites }
}

/// Indices of functions reachable from `roots` (inclusive).
pub fn reachable(graph: &CallGraph, roots: &[usize]) -> BTreeSet<usize> {
    reachable_excluding(graph, roots, &BTreeSet::new())
}

/// Indices of functions reachable from `roots` (inclusive) without
/// traversing into `excluded` functions. The determinism-epoch analysis uses
/// this to cut other epochs' `_epochN` generator variants out of one epoch's
/// contract: a draw helper reachable *only* through an excluded variant
/// belongs to that variant's epoch, not this one.
pub fn reachable_excluding(
    graph: &CallGraph,
    roots: &[usize],
    excluded: &BTreeSet<usize>,
) -> BTreeSet<usize> {
    let mut seen: BTreeSet<usize> = roots
        .iter()
        .copied()
        .filter(|i| !excluded.contains(i))
        .collect();
    let mut stack: Vec<usize> = seen.iter().copied().collect();
    while let Some(f) = stack.pop() {
        for &c in &graph.edges[f] {
            if !excluded.contains(&c) && seen.insert(c) {
                stack.push(c);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceModel;
    use crate::symbols;

    fn lex(src: &str) -> Vec<LexedFile> {
        vec![LexedFile {
            krate: "t".into(),
            rel: "crates/t/src/lib.rs".into(),
            model: SourceModel::parse(src),
        }]
    }

    #[test]
    fn resolves_free_method_and_qualified_calls() {
        let files = lex("fn a() { b(); s.c(); D::e(); f::<u32>(1); }\n\
             fn b() {}\n\
             struct S; impl S { fn c(&self) {} }\n\
             struct D; impl D { fn e() {} }\n\
             fn f<T>(x: T) {}\n");
        let fns = symbols::scan(&files);
        let g = build(&files, &fns);
        let a = fns.iter().position(|f| f.name == "a").expect("a");
        let names: Vec<&str> = g.edges[a].iter().map(|&i| fns[i].name.as_str()).collect();
        assert_eq!(names, ["b", "c", "e", "f"], "{:#?}", g.sites[a]);
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let files =
            lex("fn a() { if (x) {} format!(\"{}\", 1); matches!(x, 1); }\nfn format() {}\n");
        let fns = symbols::scan(&files);
        let g = build(&files, &fns);
        assert!(g.edges[0].is_empty(), "{:#?}", g.sites[0]);
    }

    #[test]
    fn receiver_and_argument_spans_are_extracted() {
        let files = lex("fn a(rng: &mut R) { rng.random(); poisson(&mut rng, 2.0); x.y.z(); }\n");
        let fns = symbols::scan(&files);
        let g = build(&files, &fns);
        let sites = &g.sites[0];
        let random = sites.iter().find(|c| c.name == "random").expect("random");
        assert!(random.method);
        assert_eq!(random.receiver.as_deref(), Some("rng"));
        let poisson = sites.iter().find(|c| c.name == "poisson").expect("poisson");
        let args = &files[0].model.masked[poisson.args.0..poisson.args.1];
        assert_eq!(args, "&mut rng, 2.0");
        let z = sites.iter().find(|c| c.name == "z").expect("z");
        assert!(z.method);
        assert_eq!(z.receiver, None, "chained receiver must not resolve");
    }

    #[test]
    fn reachability_walks_transitively() {
        let files = lex("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn island() { c(); }\n");
        let fns = symbols::scan(&files);
        let g = build(&files, &fns);
        let a = fns.iter().position(|f| f.name == "a").expect("a");
        let island = fns.iter().position(|f| f.name == "island").expect("island");
        let r = reachable(&g, &[a]);
        assert_eq!(r.len(), 3);
        assert!(!r.contains(&island));
    }

    #[test]
    fn exclusion_cuts_exclusive_subtrees_but_keeps_shared_ones() {
        // root → {v1, v2}; v1 → shared; v2 → {shared, only2}. Excluding v2
        // must drop only2 but keep shared (still reachable through v1).
        let files = lex("fn root() { v1(); v2(); }\nfn v1() { shared(); }\n\
             fn v2() { shared(); only2(); }\nfn shared() {}\nfn only2() {}\n");
        let fns = symbols::scan(&files);
        let g = build(&files, &fns);
        let idx = |n: &str| fns.iter().position(|f| f.name == n).expect("fn present");
        let excluded: BTreeSet<usize> = [idx("v2")].into_iter().collect();
        let r = reachable_excluding(&g, &[idx("root")], &excluded);
        assert!(r.contains(&idx("v1")));
        assert!(r.contains(&idx("shared")));
        assert!(!r.contains(&idx("v2")));
        assert!(!r.contains(&idx("only2")));
    }

    #[test]
    fn self_qualifier_maps_to_enclosing_impl() {
        let files = lex(
            "struct S;\nimpl S { fn a(&self) { Self::helper(); } fn helper() {} }\n\
             fn helper() { loop {} }\n",
        );
        let fns = symbols::scan(&files);
        let g = build(&files, &fns);
        let a = fns.iter().position(|f| f.name == "a").expect("a");
        let method_helper = fns
            .iter()
            .position(|f| f.name == "helper" && f.owner.is_some())
            .expect("method");
        assert_eq!(g.edges[a], vec![method_helper], "{:#?}", g.sites[a]);
    }
}
