//! The lint rules.
//!
//! Three rule families, mirroring the invariants the reproduction depends on:
//!
//! * **Determinism (L1)** — `hash-iter`, `wall-clock`, `unseeded-rng`. The
//!   paper's comparisons are rank correlations over full list snapshots; any
//!   nondeterministic ordering or entropy source upstream of a list silently
//!   changes every downstream figure.
//! * **Panic-freedom (L2)** — `unwrap`, `panic`, `indexing`. Library crates
//!   must surface errors as values; a panic half-way through a month-long
//!   simulated study loses the run.
//! * **Float hygiene (L3)** — `float-eq`, `lossy-cast`. Exact float equality
//!   and truncating casts are where rank/score arithmetic quietly diverges
//!   between platforms.
//!
//! Detection is token-textual over the masked source (see `lexer`): no type
//! inference, so each rule leans on local declarations plus conservative
//! heuristics, with `// topple-lint: allow(rule): why` as the escape hatch.

use std::collections::BTreeSet;

use crate::config::Severity;
use crate::lexer::SourceModel;

/// Static description of one rule.
pub struct RuleInfo {
    /// Stable identifier, used in config and allow directives.
    pub id: &'static str,
    /// One-line human summary.
    pub summary: &'static str,
    /// Severity when neither `lint.toml` table mentions the rule.
    pub builtin: Severity,
}

/// Every rule the linter knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "hash-iter",
        summary: "iterating a std HashMap/HashSet in a result path (nondeterministic order)",
        builtin: Severity::Deny,
    },
    RuleInfo {
        id: "wall-clock",
        summary: "reading the wall clock (SystemTime::now/Instant::now) in deterministic code",
        builtin: Severity::Deny,
    },
    RuleInfo {
        id: "unseeded-rng",
        summary: "entropy-seeded RNG (thread_rng/from_entropy) breaks reproducibility",
        builtin: Severity::Deny,
    },
    RuleInfo {
        id: "unwrap",
        summary: ".unwrap()/.expect() in library code",
        builtin: Severity::Deny,
    },
    RuleInfo {
        id: "panic",
        summary: "panic!/unreachable!/todo!/unimplemented! in library code",
        builtin: Severity::Deny,
    },
    RuleInfo {
        id: "indexing",
        summary: "slice/array indexing that can panic",
        builtin: Severity::Warn,
    },
    RuleInfo {
        id: "float-eq",
        summary: "exact == / != comparison on floating point",
        builtin: Severity::Warn,
    },
    RuleInfo {
        id: "lossy-cast",
        summary: "truncating `as` cast to an integer type",
        builtin: Severity::Allow,
    },
    RuleInfo {
        id: "string-set",
        summary: "HashSet of domain strings in a result path (intern to dense ids instead)",
        builtin: Severity::Deny,
    },
    RuleInfo {
        id: "hot-alloc",
        summary: "heap allocation inside a tagged per-event hot path (hot-path-begin/end region)",
        builtin: Severity::Deny,
    },
    RuleInfo {
        id: "rng-leak",
        summary: "seeded RNG consumed outside the determinism-epoch call graph",
        builtin: Severity::Deny,
    },
    RuleInfo {
        id: "epoch-drift",
        summary:
            "reachable draw-site set differs from determinism.epoch.toml for the declared epoch",
        builtin: Severity::Deny,
    },
    RuleInfo {
        id: "unordered-iteration",
        summary: "hash-container iteration collected and later consumed without sorting",
        builtin: Severity::Warn,
    },
    RuleInfo {
        id: "allow-empty",
        summary: "topple-lint allow directive without a justification",
        builtin: Severity::Deny,
    },
    RuleInfo {
        id: "allow-unused",
        summary: "topple-lint allow directive that suppresses nothing",
        builtin: Severity::Warn,
    },
];

/// Looks a rule up by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// A violation before severity resolution (no crate/file context yet).
#[derive(Debug, Clone)]
pub struct RawViolation {
    /// Rule id.
    pub rule: &'static str,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What was found.
    pub message: String,
    /// How to fix it (rendered in `--suggest` mode).
    pub suggestion: &'static str,
}

const SUGGEST_HASH_ITER: &str = "switch the container to BTreeMap/BTreeSet, collect-and-sort \
     before consuming, or justify with `// topple-lint: allow(hash-iter): <why order cannot leak>`";
const SUGGEST_WALL_CLOCK: &str = "thread simulated time through explicitly; wall-clock reads \
     belong only in timing harnesses behind `// topple-lint: allow(wall-clock): <why>`";
const SUGGEST_UNSEEDED_RNG: &str =
    "derive the RNG from the study seed (SmallRng::seed_from_u64) so runs reproduce";
const SUGGEST_UNWRAP: &str = "return a typed error (crate error enum + `?`) or, if genuinely \
     infallible, justify with `// topple-lint: allow(unwrap): <invariant>`";
const SUGGEST_PANIC: &str =
    "convert to a Result with the crate's error enum, or justify the invariant in an allow directive";
const SUGGEST_INDEXING: &str =
    "use .get()/.get_mut() and handle None, or justify the bound in an allow directive";
const SUGGEST_FLOAT_EQ: &str =
    "compare with an explicit epsilon ((a - b).abs() < EPS) or total_cmp for orderings";
const SUGGEST_LOSSY_CAST: &str =
    "go through a checked-cast helper (e.g. topple_stats::cast) so truncation is a handled error";
const SUGGEST_STRING_SET: &str = "intern the domains once (topple_lists::DomainTable) and \
     compare sorted id slices (topple_stats::sets::jaccard_sorted / compare::IdCut); a string \
     set re-hashes every entry on every comparison";
const SUGGEST_HOT_ALLOC: &str = "hoist the allocation into reusable scratch (epoch-stamped \
     tables, see topple_vantage::scratch) or out of the per-event loop; if the allocation is \
     genuinely amortized, justify with `// topple-lint: allow(hot-alloc): <why>`";
pub(crate) const SUGGEST_RNG_LEAK: &str = "route the function through the declared roots \
     (World::simulate_day_into / Study::run) so its draws join the epoch manifest, drop the RNG \
     parameter, or justify with `// topple-lint: allow(rng-leak): <why>`";
pub(crate) const SUGGEST_EPOCH_DRIFT: &str = "the draw sequence changed: bump DETERMINISM_EPOCH \
     in crates/sim, regenerate the manifest with `topple-lint epoch emit --write`, and re-pin the \
     byte snapshot in tests/determinism.rs";
pub(crate) const SUGGEST_UNORDERED: &str = "sort the collected values before consuming them \
     (`v.sort()` / `v.sort_unstable()`), switch to a BTree container, or justify with \
     `// topple-lint: allow(unordered-iteration): <why order cannot leak>`";
const SUGGEST_ALLOW_EMPTY: &str =
    "write the justification: `// topple-lint: allow(rule): <why this is sound>`";
const SUGGEST_ALLOW_UNUSED: &str = "delete the stale directive (or fix the rule id typo)";

/// Integer types a cast to which is potentially truncating.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Hash-container methods that iterate in arbitrary order (shared with the
/// cross-statement `unordered-iteration` analysis in `epoch`).
pub(crate) const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

/// Chain tails that consume an iterator order-insensitively; iteration feeding
/// only these is not a determinism hazard.
const ORDER_INSENSITIVE: &[&str] = &[
    ".sum",
    ".count(",
    ".min(",
    ".max(",
    ".all(",
    ".any(",
    ".product",
    ".contains",
    "BTree",
    "sort",
];

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Byte offsets of `needle` in `hay` with identifier boundaries on both ends.
pub(crate) fn word_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        from = at + needle.len().max(1);
        let before_ok = at == 0 || !hay[..at].chars().next_back().map(is_ident).unwrap_or(false);
        let after = hay[at + needle.len()..].chars().next();
        let after_ok = !after.map(is_ident).unwrap_or(false);
        if before_ok && after_ok {
            out.push(at);
        }
    }
    out
}

/// Plain substring offsets (for needles that carry their own delimiters,
/// like `.unwrap()`).
fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = hay[from..].find(needle) {
        out.push(from + rel);
        from = from + rel + needle.len().max(1);
    }
    out
}

/// Runs every rule over one lexed file.
pub fn check_file(model: &SourceModel) -> Vec<RawViolation> {
    let mut out = check_lexical(model);
    check_directives(model, &mut out);
    out.sort_by_key(|v| (v.line, v.column));
    out
}

/// Runs the per-line lexical rules only — no directive audit. The workspace
/// driver uses this so the call-graph pass can consume allow directives
/// before [`check_directives_pass`] decides which ones are stale.
pub fn check_lexical(model: &SourceModel) -> Vec<RawViolation> {
    let mut out = Vec::new();
    check_hash_iter(model, &mut out);
    check_wall_clock(model, &mut out);
    check_unseeded_rng(model, &mut out);
    check_unwrap(model, &mut out);
    check_panic(model, &mut out);
    check_indexing(model, &mut out);
    check_float_eq(model, &mut out);
    check_lossy_cast(model, &mut out);
    check_string_set(model, &mut out);
    check_hot_alloc(model, &mut out);
    out.sort_by_key(|v| (v.line, v.column));
    out
}

/// Audits allow directives (`allow-empty`, `allow-unused`) — run last, after
/// every rule that could mark a directive used.
pub fn check_directives_pass(model: &SourceModel) -> Vec<RawViolation> {
    let mut out = Vec::new();
    check_directives(model, &mut out);
    out
}

/// Records a violation unless the line is test-only or covered by a matching
/// allow directive (which gets marked used either way).
fn push(
    model: &SourceModel,
    out: &mut Vec<RawViolation>,
    rule: &'static str,
    offset: usize,
    message: String,
    suggestion: &'static str,
) {
    let line = model.line_of(offset);
    if model.is_test_line(line) {
        return;
    }
    if let Some(d) = model.allow_for(rule, line) {
        d.used.set(true);
        return;
    }
    out.push(RawViolation {
        rule,
        line,
        column: model.column_of(offset),
        message,
        suggestion,
    });
}

// ---- L1: determinism ------------------------------------------------------

/// Names bound to a `HashMap`/`HashSet` anywhere in the file: `let` bindings,
/// struct fields and fn parameters (`name: HashMap<..>`).
pub(crate) fn hash_container_names(masked: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for ty in ["HashMap", "HashSet"] {
        for at in word_occurrences(masked, ty) {
            let stmt_start = masked[..at]
                .rfind([';', '{', '}'])
                .map(|p| p + 1)
                .unwrap_or(0);
            let span = &masked[stmt_start..at];
            if let Some(let_at) = word_occurrences(span, "let").first().copied() {
                let mut rest = span[let_at + 3..].trim_start();
                if let Some(r) = rest.strip_prefix("mut ") {
                    rest = r.trim_start();
                }
                let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
                if !name.is_empty() {
                    names.insert(name);
                }
                continue;
            }
            // `name: HashMap<..>` — field or parameter. Find the single colon
            // closest before the type (skipping `::`).
            let bytes = span.as_bytes();
            let mut k = span.len();
            while k > 0 {
                k -= 1;
                if bytes[k] == b':' {
                    if k > 0 && bytes[k - 1] == b':' {
                        k -= 1;
                        continue;
                    }
                    if bytes.get(k + 1) == Some(&b':') {
                        continue;
                    }
                    // `fn f(x: T) -> HashMap<..>`: the colon belongs to a
                    // parameter, the type is a return type — no binding.
                    if span[k..].contains("->") {
                        break;
                    }
                    let head = span[..k].trim_end();
                    let name: String = head
                        .chars()
                        .rev()
                        .take_while(|&c| is_ident(c))
                        .collect::<String>();
                    let name: String = name.chars().rev().collect();
                    if !name.is_empty() && !name.chars().next().unwrap_or('_').is_ascii_digit() {
                        names.insert(name);
                    }
                    break;
                }
            }
        }
    }
    names
}

fn check_hash_iter(model: &SourceModel, out: &mut Vec<RawViolation>) {
    let masked = &model.masked;
    for name in hash_container_names(masked) {
        for at in word_occurrences(masked, &name) {
            // Method chains often break the line after the receiver.
            let after = masked[at + name.len()..].trim_start();
            let mut hit: Option<&str> = None;
            for m in ITER_METHODS {
                if after.starts_with(m) {
                    // Skip chains that end in an order-insensitive consumer.
                    let stmt_end = after
                        .find(';')
                        .map(|p| p.min(300))
                        .unwrap_or_else(|| after.len().min(300));
                    let tail = &after[..stmt_end];
                    if !ORDER_INSENSITIVE.iter().any(|b| tail.contains(b)) {
                        hit = Some(m.trim_end_matches('('));
                    }
                    break;
                }
            }
            if hit.is_none() {
                // `for x in name {` / `for x in &name {`.
                let before = masked[..at]
                    .trim_end_matches([' ', '&'])
                    .trim_end_matches("mut ");
                let next = after.trim_start().chars().next();
                if before.ends_with(" in")
                    && word_occurrences(&before[before.len().saturating_sub(90)..], "for")
                        .last()
                        .is_some()
                    && next == Some('{')
                {
                    hit = Some("for-in");
                }
            }
            if let Some(how) = hit {
                push(
                    model,
                    out,
                    "hash-iter",
                    at,
                    format!("`{name}` is a hash container; `{how}` iterates it in arbitrary order"),
                    SUGGEST_HASH_ITER,
                );
            }
        }
    }
}

fn check_wall_clock(model: &SourceModel, out: &mut Vec<RawViolation>) {
    for pat in ["SystemTime::now(", "Instant::now("] {
        for at in find_all(&model.masked, pat) {
            push(
                model,
                out,
                "wall-clock",
                at,
                format!("`{}` reads the wall clock", pat.trim_end_matches('(')),
                SUGGEST_WALL_CLOCK,
            );
        }
    }
}

fn check_unseeded_rng(model: &SourceModel, out: &mut Vec<RawViolation>) {
    for pat in ["thread_rng(", "from_entropy(", "from_os_rng("] {
        for at in find_all(&model.masked, pat) {
            let before_ok = {
                let head = &model.masked[..at];
                !head.chars().next_back().map(is_ident).unwrap_or(false)
                    || head.ends_with('.')
                    || head.ends_with(':')
            };
            if before_ok {
                push(
                    model,
                    out,
                    "unseeded-rng",
                    at,
                    format!("`{}` seeds from process entropy", pat.trim_end_matches('(')),
                    SUGGEST_UNSEEDED_RNG,
                );
            }
        }
    }
}

// ---- L2: panic-freedom ----------------------------------------------------

fn check_unwrap(model: &SourceModel, out: &mut Vec<RawViolation>) {
    for at in find_all(&model.masked, ".unwrap()") {
        push(
            model,
            out,
            "unwrap",
            at,
            "`.unwrap()` panics on the error path".into(),
            SUGGEST_UNWRAP,
        );
    }
    for at in find_all(&model.masked, ".expect(") {
        push(
            model,
            out,
            "unwrap",
            at,
            "`.expect(..)` panics on the error path".into(),
            SUGGEST_UNWRAP,
        );
    }
}

fn check_panic(model: &SourceModel, out: &mut Vec<RawViolation>) {
    for mac in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
        for at in find_all(&model.masked, mac) {
            let before_ok = !model.masked[..at]
                .chars()
                .next_back()
                .map(is_ident)
                .unwrap_or(false);
            if before_ok {
                push(
                    model,
                    out,
                    "panic",
                    at,
                    format!("`{}..)` aborts the study on this path", mac),
                    SUGGEST_PANIC,
                );
            }
        }
    }
}

fn check_indexing(model: &SourceModel, out: &mut Vec<RawViolation>) {
    let bytes = model.masked.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let prev = model.masked[..i].trim_end().chars().next_back();
        let indexes = matches!(prev, Some(c) if is_ident(c) || c == ')' || c == ']');
        if !indexes {
            continue;
        }
        // Full-range slicing `x[..]` cannot panic.
        let mut depth = 1usize;
        let mut j = i + 1;
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let content = model
            .masked
            .get(i + 1..j.saturating_sub(1))
            .unwrap_or("")
            .trim();
        if content == ".." {
            continue;
        }
        push(
            model,
            out,
            "indexing",
            i,
            format!("indexing `[{content}]` panics when out of bounds"),
            SUGGEST_INDEXING,
        );
    }
}

// ---- L3: float hygiene ----------------------------------------------------

/// A token that is visibly floating point: a float literal (`1.0`, `2.`,
/// `1e-9`, `3f64`) or an `f32`/`f64` path head.
fn is_floatish(tok: &str) -> bool {
    if tok.is_empty() {
        return false;
    }
    if tok == "f32" || tok == "f64" {
        return true;
    }
    let first = tok.chars().next().unwrap_or(' ');
    if !first.is_ascii_digit() {
        return false;
    }
    tok.contains('.')
        || tok.ends_with("f32")
        || tok.ends_with("f64")
        || tok.contains('e')
            && tok
                .trim_end_matches(|c: char| c.is_ascii_digit())
                .ends_with('e')
}

/// Names locally declared as floats: `name: f64`, `let name = 1.0`,
/// `let name = .. as f64`.
fn float_names(masked: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for ty in ["f32", "f64"] {
        for at in word_occurrences(masked, ty) {
            let head = masked[..at].trim_end();
            if let Some(head) = head.strip_suffix(':') {
                let name: String = head
                    .trim_end()
                    .chars()
                    .rev()
                    .take_while(|&c| is_ident(c))
                    .collect();
                let name: String = name.chars().rev().collect();
                if !name.is_empty() {
                    names.insert(name);
                }
            }
        }
    }
    for at in word_occurrences(masked, "let") {
        let mut rest = masked[at + 3..].trim_start();
        if let Some(r) = rest.strip_prefix("mut ") {
            rest = r.trim_start();
        }
        let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
        if name.is_empty() {
            continue;
        }
        let Some(eq) = rest.find('=') else { continue };
        if rest[..eq].contains(';') || rest[..eq].contains('\n') {
            continue;
        }
        let value: String = rest[eq + 1..]
            .trim_start()
            .chars()
            .take_while(|&c| is_ident(c) || c == '.')
            .collect();
        let stmt_end = rest[eq..].find(';').map(|p| eq + p).unwrap_or(rest.len());
        if is_floatish(&value)
            || rest[eq..stmt_end].contains(" as f64")
            || rest[eq..stmt_end].contains(" as f32")
        {
            names.insert(name);
        }
    }
    names
}

fn check_float_eq(model: &SourceModel, out: &mut Vec<RawViolation>) {
    let masked = &model.masked;
    let floats = float_names(masked);
    for op in ["==", "!="] {
        for at in find_all(masked, op) {
            // Exclude `=>`, `<=`, `>=`, `==` inside `!=` scans, pattern `..=`.
            let before = &masked[..at];
            let prevc = before.chars().next_back().unwrap_or(' ');
            if op == "==" && matches!(prevc, '!' | '<' | '>' | '=') {
                continue;
            }
            if masked[at + 2..].starts_with('=') {
                continue;
            }
            let left: String = before
                .trim_end()
                .chars()
                .rev()
                .take_while(|&c| is_ident(c) || c == '.')
                .collect();
            let left: String = left.chars().rev().collect();
            let right: String = masked[at + 2..]
                .trim_start()
                .chars()
                .take_while(|&c| is_ident(c) || c == '.')
                .collect();
            let flags = |t: &str| {
                is_floatish(t)
                    || floats.contains(t.rsplit('.').next_back().unwrap_or(t))
                    || floats.contains(t.split('.').next().unwrap_or(t))
            };
            if flags(&left) || flags(&right) {
                push(
                    model,
                    out,
                    "float-eq",
                    at,
                    format!("exact float comparison `{} {op} {}`", left, right),
                    SUGGEST_FLOAT_EQ,
                );
            }
        }
    }
}

fn check_lossy_cast(model: &SourceModel, out: &mut Vec<RawViolation>) {
    for at in word_occurrences(&model.masked, "as") {
        let target: String = model.masked[at + 2..]
            .trim_start()
            .chars()
            .take_while(|&c| is_ident(c))
            .collect();
        if INT_TYPES.contains(&target.as_str()) {
            push(
                model,
                out,
                "lossy-cast",
                at,
                format!("`as {target}` silently truncates or wraps"),
                SUGGEST_LOSSY_CAST,
            );
        }
    }
}

/// The performance cousin of `hash-iter`: a `HashSet` keyed by domain
/// *strings* (`String` / `&str`). Every membership test re-hashes the whole
/// string; the interned-id path (`DomainTable` + sorted-slice merge-walks)
/// does the same comparison allocation- and hash-free. Token-textual: flags
/// `HashSet<String, ..>` and `HashSet<&str>` / `HashSet<&'a str>` type
/// mentions (declarations, annotations, turbofish).
fn check_string_set(model: &SourceModel, out: &mut Vec<RawViolation>) {
    for at in word_occurrences(&model.masked, "HashSet") {
        let after = &model.masked[at + "HashSet".len()..];
        let Some(args) = after.trim_start().strip_prefix('<') else {
            continue;
        };
        let arg = args.trim_start();
        let stringy = if let Some(rest) = arg.strip_prefix("String") {
            // Word boundary: not `StringId` etc.
            !rest.chars().next().map(is_ident).unwrap_or(false)
        } else if let Some(rest) = arg.strip_prefix('&') {
            // `&str` or `&'a str`.
            let rest = rest.trim_start();
            let rest = match rest.strip_prefix('\'') {
                Some(lt) => lt.trim_start_matches(is_ident).trim_start(),
                None => rest,
            };
            rest.strip_prefix("str")
                .map(|r| !r.chars().next().map(is_ident).unwrap_or(false))
                .unwrap_or(false)
        } else {
            false
        };
        if stringy {
            push(
                model,
                out,
                "string-set",
                at,
                "`HashSet` of domain strings re-hashes every entry per comparison".into(),
                SUGGEST_STRING_SET,
            );
        }
    }
}

// ---- directive hygiene ----------------------------------------------------

// ---- L4: hot-path allocation ----------------------------------------------

/// Allocating constructors and adaptors that have no place in per-event
/// code. Token-textual like everything else: the region markers carry the
/// "this runs per event" knowledge the linter cannot infer.
const HOT_ALLOC_PATTERNS: &[&str] = &[
    "Vec::new",
    "VecDeque::new",
    "vec![",
    ".collect",
    ".to_vec(",
    "Box::new",
    "String::new",
    ".to_string(",
    ".to_owned(",
    "format!(",
    "HashMap::new",
    "HashSet::new",
    "BTreeMap::new",
    "BTreeSet::new",
    "with_capacity(",
];

fn check_hot_alloc(model: &SourceModel, out: &mut Vec<RawViolation>) {
    if !model.in_hot_path.iter().any(|&h| h) {
        return;
    }
    for pat in HOT_ALLOC_PATTERNS {
        for at in find_all(&model.masked, pat) {
            if !model.is_hot_line(model.line_of(at)) {
                continue;
            }
            push(
                model,
                out,
                "hot-alloc",
                at,
                format!("`{}` allocates inside a tagged per-event hot path", pat),
                SUGGEST_HOT_ALLOC,
            );
        }
    }
}

fn check_directives(model: &SourceModel, out: &mut Vec<RawViolation>) {
    for d in &model.allows {
        if model.is_test_line(d.line) {
            continue;
        }
        if d.justification.is_empty() {
            out.push(RawViolation {
                rule: "allow-empty",
                line: d.line,
                column: 1,
                message: format!("allow({}) has no justification", d.rule),
                suggestion: SUGGEST_ALLOW_EMPTY,
            });
        } else if !d.used.get() {
            out.push(RawViolation {
                rule: "allow-unused",
                line: d.line,
                column: 1,
                message: format!("allow({}) suppresses nothing here", d.rule),
                suggestion: SUGGEST_ALLOW_UNUSED,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<RawViolation> {
        check_file(&SourceModel::parse(src))
    }

    fn rules_hit(src: &str) -> Vec<&'static str> {
        run(src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn detects_hash_iteration() {
        let src = "fn f() { let mut best: HashMap<u32, u32> = HashMap::new(); for (k, v) in &best { out.push(v); } }";
        assert!(rules_hit(src).contains(&"hash-iter"), "{:?}", run(src));
        let meth = "struct S { seen: HashSet<u32> } fn g(s: &S) { let v: Vec<_> = s.seen.iter().collect(); }";
        assert!(rules_hit(meth).contains(&"hash-iter"));
    }

    #[test]
    fn order_insensitive_consumers_pass() {
        let src = "fn f(m: HashMap<u32, u32>) -> u32 { m.values().sum() }";
        assert!(!rules_hit(src).contains(&"hash-iter"), "{:?}", run(src));
        let sorted = "fn f(m: HashMap<u32, u32>) -> Vec<u32> { let mut v: Vec<u32> = m.into_keys().collect(); v.sort();\n v }";
        // The collect feeds a sort on the same statement chain? It does not —
        // but the BTree/sort lookahead only scans the same statement, so this
        // still flags; the allow directive is the documented escape hatch.
        let _ = sorted;
    }

    #[test]
    fn detects_wall_clock_and_rng() {
        assert!(rules_hit("let t = std::time::Instant::now();").contains(&"wall-clock"));
        assert!(rules_hit("let now = SystemTime::now();").contains(&"wall-clock"));
        assert!(rules_hit("let mut rng = rand::thread_rng();").contains(&"unseeded-rng"));
    }

    #[test]
    fn detects_unwrap_and_panic() {
        assert_eq!(rules_hit("fn f() { x.unwrap(); }"), vec!["unwrap"]);
        assert_eq!(rules_hit("fn f() { x.expect(\"boom\"); }"), vec!["unwrap"]);
        assert!(rules_hit("fn f() { x.unwrap_or(0); }").is_empty());
        assert!(rules_hit("fn f() { x.expect_err(\"e\"); }").is_empty());
        assert_eq!(rules_hit("fn f() { panic!(\"no\"); }"), vec!["panic"]);
        assert!(rules_hit("fn f() { dont_panic!(1); }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); panic!(\"ok\"); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_directive_suppresses_with_justification() {
        let ok = "// topple-lint: allow(unwrap): length checked above\nlet v = x.unwrap();\n";
        assert!(run(ok).is_empty(), "{:?}", run(ok));
        let empty = "// topple-lint: allow(unwrap)\nlet v = x.unwrap();\n";
        assert_eq!(rules_hit(empty), vec!["allow-empty"]);
        let stale = "// topple-lint: allow(unwrap): nothing here\nlet v = 1;\n";
        assert_eq!(rules_hit(stale), vec!["allow-unused"]);
    }

    #[test]
    fn detects_indexing() {
        assert!(rules_hit("fn f(v: &[u32]) -> u32 { v[3] }").contains(&"indexing"));
        assert!(!rules_hit("fn f(v: &[u32]) -> &[u32] { &v[..] }").contains(&"indexing"));
        assert!(!rules_hit("#[derive(Debug)]\nstruct S;").contains(&"indexing"));
        assert!(!rules_hit("let a = [1, 2, 3];").contains(&"indexing"));
        assert!(!rules_hit("let v = vec![1];").contains(&"indexing"));
    }

    #[test]
    fn detects_float_eq() {
        assert!(rules_hit("fn f(x: f64) -> bool { x == 0.0 }").contains(&"float-eq"));
        assert!(rules_hit("fn f(x: f64, y: f64) -> bool { x != y }").contains(&"float-eq"));
        assert!(rules_hit("fn f() { if rho == f64::NAN {} }").contains(&"float-eq"));
        assert!(!rules_hit("fn f(x: u32) -> bool { x == 0 }").contains(&"float-eq"));
        assert!(!rules_hit("fn f(x: u32) -> bool { x <= 1 || x >= 2 }").contains(&"float-eq"));
        assert!(!rules_hit("match x { Pat => 1.0, _ => 0.0 };").contains(&"float-eq"));
    }

    #[test]
    fn detects_lossy_cast() {
        assert!(rules_hit("let n = x as usize;").contains(&"lossy-cast"));
        assert!(rules_hit("let n = score as u32;").contains(&"lossy-cast"));
        assert!(!rules_hit("let n = x as f64;").contains(&"lossy-cast"));
    }

    #[test]
    fn detects_string_sets() {
        assert!(rules_hit("let s: HashSet<String> = HashSet::new();").contains(&"string-set"));
        assert!(rules_hit("let s: HashSet<&str> = names.iter().collect();").contains(&"string-set"));
        assert!(
            rules_hit("fn f<'a>(x: HashSet<&'a str>) {}").contains(&"string-set"),
            "{:?}",
            run("fn f<'a>(x: HashSet<&'a str>) {}")
        );
        assert!(rules_hit("let s = names.collect::<HashSet<String>>();").contains(&"string-set"));
        // Id- or number-keyed sets are the fix, not a violation.
        assert!(!rules_hit("let s: HashSet<u64> = HashSet::new();").contains(&"string-set"));
        assert!(!rules_hit("let s: HashSet<DomainId> = HashSet::new();").contains(&"string-set"));
        // Word boundary: a type merely starting with `String` is fine.
        assert!(!rules_hit("let s: HashSet<StringId> = HashSet::new();").contains(&"string-set"));
        let allowed = "// topple-lint: allow(string-set): reference path for equivalence tests\nlet s: HashSet<&str> = x.collect();\n";
        assert!(run(allowed).is_empty(), "{:?}", run(allowed));
    }

    #[test]
    fn violations_are_position_sorted() {
        let src = "fn f() { x.unwrap(); }\nfn g() { panic!(\"no\"); }\n";
        let v = run(src);
        assert_eq!(v.len(), 2);
        assert!(v[0].line < v[1].line);
        assert_eq!(v[0].line, 1);
        assert!(v[0].column > 1);
    }
}
