//! Per-crate symbol tables: a lightweight item parser over the lexer.
//!
//! The lexer gives every file a byte-aligned masked view; this module walks
//! that view once per file and extracts the two item kinds the call-graph
//! analysis needs: `impl` blocks (to qualify methods) and `fn` items (name,
//! parameter list, body span). It is deliberately not a full parser — no
//! types, no expressions — just enough structure for name-based call
//! resolution and the RNG taint pass in [`crate::epoch`].

use crate::LexedFile;

/// One function item found in a workspace source file.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Index into the lexed-file list this symbol came from.
    pub file: usize,
    /// Package name (e.g. `topple-sim`).
    pub krate: String,
    /// Fully qualified name: `krate::module::Owner::name` (owner omitted for
    /// free functions). Stable across line moves — manifest identity.
    pub qname: String,
    /// Simple function name.
    pub name: String,
    /// `impl` type the function is a method of, if any.
    pub owner: Option<String>,
    /// 1-based declaration line.
    pub line: usize,
    /// Byte span of the parameter list interior in `masked` (between parens).
    pub sig_span: (usize, usize),
    /// Byte span of the body in `masked`, including the outer braces.
    pub body_span: (usize, usize),
    /// Whether the declaration lies in a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// Keywords that look like call heads but never are.
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
];

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// The module path of a workspace-relative file: `crates/sim/src/traffic.rs`
/// → `traffic`, `src/lib.rs` → `lib`, nested dirs join with `::`.
fn module_path(rel: &str) -> String {
    let tail = rel
        .rsplit_once("src/")
        .map(|(_, t)| t)
        .unwrap_or(rel)
        .trim_end_matches(".rs");
    tail.replace('/', "::")
}

/// Matches forward from an opening delimiter to its closing partner,
/// returning the byte offset one past the close (or `None` if unbalanced).
fn match_delim(bytes: &[u8], open_at: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open_at;
    while i < bytes.len() {
        if bytes[i] == open {
            depth += 1;
        } else if bytes[i] == close {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

/// Skips a generics list `<...>` starting at `at` (which must point at `<`),
/// returning the offset one past the matching `>`. Tolerates `->` and
/// comparison-free item headers (the only place this is called).
fn skip_generics(bytes: &[u8], at: usize) -> Option<usize> {
    let mut depth = 0isize;
    let mut i = at;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' => {
                // `->` inside generics default types cannot occur in an item
                // header before the parameter list; plain `>` closes.
                if i > 0 && bytes[i - 1] == b'-' {
                    i += 1;
                    continue;
                }
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// An `impl` block: the type it implements on and its body span.
struct ImplBlock {
    owner: String,
    span: (usize, usize),
}

/// Extracts the implemented-on type name from an impl header (the text
/// between `impl` and the opening brace): the path after a top-level `for`
/// if present, else the first path after the generics.
fn impl_owner(header: &str) -> Option<String> {
    // Split off a top-level ` for ` (angle-depth 0) if present.
    let bytes = header.as_bytes();
    let mut depth = 0isize;
    let mut tail = header;
    let mut i = 0usize;
    while i + 5 <= bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' => depth -= 1,
            b'f' if depth == 0
                && header[i..].starts_with("for")
                && (i == 0 || !is_ident(bytes[i - 1]))
                && !is_ident(*bytes.get(i + 3).unwrap_or(&b' ')) =>
            {
                tail = &header[i + 3..];
                // Keep scanning: the last top-level `for` wins (there is
                // only ever one in valid Rust).
            }
            _ => {}
        }
        i += 1;
    }
    // The owner is the last segment of the leading path of `tail`.
    let tail = tail.trim_start().trim_start_matches('&').trim_start();
    let mut owner = None;
    let mut seg = String::new();
    for c in tail.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            seg.push(c);
        } else if c == ':' {
            if !seg.is_empty() {
                owner = Some(std::mem::take(&mut seg));
            }
        } else {
            break;
        }
    }
    if !seg.is_empty() {
        owner = Some(seg);
    }
    owner.filter(|o| !o.is_empty())
}

/// Finds every `impl` block in a masked file.
fn impl_blocks(masked: &str) -> Vec<ImplBlock> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for at in crate::rules::word_occurrences(masked, "impl") {
        let mut i = at + 4;
        // Optional generics directly after the keyword.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'<' {
            let Some(next) = skip_generics(bytes, i) else {
                continue;
            };
            i = next;
        }
        // Header runs to the opening brace (tracking nothing: braces cannot
        // appear in an impl header).
        let Some(rel) = masked[i..].find('{') else {
            continue;
        };
        let open = i + rel;
        let Some(owner) = impl_owner(&masked[i..open]) else {
            continue;
        };
        let Some(end) = match_delim(bytes, open, b'{', b'}') else {
            continue;
        };
        out.push(ImplBlock {
            owner,
            span: (open, end),
        });
    }
    out
}

/// Scans every lexed file and builds the workspace function table, in
/// deterministic (file, offset) order.
pub fn scan(files: &[LexedFile]) -> Vec<FnSym> {
    let mut out = Vec::new();
    for (file_idx, f) in files.iter().enumerate() {
        let masked = &f.model.masked;
        let bytes = masked.as_bytes();
        let impls = impl_blocks(masked);
        let module = module_path(&f.rel);
        for at in crate::rules::word_occurrences(masked, "fn") {
            let mut i = at + 2;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            // `fn(` is a function-pointer type, not an item.
            let name_start = i;
            while i < bytes.len() && is_ident(bytes[i]) {
                i += 1;
            }
            if i == name_start {
                continue;
            }
            let name = masked[name_start..i].to_owned();
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'<' {
                let Some(next) = skip_generics(bytes, i) else {
                    continue;
                };
                i = next;
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
            }
            if i >= bytes.len() || bytes[i] != b'(' {
                continue;
            }
            let Some(params_end) = match_delim(bytes, i, b'(', b')') else {
                continue;
            };
            let sig_span = (i + 1, params_end - 1);
            // Scan to the body open brace or a terminating `;` (trait
            // signature / extern decl) at bracket depth 0.
            let mut j = params_end;
            let mut depth = 0isize;
            let mut open = None;
            while j < bytes.len() {
                match bytes[j] {
                    b'(' | b'[' | b'<' => depth += 1,
                    b')' | b']' => depth -= 1,
                    // `->` is a return arrow, not a closing angle bracket.
                    b'>' if bytes[j - 1] != b'-' => depth -= 1,
                    b'{' => {
                        open = Some(j);
                        break;
                    }
                    b';' if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open_at) = open else {
                continue;
            };
            let Some(body_end) = match_delim(bytes, open_at, b'{', b'}') else {
                continue;
            };
            let owner = impls
                .iter()
                .filter(|b| b.span.0 < at && at < b.span.1)
                .min_by_key(|b| b.span.1 - b.span.0)
                .map(|b| b.owner.clone());
            let line = f.model.line_of(at);
            let qname = match &owner {
                Some(o) => format!("{}::{}::{}::{}", f.krate, module, o, name),
                None => format!("{}::{}::{}", f.krate, module, name),
            };
            out.push(FnSym {
                file: file_idx,
                krate: f.krate.clone(),
                qname,
                name,
                owner,
                line,
                sig_span,
                body_span: (open_at, body_end),
                is_test: f.model.is_test_line(line),
            });
        }
    }
    out
}

/// The byte ranges of `fns[idx]`'s body that belong to it directly — its
/// full body minus any nested `fn` items' bodies (so a nested helper's
/// calls are not attributed to its parent).
pub fn own_body_ranges(fns: &[FnSym], idx: usize) -> Vec<(usize, usize)> {
    let me = &fns[idx];
    let mut children: Vec<(usize, usize)> = fns
        .iter()
        .enumerate()
        .filter(|(i, c)| {
            *i != idx
                && c.file == me.file
                && c.body_span.0 > me.body_span.0
                && c.body_span.1 < me.body_span.1
        })
        .map(|(_, c)| c.body_span)
        .collect();
    children.sort_unstable();
    let mut out = Vec::new();
    let mut cursor = me.body_span.0;
    for (s, e) in children {
        if s > cursor {
            out.push((cursor, s));
        }
        cursor = cursor.max(e);
    }
    if cursor < me.body_span.1 {
        out.push((cursor, me.body_span.1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceModel;

    fn lex(src: &str) -> Vec<LexedFile> {
        vec![LexedFile {
            krate: "test-crate".into(),
            rel: "crates/x/src/m.rs".into(),
            model: SourceModel::parse(src),
        }]
    }

    #[test]
    fn finds_free_and_method_fns() {
        let files = lex(
            "pub fn free(a: u32) -> u32 { a }\n\
             struct W;\n\
             impl W {\n    pub fn m<S: Clone>(&self, rng: &mut SmallRng) -> u8 { 0 }\n}\n\
             impl std::fmt::Display for W {\n    fn fmt(&self, f: &mut F) -> R { todo()\n    }\n}\n",
        );
        let fns = scan(&files);
        let names: Vec<_> = fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(
            names,
            [
                "test-crate::m::free",
                "test-crate::m::W::m",
                "test-crate::m::W::fmt"
            ],
            "{fns:#?}"
        );
        assert_eq!(fns[1].owner.as_deref(), Some("W"));
        let sig = &files[0].model.masked[fns[1].sig_span.0..fns[1].sig_span.1];
        assert!(sig.contains("SmallRng"));
    }

    #[test]
    fn trait_signatures_and_fn_pointers_are_skipped() {
        let files = lex(
            "trait T { fn sig(&self); fn with_default(&self) -> u8 { 0 } }\n\
             type F = fn(u32) -> u32;\nfn real() {}\n",
        );
        let names: Vec<_> = scan(&files).into_iter().map(|f| f.name).collect();
        assert_eq!(names, ["with_default", "real"]);
    }

    #[test]
    fn return_types_with_brackets_do_not_confuse_body_search() {
        let files = lex(
            "fn f(n: usize) -> [f64; 4] { [0.0; 4] }\nfn g() -> Vec<(u32, u32)> { Vec::new() }\n",
        );
        let fns = scan(&files);
        assert_eq!(fns.len(), 2);
        let body0 = &files[0].model.masked[fns[0].body_span.0..fns[0].body_span.1];
        assert_eq!(body0, "{ [0.0; 4] }");
    }

    #[test]
    fn nested_fn_bodies_are_subtracted() {
        let files = lex("fn outer() { fn inner() { draw(); } other(); }\n");
        let fns = scan(&files);
        assert_eq!(fns.len(), 2);
        let outer = fns.iter().position(|f| f.name == "outer").expect("outer");
        let ranges = own_body_ranges(&fns, outer);
        let text: String = ranges
            .iter()
            .map(|&(s, e)| &files[0].model.masked[s..e])
            .collect();
        assert!(text.contains("other()"));
        assert!(!text.contains("draw()"));
    }

    #[test]
    fn test_region_fns_are_marked() {
        let files = lex("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n");
        let fns = scan(&files);
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test, "{fns:#?}");
    }
}
